//! `critic` — the end-to-end driver of the paper's Fig. 7 framework:
//! generate (or pick) a workload, profile it, compile it, and report.
//!
//! ```text
//! critic list                          # Table II workloads
//! critic profile <app> [-o FILE]      # run the offline profiler
//! critic compile <app> [--scheme S]   # apply a pass and diff the binary
//! critic run <app> [--scheme S] [--validate]   # simulate baseline vs scheme
//! critic validate <app> [--scheme S] [--seed N] # differential oracle only
//! critic disasm <app> [function]      # dump the generated binary
//! critic campaign [--validate] [--stats] [options]  # fault-tolerant app x scheme grid
//! critic bench [--json] [--smoke] [-o FILE] [--min-warm-speedup X] [--min-cold-speedup X]
//!              [--stream-window N] [--max-stream-peak-bytes N]
//! critic bench --service [--smoke] [--json] [-o FILE] [--max-service-p99-ms X]
//! critic stats --journal FILE [--json] # telemetry roll-up of a campaign journal
//! critic chaos --seed S [--cells N] [--smoke] [--minimize] [-o FILE]
//! critic drill --points N [--seed S] [--smoke] [--minimize] [-o FILE]
//! critic serve [--port N] [--workers N] [--queue N] [--rate N] [--shard N] [--peers A,B] [options]
//! critic router --journal-dir DIR --store-dir DIR [--shards N] [options]
//! critic loadgen --addr HOST:PORT [--addr HOST:PORT]... [--clients N] [--requests N] [--rate X] [--retries N]
//! critic soak [--seconds N] [--clients N] [--sys SPEC]... [--shards N] [--smoke] [-o FILE]
//! ```
//!
//! Schemes: critic (default), hoist, ideal, branch-switch, opp16, compress,
//! opp16+critic.
//!
//! Exit codes (single source of truth, mirrored in README/DESIGN):
//!
//! | code | meaning |
//! |-----:|---------|
//! | 0 | success |
//! | 1 | run error |
//! | 2 | usage error |
//! | 3 | unknown app or function |
//! | 4 | unknown scheme |
//! | 5 | I/O error |
//! | 6 | campaign finished with failed cells |
//! | 7 | translation validation failed (divergence survived demotion) |
//! | 8 | bench regression (warm-store speedup below the floor) |
//! | 9 | campaign interrupted by graceful shutdown (shed cells; resume to finish) — also `critic serve` / `critic router` after a graceful drain |
//! | 10 | chaos invariant violation (schedule JSON printed) |
//! | 11 | recovery-drill invariant violation (durable-warm / no-lost-ack; repro JSON printed) |
//! | 12 | service-soak invariant violation (no-lost-ack / bounded-queue / overload-sheds / graceful-drain; report JSON printed) |
//! | 13 | sharded-soak invariant violation (no-lost-ack across shards / peer-rebuild / no-resimulation / bit-identical; report JSON printed) |

use std::fmt;
use std::time::Duration;

use critic_bench::chaos::{self, ChaosConfig};
use critic_bench::drill::{self, DrillConfig};
use critic_bench::loadgen::{self, LoadgenConfig};
use critic_bench::perf::{self, BenchError, BenchSetup, ServiceBenchSetup};
use critic_bench::router;
use critic_bench::serve;
use critic_bench::soak::{self, ShardedSoakConfig, SoakConfig};
use std::sync::Arc;

use critic_core::campaign::{self, CampaignSpec, CellStatus, PlannedFault, Scheme};
use critic_core::design::DesignPoint;
use critic_core::journal::Journal;
use critic_core::runner::Workbench;
use critic_core::store::StoreStats;
use critic_core::RunError;
use critic_obs::Telemetry;
use critic_profiler::{save_profile, ProfilerConfig};
use critic_workloads::suite::Suite;
use critic_workloads::{AppSpec, Fault, SysFault, SysFaultSpec, SysInjector, SysOp};

const TRACE_LEN: usize = 120_000;

const SCHEME_NAMES: [&str; 7] = [
    "critic",
    "hoist",
    "ideal",
    "branch-switch",
    "opp16",
    "compress",
    "opp16+critic",
];

enum CliError {
    Usage(String),
    UnknownApp(String),
    UnknownFunction {
        app: String,
        function: String,
        available: Vec<String>,
    },
    UnknownScheme(String),
    Io(String),
    Run(RunError),
    CampaignFailed {
        failed: usize,
        total: usize,
    },
    CampaignValidationFailed {
        failed: usize,
        total: usize,
    },
    BenchFailed(String),
    BenchRegression {
        what: &'static str,
        speedup: f64,
        floor: f64,
    },
    StreamMemoryRegression {
        peak: u64,
        ceiling: u64,
    },
    CampaignInterrupted {
        shed: usize,
        total: usize,
    },
    ChaosViolation {
        violations: usize,
    },
    DrillViolation {
        violations: usize,
    },
    ServeDrained {
        connections: u64,
        responded: u64,
    },
    RouterDrained {
        connections: u64,
        forwarded: u64,
        restarts: u64,
    },
    ServiceRegression {
        p99_ms: f64,
        ceiling_ms: f64,
    },
    SoakViolation {
        violations: usize,
    },
    ShardedSoakViolation {
        violations: usize,
    },
}

impl CliError {
    fn exit_code(&self) -> i32 {
        match self {
            CliError::Usage(_) => 2,
            CliError::UnknownApp(_) | CliError::UnknownFunction { .. } => 3,
            CliError::UnknownScheme(_) => 4,
            CliError::Io(_) => 5,
            // A validation failure gets its own exit code so scripted
            // miscompile hunts can tell "oracle caught a divergence" (7)
            // apart from ordinary pipeline failures (1).
            CliError::Run(RunError::Validation(_)) => 7,
            CliError::Run(_) | CliError::BenchFailed(_) => 1,
            CliError::CampaignFailed { .. } => 6,
            CliError::CampaignValidationFailed { .. } => 7,
            // Its own code so CI can tell "the store got slower" apart
            // from a pipeline failure.
            CliError::BenchRegression { .. } => 8,
            // A streaming run that outgrew its memory ceiling is the same
            // class of failure: the bench got worse, not wrong.
            CliError::StreamMemoryRegression { .. } => 8,
            // A graceful shutdown is not a failure: the journal is intact
            // and --resume finishes the grid. Scripts need to tell it
            // apart from both success and failed cells.
            CliError::CampaignInterrupted { .. } => 9,
            // A chaos invariant violation means the *runner* broke under
            // faults — the highest-severity signal this binary can emit.
            CliError::ChaosViolation { .. } => 10,
            // A recovery-drill violation means the durability contract
            // broke: a crash lost an acknowledged cell or the persistent
            // store failed to serve a restarted campaign bit-identically.
            CliError::DrillViolation { .. } => 11,
            // A drained server exits through the same code as an
            // interrupted campaign: "shut down gracefully, state intact".
            CliError::ServeDrained { .. } => 9,
            // The router drains its whole fleet before exiting; same
            // "graceful, state intact" contract as a single server.
            CliError::RouterDrained { .. } => 9,
            // Service latency regressions share the bench-regression code.
            CliError::ServiceRegression { .. } => 8,
            // A soak violation means the *service* broke under load or
            // kill — the service-layer counterpart of chaos's code 10.
            CliError::SoakViolation { .. } => 12,
            // The sharded soak gets its own code so CI can tell "one
            // server broke" (12) apart from "the fleet broke" (13).
            CliError::ShardedSoakViolation { .. } => 13,
        }
    }
}

impl fmt::Display for CliError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CliError::Usage(msg) => write!(f, "{msg}"),
            CliError::UnknownApp(name) => {
                let valid: Vec<String> = Suite::ALL
                    .iter()
                    .flat_map(|s| s.apps())
                    .map(|a| a.name)
                    .collect();
                write!(f, "unknown app `{name}`; valid apps: {}", valid.join(", "))
            }
            CliError::UnknownFunction {
                app,
                function,
                available,
            } => {
                write!(
                    f,
                    "no function `{function}` in {app}; functions include: {}",
                    available.join(", ")
                )
            }
            CliError::UnknownScheme(name) => {
                write!(
                    f,
                    "unknown scheme `{name}`; valid schemes: {}",
                    SCHEME_NAMES.join(", ")
                )
            }
            CliError::Io(msg) => write!(f, "{msg}"),
            CliError::Run(e) => write!(f, "{e}"),
            CliError::CampaignFailed { failed, total } => {
                write!(f, "campaign finished with {failed}/{total} failed cells")
            }
            CliError::CampaignValidationFailed { failed, total } => {
                write!(
                    f,
                    "campaign finished with {failed}/{total} cells failing translation validation"
                )
            }
            CliError::BenchFailed(msg) => write!(f, "{msg}"),
            CliError::BenchRegression {
                what,
                speedup,
                floor,
            } => {
                write!(
                    f,
                    "{what} speedup {speedup:.2}x is below the {floor:.2}x floor"
                )
            }
            CliError::StreamMemoryRegression { peak, ceiling } => {
                write!(
                    f,
                    "streaming peak memory {peak} B is above the {ceiling} B ceiling"
                )
            }
            CliError::CampaignInterrupted { shed, total } => {
                write!(
                    f,
                    "campaign interrupted by graceful shutdown ({shed}/{total} cells shed; \
                     --resume finishes them)"
                )
            }
            CliError::ChaosViolation { violations } => {
                write!(
                    f,
                    "chaos run broke {violations} invariant(s); schedule JSON printed above"
                )
            }
            CliError::DrillViolation { violations } => {
                write!(
                    f,
                    "recovery drill broke {violations} invariant(s); repro JSON printed above"
                )
            }
            CliError::ServeDrained {
                connections,
                responded,
            } => {
                write!(
                    f,
                    "server drained gracefully ({connections} connection(s), \
                     {responded} response(s) delivered)"
                )
            }
            CliError::RouterDrained {
                connections,
                forwarded,
                restarts,
            } => {
                write!(
                    f,
                    "router drained its fleet gracefully ({connections} connection(s), \
                     {forwarded} submission(s) forwarded, {restarts} shard restart(s))"
                )
            }
            CliError::ServiceRegression { p99_ms, ceiling_ms } => {
                write!(
                    f,
                    "service p99 latency {p99_ms:.1} ms is above the {ceiling_ms:.1} ms ceiling"
                )
            }
            CliError::SoakViolation { violations } => {
                write!(
                    f,
                    "service soak broke {violations} invariant(s); report JSON printed above"
                )
            }
            CliError::ShardedSoakViolation { violations } => {
                write!(
                    f,
                    "sharded soak broke {violations} invariant(s); report JSON printed above"
                )
            }
        }
    }
}

impl From<RunError> for CliError {
    fn from(e: RunError) -> Self {
        CliError::Run(e)
    }
}

fn find_app(name: &str) -> Result<AppSpec, CliError> {
    Suite::ALL
        .iter()
        .flat_map(|s| s.apps())
        .find(|a| a.name.eq_ignore_ascii_case(name))
        .ok_or_else(|| CliError::UnknownApp(name.to_string()))
}

fn scheme_point(scheme: &str) -> Result<DesignPoint, CliError> {
    // One naming authority: the same resolver the service's submission
    // path uses, so the CLI and the wire protocol can never disagree.
    DesignPoint::named(scheme).ok_or_else(|| CliError::UnknownScheme(scheme.to_string()))
}

fn arg_after(args: &[String], flag: &str) -> Option<String> {
    args.iter()
        .position(|a| a == flag)
        .and_then(|i| args.get(i + 1))
        .cloned()
}

fn usage() -> CliError {
    CliError::Usage(
        "usage: critic <list|profile|compile|run|validate|disasm|campaign|bench|stats|chaos|\
         drill|serve|router|loadgen|soak> [app] [options]"
            .to_string(),
    )
}

/// Installs the `SIGTERM` handler behind `critic serve`'s graceful drain:
/// the handler only flips [`critic_bench::serve::TERM`], which the accept
/// loop polls — all the drain work happens on ordinary threads.
#[cfg(unix)]
mod sigterm {
    use std::sync::atomic::Ordering;

    extern "C" {
        fn signal(signum: i32, handler: usize) -> usize;
    }

    extern "C" fn on_term(_signum: i32) {
        // The only async-signal-unsafe-free thing a handler may do: one
        // atomic store.
        critic_bench::serve::TERM.store(true, Ordering::SeqCst);
    }

    pub fn install() {
        const SIGTERM: i32 = 15;
        unsafe {
            signal(SIGTERM, on_term as extern "C" fn(i32) as *const () as usize);
        }
    }
}

#[cfg(not(unix))]
mod sigterm {
    pub fn install() {}
}

/// Maps harness-level failures onto the CLI's exit-code taxonomy.
fn bench_error(e: BenchError) -> CliError {
    match e {
        BenchError::Run(e) => CliError::Run(e),
        BenchError::FailedCells(summary) => CliError::BenchFailed(summary),
        BenchError::LedgerViolation(msg) => CliError::BenchFailed(msg),
        BenchError::Divergence(msg) => CliError::BenchFailed(msg),
        BenchError::Io(msg) => CliError::Io(msg),
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if let Err(e) = run_cli(&args) {
        eprintln!("critic: {e}");
        std::process::exit(e.exit_code());
    }
}

fn run_cli(args: &[String]) -> Result<(), CliError> {
    let Some(command) = args.first() else {
        return Err(usage());
    };
    match command.as_str() {
        "list" => {
            for suite in Suite::ALL {
                for app in suite.apps() {
                    println!("{:12} {:10} {}", app.name, suite.label(), app.domain);
                }
            }
            Ok(())
        }
        "profile" => {
            let app = find_app(args.get(1).ok_or_else(usage)?)?;
            let mut bench = Workbench::try_new(&app, TRACE_LEN)?;
            let profile = bench.try_profile(&ProfilerConfig::default())?.clone();
            println!(
                "{}: {} chains selected, {:.1}% dynamic coverage, {:.1}% convertible",
                app.name,
                profile.chains.len(),
                profile.dynamic_coverage * 100.0,
                profile.stats.convertible_frac * 100.0
            );
            if let Some(path) = arg_after(args, "-o") {
                save_profile(&profile, std::path::Path::new(&path))
                    .map_err(|e| CliError::Io(format!("cannot write {path}: {e}")))?;
                println!("wrote {path}");
            }
            Ok(())
        }
        "compile" | "run" => {
            let app = find_app(args.get(1).ok_or_else(usage)?)?;
            let scheme = arg_after(args, "--scheme").unwrap_or_else(|| "critic".into());
            let point = scheme_point(&scheme)?;
            let mut bench = Workbench::try_new(&app, TRACE_LEN)?;
            let base = bench.try_run(&DesignPoint::baseline())?;
            let (run, validation) = if args.iter().any(|a| a == "--validate") {
                let (run, stats) = bench.try_run_validated(&point, app.path_seed())?;
                (run, Some(stats))
            } else {
                (bench.try_run(&point)?, None)
            };
            println!(
                "{} [{}]: applied {} chains, {} insns to 16-bit, {} skipped (legality)",
                app.name,
                point.label(),
                run.pass.chains_applied,
                run.pass.insns_converted,
                run.pass.chains_skipped_legality
            );
            if command == "run" {
                println!(
                    "cycles {} -> {} ({:+.2}%), IPC {:.2} -> {:.2}, 16-bit dyn {:.1}%",
                    base.sim.cycles,
                    run.sim.cycles,
                    (run.sim.speedup_over(&base.sim) - 1.0) * 100.0,
                    base.sim.ipc(),
                    run.sim.ipc(),
                    run.thumb_dyn_frac * 100.0
                );
                println!(
                    "energy: CPU {:+.2}%, system {:+.2}%",
                    run.energy.cpu_saving(&base.energy) * 100.0,
                    run.energy.system_saving(&base.energy) * 100.0
                );
            }
            if let Some(stats) = validation {
                println!(
                    "validation: {} chains checked, {} demoted",
                    stats.chains_checked, stats.chains_demoted
                );
            }
            Ok(())
        }
        "validate" => {
            let app = find_app(args.get(1).ok_or_else(usage)?)?;
            let scheme = arg_after(args, "--scheme").unwrap_or_else(|| "critic".into());
            let point = scheme_point(&scheme)?;
            let seed = match arg_after(args, "--seed") {
                None => app.path_seed(),
                Some(v) => v
                    .parse::<u64>()
                    .map_err(|_| CliError::Usage(format!("--seed expects a number, got `{v}`")))?,
            };
            let mut bench = Workbench::try_new(&app, TRACE_LEN)?;
            // try_run_validated returns Err(RunError::Validation) — exit
            // code 7 via the From impl — when a divergence survives the
            // demotion loop.
            let (run, stats) = bench.try_run_validated(&point, seed)?;
            println!(
                "{} [{}]: VALIDATED — {} chains checked, {} demoted, {} applied (seed {})",
                app.name,
                point.label(),
                stats.chains_checked,
                stats.chains_demoted,
                run.pass.chains_applied,
                seed
            );
            Ok(())
        }
        "disasm" => {
            let app = find_app(args.get(1).ok_or_else(usage)?)?;
            let program = app.generate_program();
            match args.get(2) {
                Some(fname) => {
                    let func = program
                        .functions
                        .iter()
                        .find(|f| f.name == *fname)
                        .ok_or_else(|| CliError::UnknownFunction {
                            app: app.name.clone(),
                            function: fname.clone(),
                            available: program
                                .functions
                                .iter()
                                .take(8)
                                .map(|f| f.name.clone())
                                .collect(),
                        })?;
                    print!("{}", program.disassemble_function(func.id));
                }
                None => print!("{}", program.disassemble()),
            }
            Ok(())
        }
        "campaign" => run_campaign_command(args),
        "bench" => run_bench_command(args),
        "stats" => run_stats_command(args),
        "chaos" => run_chaos_command(args),
        "drill" => run_drill_command(args),
        "serve" => run_serve_command(args),
        "router" => run_router_command(args),
        "loadgen" => run_loadgen_command(args),
        "soak" => run_soak_command(args),
        other => Err(CliError::Usage(format!(
            "unknown command `{other}`; {}",
            usage()
        ))),
    }
}

/// Parses one `--sys` value: `NAME[:PARAM]@AT`, e.g. `journal-write@0`,
/// `store-read@3`, `alloc-budget:65536@1`, `worker-stall:200@0`, `kill@2`,
/// `disk-corrupt@1`, `crash:journal-append@4`.
fn parse_sys_spec(value: &str) -> Result<SysFaultSpec, CliError> {
    let bad = || {
        CliError::Usage(format!(
            "--sys expects NAME[:PARAM]@AT (e.g. store-read@3, alloc-budget:65536@1, \
             crash:journal-append@4), got `{value}`"
        ))
    };
    let (head, at) = value.rsplit_once('@').ok_or_else(bad)?;
    let at: u64 = at.parse().map_err(|_| bad())?;
    let (name, param) = match head.split_once(':') {
        Some((name, param)) => (name, Some(param)),
        None => (head, None),
    };
    let fault = match (name, param) {
        ("journal-write", None) => SysFault::JournalWrite,
        ("journal-fsync", None) => SysFault::JournalFsync,
        ("journal-torn", None) => SysFault::JournalTorn,
        ("store-read", None) => SysFault::StoreRead,
        ("store-write", None) => SysFault::StoreWrite,
        ("kill", None) => SysFault::Kill,
        ("disk-read", None) => SysFault::DiskRead,
        ("disk-write", None) => SysFault::DiskWrite,
        ("disk-corrupt", None) => SysFault::DiskCorrupt,
        ("crash", Some(op)) => SysFault::Crash {
            op: SysOp::parse(op).ok_or_else(bad)?,
        },
        ("alloc-budget", Some(bytes)) => SysFault::AllocBudget {
            bytes: bytes.parse().map_err(|_| bad())?,
        },
        ("worker-stall", Some(millis)) => SysFault::WorkerStall {
            millis: millis.parse().map_err(|_| bad())?,
        },
        _ => return Err(bad()),
    };
    Ok(SysFaultSpec { fault, at })
}

/// `critic campaign [--suite S] [--apps N] [--schemes a,b,..]
/// [--trace-len N] [--journal FILE] [--resume] [--validate] [--stats]
/// [--deadline-secs N] [--retries N] [--workers N]
/// [--store-dir DIR] [--store-budget BYTES] [--segment-lines N]
/// [--run-tag N] [--stream-window N]
/// [--inject app:scheme:fault[:seed]]... [--sys NAME[:PARAM]@AT]...
/// [--breaker K] [--degrade] [--backoff-base-ms N] [--backoff-cap-ms N]
/// [--backoff-seed N]`
///
/// `--apps N` truncates the suite to its first `N` apps — small grids for
/// drills, CI steps, and tests.
///
/// `--stats` forces telemetry on for this run (regardless of
/// `CRITIC_TELEMETRY`): per-cell spans are journaled, and the summary ends
/// with the campaign-wide telemetry table.
///
/// `--store-dir DIR` puts a persistent artifact store under the campaign:
/// profiles and baseline runs spill to checksummed entries in `DIR` and
/// are served from disk on restart; `--store-budget BYTES` caps the
/// directory with LRU eviction. `--segment-lines N` rolls the journal into
/// checkpointed segments every `N` cell records (0, the default, keeps the
/// single-file format). `--run-tag N` stamps every journaled record with a
/// run number so the recovery drill can prove acknowledged cells are never
/// re-simulated.
///
/// `--stream-window N` runs every cell's trace through the chunked
/// streaming pipeline (N instructions per window) instead of materializing
/// it — bit-identical results at O(window) instead of O(trace) memory per
/// worker. Cells with an armed trace fault fall back to the materialized
/// path (the fault corrupts the materialized trace, which a re-expansion
/// would silently undo).
///
/// `--sys` arms deterministic systemic faults (the chaos harness's
/// [`SysFault`] family) on the run; `--breaker`, `--degrade`, and the
/// backoff flags configure the supervision policy that absorbs them.
fn run_campaign_command(args: &[String]) -> Result<(), CliError> {
    let mut apps: Vec<AppSpec> = match arg_after(args, "--suite").as_deref() {
        None | Some("mobile") => Suite::Mobile.apps(),
        Some("spec-int") => Suite::SpecInt.apps(),
        Some("spec-float") => Suite::SpecFloat.apps(),
        Some("all") => Suite::ALL.iter().flat_map(|s| s.apps()).collect(),
        Some(other) => {
            return Err(CliError::Usage(format!(
                "unknown suite `{other}`; valid suites: mobile, spec-int, spec-float, all"
            )))
        }
    };

    let schemes: Vec<Scheme> = match arg_after(args, "--schemes") {
        None => campaign::default_schemes(),
        Some(list) => {
            let mut schemes = Vec::new();
            for name in list.split(',').filter(|s| !s.is_empty()) {
                schemes.push(Scheme::new(name, scheme_point(name)?));
            }
            schemes
        }
    };

    let parse_num = |flag: &str| -> Result<Option<u64>, CliError> {
        match arg_after(args, flag) {
            None => Ok(None),
            Some(v) => v
                .parse::<u64>()
                .map(Some)
                .map_err(|_| CliError::Usage(format!("{flag} expects a number, got `{v}`"))),
        }
    };

    if let Some(n) = parse_num("--apps")? {
        if n == 0 {
            return Err(CliError::Usage("--apps must be at least 1".to_string()));
        }
        apps.truncate(n as usize);
    }

    let mut spec = CampaignSpec::new(
        apps,
        schemes,
        parse_num("--trace-len")?
            .map(|n| n as usize)
            .unwrap_or(TRACE_LEN),
    );
    spec.deadline = parse_num("--deadline-secs")?.map(Duration::from_secs);
    spec.retries = parse_num("--retries")?.map(|n| n as u32).unwrap_or(0);
    spec.workers = parse_num("--workers")?.map(|n| n as usize).unwrap_or(0);
    spec.journal = arg_after(args, "--journal").map(std::path::PathBuf::from);
    spec.resume = args.iter().any(|a| a == "--resume");
    spec.validate = args.iter().any(|a| a == "--validate");
    spec.store_dir = arg_after(args, "--store-dir").map(std::path::PathBuf::from);
    spec.store_budget = parse_num("--store-budget")?;
    spec.segment_max_lines = parse_num("--segment-lines")?
        .map(|n| n as usize)
        .unwrap_or(0);
    spec.run_tag = parse_num("--run-tag")?;
    spec.stream_window = match parse_num("--stream-window")? {
        Some(0) => {
            return Err(CliError::Usage(
                "--stream-window must be at least 1".to_string(),
            ))
        }
        other => other.map(|n| n as usize),
    };
    if args.iter().any(|a| a == "--stats") {
        spec.telemetry = critic_obs::Telemetry::enabled();
    }
    if spec.resume && spec.journal.is_none() {
        return Err(CliError::Usage(
            "--resume requires --journal FILE".to_string(),
        ));
    }
    spec.supervision.breaker_threshold = parse_num("--breaker")?.map(|n| n as u32).unwrap_or(0);
    spec.supervision.degrade = args.iter().any(|a| a == "--degrade");
    spec.supervision.backoff_base_millis = parse_num("--backoff-base-ms")?.unwrap_or(0);
    spec.supervision.backoff_cap_millis = parse_num("--backoff-cap-ms")?
        .unwrap_or(spec.supervision.backoff_base_millis.saturating_mul(64));
    spec.supervision.backoff_seed = parse_num("--backoff-seed")?.unwrap_or(0);
    let mut sys_specs = Vec::new();
    let mut idx = 0;
    while let Some(pos) = args[idx..].iter().position(|a| a == "--sys") {
        idx += pos + 1;
        let Some(value) = args.get(idx) else {
            return Err(CliError::Usage("--sys expects NAME[:PARAM]@AT".to_string()));
        };
        sys_specs.push(parse_sys_spec(value)?);
    }
    if !sys_specs.is_empty() {
        spec.sys = Some(Arc::new(SysInjector::new(sys_specs)));
    }

    let mut idx = 0;
    while let Some(pos) = args[idx..].iter().position(|a| a == "--inject") {
        idx += pos + 1;
        let Some(value) = args.get(idx) else {
            return Err(CliError::Usage(
                "--inject expects app:scheme:fault[:seed]".to_string(),
            ));
        };
        let parts: Vec<&str> = value.split(':').collect();
        if parts.len() < 3 || parts.len() > 4 {
            return Err(CliError::Usage(format!(
                "--inject expects app:scheme:fault[:seed], got `{value}`"
            )));
        }
        let fault: Fault = parts[2].parse().map_err(CliError::Usage)?;
        let seed = match parts.get(3) {
            None => 0,
            Some(s) => s
                .parse::<u64>()
                .map_err(|_| CliError::Usage(format!("bad inject seed `{s}`")))?,
        };
        spec.faults.push(PlannedFault {
            app: parts[0].to_string(),
            scheme: parts[1].to_string(),
            fault,
            seed,
        });
    }

    let summary = campaign::run_campaign(&spec)?;
    println!("{}", summary.render());
    if summary.interrupted {
        // Shed cells are expected bookkeeping here, not failures: the
        // journal is intact and --resume finishes them.
        Err(CliError::CampaignInterrupted {
            shed: summary.shed().len(),
            total: summary.records.len(),
        })
    } else if summary.all_ok() {
        Ok(())
    } else if !summary.validation_failures().is_empty() {
        // Validation failures outrank generic cell failures: a surviving
        // divergence means a miscompile escaped demotion, which scripted
        // hunts must be able to detect from the exit code alone.
        Err(CliError::CampaignValidationFailed {
            failed: summary.validation_failures().len(),
            total: summary.records.len(),
        })
    } else {
        Err(CliError::CampaignFailed {
            failed: summary.failed().len(),
            total: summary.records.len(),
        })
    }
}

/// `critic bench [--json] [--smoke] [-o FILE] [--min-warm-speedup X]
/// [--min-cold-speedup X] [--stream-window N] [--max-stream-peak-bytes N]`
///
/// Measures single-cell latency, the batched-vs-scalar cold path over the
/// sensitivity grid, the streaming-vs-materialized long-trace probe, and a
/// cold vs warm full-grid campaign over one shared artifact store;
/// `--smoke` shrinks the grid for CI.
/// `--min-warm-speedup` and `--min-cold-speedup` turn the report into a
/// gate: exit code 8 when a measured speedup falls below its floor.
/// `--stream-window N` overrides the probe's chunk size;
/// `--max-stream-peak-bytes N` gates the streaming peak (exit code 8 when
/// it is exceeded; `0` means "use the report's own O(window) ceiling").
fn run_bench_command(args: &[String]) -> Result<(), CliError> {
    if args.iter().any(|a| a == "--service") {
        return run_service_bench_command(args);
    }
    let mut setup = if args.iter().any(|a| a == "--smoke") {
        BenchSetup::smoke()
    } else {
        BenchSetup::full()
    };
    if let Some(v) = arg_after(args, "--stream-window") {
        let window = v
            .parse::<usize>()
            .map_err(|_| CliError::Usage(format!("--stream-window expects a number, got `{v}`")))?;
        if window == 0 {
            return Err(CliError::Usage(
                "--stream-window must be at least 1".to_string(),
            ));
        }
        setup.stream_window = window;
    }
    let peak_cap = match arg_after(args, "--max-stream-peak-bytes") {
        None => None,
        Some(v) => Some(v.parse::<u64>().map_err(|_| {
            CliError::Usage(format!(
                "--max-stream-peak-bytes expects a number, got `{v}`"
            ))
        })?),
    };
    let floor = match arg_after(args, "--min-warm-speedup") {
        None => None,
        Some(v) => Some(v.parse::<f64>().map_err(|_| {
            CliError::Usage(format!("--min-warm-speedup expects a number, got `{v}`"))
        })?),
    };
    let cold_floor = match arg_after(args, "--min-cold-speedup") {
        None => None,
        Some(v) => Some(v.parse::<f64>().map_err(|_| {
            CliError::Usage(format!("--min-cold-speedup expects a number, got `{v}`"))
        })?),
    };

    let report = perf::run_perf_bench(&setup).map_err(bench_error)?;
    let json = serde_json::to_string_pretty(&report)
        .map_err(|e| CliError::Io(format!("cannot serialise bench report: {e}")))?;

    if args.iter().any(|a| a == "--json") {
        println!("{json}");
    } else {
        println!(
            "single cell: {:.0} ms | cold path {} cells: scalar {:.0} ms -> batched {:.0} ms \
             ({:.2}x, {:.2}M insts/s) | campaign cold {:.0} ms -> warm {:.0} ms ({:.2}x) | \
             restart cold {:.0} ms -> disk-warm {:.0} ms ({:.2}x, {} disk hits) | \
             stream {} insns @ window {}: {:.2}M insts/s ({:.2}x of materialized), \
             peak {} KiB under {} KiB ceiling | \
             telemetry overhead {:+.1}% | {} worlds, {} profiles, {} baselines built; \
             {} store hits | ledger {} cycles audited",
            report.single_cell_millis,
            report.cold_path.cells,
            report.cold_path.scalar_millis,
            report.cold_path.batched_millis,
            report.cold_path.cold_speedup,
            report.cold_path.insts_per_sec / 1e6,
            report.cold_campaign_millis,
            report.warm_campaign_millis,
            report.warm_speedup,
            report.restart_cold_campaign_millis,
            report.restart_warm_campaign_millis,
            report.restart_warm_speedup,
            report.disk.disk_hits,
            report.stream.trace_len,
            report.stream.window,
            report.stream.streamed_insts_per_sec / 1e6,
            report.stream.throughput_ratio,
            report.stream.peak_resident_bytes / 1024,
            report.stream.peak_ceiling_bytes / 1024,
            report.telemetry_overhead_frac * 100.0,
            report.store.worlds_built,
            report.store.profiles_built,
            report.store.baselines_built,
            report.store.hits,
            report.ledger.total()
        );
    }
    if let Some(path) = arg_after(args, "-o") {
        std::fs::write(&path, format!("{json}\n"))
            .map_err(|e| CliError::Io(format!("cannot write {path}: {e}")))?;
        eprintln!("wrote {path}");
    }
    if let Some(floor) = cold_floor {
        if report.cold_path.cold_speedup < floor {
            return Err(CliError::BenchRegression {
                what: "batched cold-path",
                speedup: report.cold_path.cold_speedup,
                floor,
            });
        }
    }
    if let Some(cap) = peak_cap {
        // 0 delegates to the report's own window-derived ceiling, so CI
        // does not have to hard-code a byte count per window.
        let ceiling = if cap == 0 {
            report.stream.peak_ceiling_bytes
        } else {
            cap
        };
        if report.stream.peak_resident_bytes > ceiling {
            return Err(CliError::StreamMemoryRegression {
                peak: report.stream.peak_resident_bytes,
                ceiling,
            });
        }
    }
    match floor {
        Some(floor) if report.warm_speedup < floor => Err(CliError::BenchRegression {
            what: "warm-store",
            speedup: report.warm_speedup,
            floor,
        }),
        _ => Ok(()),
    }
}

/// `critic bench --service [--smoke] [--json] [-o FILE]
/// [--max-service-p99-ms X]`
///
/// Measures the campaign service end to end, in process: an
/// ephemeral-port server, then 8-client, 64-client, and 2× overload
/// loadgen phases against it. `--max-service-p99-ms` gates on the
/// 64-client p99 with exit code 8.
fn run_service_bench_command(args: &[String]) -> Result<(), CliError> {
    let setup = if args.iter().any(|a| a == "--smoke") {
        ServiceBenchSetup::smoke()
    } else {
        ServiceBenchSetup::full()
    };
    let ceiling = match arg_after(args, "--max-service-p99-ms") {
        None => None,
        Some(v) => Some(v.parse::<f64>().map_err(|_| {
            CliError::Usage(format!("--max-service-p99-ms expects a number, got `{v}`"))
        })?),
    };
    let report = perf::run_service_bench(&setup).map_err(bench_error)?;
    let json = serde_json::to_string_pretty(&report)
        .map_err(|e| CliError::Io(format!("cannot serialise service bench report: {e}")))?;
    if args.iter().any(|a| a == "--json") {
        println!("{json}");
    } else {
        for (label, phase) in [
            ("8 clients", &report.clients_8),
            ("64 clients", &report.clients_64),
            ("overload", &report.overload),
        ] {
            println!(
                "{label}: {} done / {} rejected of {} sent | p50 {:.1} ms, p99 {:.1} ms, \
                 p999 {:.1} ms | degraded {:?}",
                phase.report.done,
                phase.report.rejected,
                phase.report.requests,
                phase.report.p50_ms,
                phase.report.p99_ms,
                phase.report.p999_ms,
                phase.report.degraded
            );
        }
    }
    if let Some(path) = arg_after(args, "-o") {
        std::fs::write(&path, format!("{json}\n"))
            .map_err(|e| CliError::Io(format!("cannot write {path}: {e}")))?;
        eprintln!("wrote {path}");
    }
    match ceiling {
        Some(ceiling) if report.clients_64.report.p99_ms > ceiling => {
            Err(CliError::ServiceRegression {
                p99_ms: report.clients_64.report.p99_ms,
                ceiling_ms: ceiling,
            })
        }
        _ => Ok(()),
    }
}

/// `critic serve [--port N] [--trace-len N] [--workers N] [--validate]
/// [--deadline-ms N] [--queue N] [--watermarks A,B,C] [--rate N]
/// [--burst N] [--window N] [--breaker K] [--journal FILE]
/// [--segment-lines N] [--store-dir DIR] [--store-budget BYTES]
/// [--stream-window N] [--run-tag N] [--shard N] [--peers A,B,..]
/// [--stats] [--sys NAME[:PARAM]@AT]...`
///
/// The long-lived campaign service over line-delimited JSON on TCP.
/// Prints `listening on 127.0.0.1:PORT` once bound (`--port 0` picks an
/// ephemeral port a supervising parent reads back). Drains gracefully on
/// `SIGTERM` or a wire `{"shutdown":true}` — finishes in-flight cells,
/// checkpoints the journal — and exits through code 9.
///
/// `--stream-window N` makes every worker simulate through the chunked
/// streaming pipeline at O(window) memory. `--shard N` stamps the server's
/// stats and heartbeat replies with its position in a router's fleet, and
/// `--peers A,B` pulls missing profile/baseline artifacts from those
/// addresses into the local store *before* binding — a restarted shard
/// comes back disk-warm without re-simulating anything.
fn run_serve_command(args: &[String]) -> Result<(), CliError> {
    let parse_num = |flag: &str| -> Result<Option<u64>, CliError> {
        match arg_after(args, flag) {
            None => Ok(None),
            Some(v) => v
                .parse::<u64>()
                .map(Some)
                .map_err(|_| CliError::Usage(format!("{flag} expects a number, got `{v}`"))),
        }
    };
    let mut config = critic_core::service::ServiceConfig::new(
        parse_num("--trace-len")?
            .map(|n| n as usize)
            .unwrap_or(TRACE_LEN),
    );
    config.workers = parse_num("--workers")?.map(|n| n as usize).unwrap_or(0);
    config.validate = args.iter().any(|a| a == "--validate");
    config.deadline = parse_num("--deadline-ms")?.map(Duration::from_millis);
    if let Some(n) = parse_num("--queue")? {
        config.queue_capacity = n as usize;
    }
    if let Some(list) = arg_after(args, "--watermarks") {
        let marks: Vec<usize> = list
            .split(',')
            .map(|v| v.trim().parse::<usize>())
            .collect::<Result<_, _>>()
            .map_err(|_| {
                CliError::Usage(format!("--watermarks expects A,B,C numbers, got `{list}`"))
            })?;
        if marks.len() != 3 {
            return Err(CliError::Usage(
                "--watermarks expects exactly three values A,B,C".to_string(),
            ));
        }
        config.degrade_watermarks = [marks[0], marks[1], marks[2]];
    }
    if let Some(n) = parse_num("--rate")? {
        config.admission_rate = n;
    }
    if let Some(n) = parse_num("--burst")? {
        config.admission_burst = n;
    }
    if let Some(n) = parse_num("--window")? {
        config.client_window = n as usize;
    }
    if let Some(n) = parse_num("--breaker")? {
        config.breaker_threshold = n as u32;
    }
    config.journal = arg_after(args, "--journal").map(std::path::PathBuf::from);
    config.segment_max_lines = parse_num("--segment-lines")?
        .map(|n| n as usize)
        .unwrap_or(0);
    config.store_dir = arg_after(args, "--store-dir").map(std::path::PathBuf::from);
    config.store_budget = parse_num("--store-budget")?;
    config.run_tag = parse_num("--run-tag")?;
    config.stream_window = match parse_num("--stream-window")? {
        Some(0) => {
            return Err(CliError::Usage(
                "--stream-window must be at least 1".to_string(),
            ))
        }
        other => other.map(|n| n as usize),
    };
    if args.iter().any(|a| a == "--stats") {
        config.telemetry = critic_obs::Telemetry::enabled();
    }
    let mut sys_specs = Vec::new();
    let mut idx = 0;
    while let Some(pos) = args[idx..].iter().position(|a| a == "--sys") {
        idx += pos + 1;
        let Some(value) = args.get(idx) else {
            return Err(CliError::Usage("--sys expects NAME[:PARAM]@AT".to_string()));
        };
        sys_specs.push(parse_sys_spec(value)?);
    }
    if !sys_specs.is_empty() {
        config.sys = Some(Arc::new(SysInjector::new(sys_specs)));
    }
    let port = parse_num("--port")?.map(|n| n as u16).unwrap_or(0);
    let ctx = serve::ShardContext {
        shard: parse_num("--shard")?,
        ..serve::ShardContext::default()
    };
    let peers: Vec<String> = arg_after(args, "--peers")
        .map(|list| {
            list.split(',')
                .map(str::trim)
                .filter(|p| !p.is_empty())
                .map(String::from)
                .collect()
        })
        .unwrap_or_default();

    sigterm::install();
    let service = critic_core::service::CampaignService::open(config)?;
    if !peers.is_empty() {
        // Rebuild before binding: by the time the banner prints (and a
        // supervising router marks this shard up), the store is disk-warm.
        let rebuild = serve::rebuild_from_peers(service.store(), &peers, &ctx.fetched_artifacts);
        eprintln!(
            "peer rebuild: {} peer(s) consulted, {} artifact(s) fetched, {} rejected",
            rebuild.peers_consulted, rebuild.fetched, rebuild.rejected
        );
    }
    let summary = serve::run_serve(port, &service, &ctx)
        .map_err(|e| CliError::Io(format!("cannot bind server: {e}")))?;
    // A graceful drain is the server's one way out; code 9 tells the
    // supervisor "state intact, journal checkpointed".
    Err(CliError::ServeDrained {
        connections: summary.connections,
        responded: summary.responded,
    })
}

/// `critic router --journal-dir DIR --store-dir DIR [--port N]
/// [--shards N] [--vnodes N] [--heartbeat-ms N] [--backoff-ms N]
/// [--backoff-cap-ms N] [serve flags forwarded to every shard...]`
///
/// The sharded front tier: binds the client-facing listener, spawns
/// `--shards` `critic serve` children (shard `i` journals to
/// `DIR/shard-i.jsonl` and stores under `DIR/shard-i`), places every
/// submission on the consistent-hash ring keyed on the cell's stable
/// placement key, and supervises the fleet — heartbeats, restarts with
/// exponential backoff and peer rebuild, reroutes to ring successors
/// while a shard is down. Prints `listening on 127.0.0.1:PORT` once
/// bound. Drains the whole fleet on `SIGTERM` or `{"shutdown":true}` and
/// exits through code 9.
fn run_router_command(args: &[String]) -> Result<(), CliError> {
    let parse_num = |flag: &str| -> Result<Option<u64>, CliError> {
        match arg_after(args, flag) {
            None => Ok(None),
            Some(v) => v
                .parse::<u64>()
                .map(Some)
                .map_err(|_| CliError::Usage(format!("{flag} expects a number, got `{v}`"))),
        }
    };
    let Some(journal_dir) = arg_after(args, "--journal-dir") else {
        return Err(CliError::Usage(
            "usage: critic router --journal-dir DIR --store-dir DIR [--shards N] [options]"
                .to_string(),
        ));
    };
    let Some(store_dir) = arg_after(args, "--store-dir") else {
        return Err(CliError::Usage(
            "critic router requires --store-dir DIR (each shard stores under DIR/shard-N)"
                .to_string(),
        ));
    };
    let binary = std::env::current_exe()
        .map_err(|e| CliError::Io(format!("cannot locate own binary: {e}")))?;
    let mut config = router::RouterConfig::new(
        binary,
        std::path::PathBuf::from(journal_dir),
        std::path::PathBuf::from(store_dir),
    );
    config.port = parse_num("--port")?.map(|n| n as u16).unwrap_or(0);
    if let Some(n) = parse_num("--shards")? {
        if n == 0 {
            return Err(CliError::Usage("--shards must be at least 1".to_string()));
        }
        config.shards = n as u32;
    }
    if let Some(n) = parse_num("--vnodes")? {
        if n == 0 {
            return Err(CliError::Usage("--vnodes must be at least 1".to_string()));
        }
        config.vnodes = n as u32;
    }
    if let Some(n) = parse_num("--heartbeat-ms")? {
        config.heartbeat_ms = n.max(10);
    }
    if let Some(n) = parse_num("--backoff-ms")? {
        config.backoff_base_ms = n.max(1);
    }
    if let Some(n) = parse_num("--backoff-cap-ms")? {
        config.backoff_cap_ms = n.max(config.backoff_base_ms);
    }
    // Everything a shard understands is forwarded verbatim; the router
    // appends the per-shard --port/--shard/--journal/--store-dir itself.
    for flag in [
        "--trace-len",
        "--workers",
        "--deadline-ms",
        "--queue",
        "--watermarks",
        "--rate",
        "--burst",
        "--window",
        "--breaker",
        "--segment-lines",
        "--store-budget",
        "--stream-window",
    ] {
        if let Some(value) = arg_after(args, flag) {
            config.shard_args.push(flag.to_string());
            config.shard_args.push(value);
        }
    }
    for flag in ["--validate", "--stats"] {
        if args.iter().any(|a| a == flag) {
            config.shard_args.push(flag.to_string());
        }
    }

    sigterm::install();
    let summary = router::run_router(config)
        .map_err(|e| CliError::Io(format!("cannot start router: {e}")))?;
    Err(CliError::RouterDrained {
        connections: summary.connections,
        forwarded: summary.stats.forwarded,
        restarts: summary.stats.restarts,
    })
}

/// `critic loadgen --addr HOST:PORT [--addr HOST:PORT]... [--clients N]
/// [--requests N] [--rate X] [--retries N] [--seed N] [--deadline-ms N]
/// [--json] [-o FILE]`
///
/// Open-loop load against a running `critic serve` (or `critic router`):
/// N concurrent clients each sending `--requests` submissions from a
/// seeded app × scheme mix at `--rate` per second, reporting latency
/// percentiles, reject/shed counts, and degradation occupancy. `--addr`
/// repeats: client `i` connects to address `i mod len`. `--retries N`
/// resubmits each rejected cell up to N times, honoring the server's
/// `retry_after_ms` hint when one is given (a blind 10 ms backoff
/// otherwise); the report counts hinted vs blind retries separately.
fn run_loadgen_command(args: &[String]) -> Result<(), CliError> {
    let addrs: Vec<String> = {
        let mut addrs = Vec::new();
        let mut idx = 0;
        while let Some(pos) = args[idx..].iter().position(|a| a == "--addr") {
            idx += pos + 1;
            let Some(value) = args.get(idx) else {
                return Err(CliError::Usage("--addr expects HOST:PORT".to_string()));
            };
            addrs.push(value.clone());
        }
        addrs
    };
    if addrs.is_empty() {
        return Err(CliError::Usage(
            "usage: critic loadgen --addr HOST:PORT [--addr HOST:PORT]... [--clients N] \
             [--requests N] [--rate X] [--retries N] [--seed N] [--deadline-ms N] [--json] \
             [-o FILE]"
                .to_string(),
        ));
    }
    let parse_num = |flag: &str| -> Result<Option<u64>, CliError> {
        match arg_after(args, flag) {
            None => Ok(None),
            Some(v) => v
                .parse::<u64>()
                .map(Some)
                .map_err(|_| CliError::Usage(format!("{flag} expects a number, got `{v}`"))),
        }
    };
    let mut config = LoadgenConfig::new(&addrs[0]);
    config.addrs = addrs;
    if let Some(n) = parse_num("--clients")? {
        config.clients = n as usize;
    }
    if let Some(n) = parse_num("--requests")? {
        config.requests_per_client = n as usize;
    }
    if let Some(v) = arg_after(args, "--rate") {
        config.rate = v
            .parse::<f64>()
            .map_err(|_| CliError::Usage(format!("--rate expects a number, got `{v}`")))?;
    }
    config.retries = parse_num("--retries")?.map(|n| n as u32).unwrap_or(0);
    config.seed = parse_num("--seed")?.unwrap_or(0);
    config.deadline_ms = parse_num("--deadline-ms")?;
    let outcome = loadgen::run_loadgen(&config).map_err(bench_error)?;
    let json = serde_json::to_string_pretty(&outcome.report)
        .map_err(|e| CliError::Io(format!("cannot serialise loadgen report: {e}")))?;
    if args.iter().any(|a| a == "--json") {
        println!("{json}");
    } else {
        println!(
            "{} clients x {} requests: {} done ({} ok, {} shed, {} failed), {} rejected, \
             {} unanswered | retries {} hinted / {} blind | p50 {:.1} ms, p99 {:.1} ms, \
             p999 {:.1} ms, max {:.1} ms | degraded {:?}",
            outcome.report.clients,
            config.requests_per_client,
            outcome.report.done,
            outcome.report.ok,
            outcome.report.shed,
            outcome.report.failed,
            outcome.report.rejected,
            outcome.report.unanswered,
            outcome.report.hinted_retries,
            outcome.report.blind_retries,
            outcome.report.p50_ms,
            outcome.report.p99_ms,
            outcome.report.p999_ms,
            outcome.report.max_ms,
            outcome.report.degraded
        );
    }
    if let Some(path) = arg_after(args, "-o") {
        std::fs::write(&path, format!("{json}\n"))
            .map_err(|e| CliError::Io(format!("cannot write {path}: {e}")))?;
        eprintln!("wrote {path}");
    }
    Ok(())
}

/// `critic soak [--seconds N] [--clients N] [--rate X] [--seed N]
/// [--no-kill] [--smoke] [--sys NAME[:PARAM]@AT]... [--json] [-o FILE]`
/// — or, with `--shards N` (N ≥ 2), the sharded fleet soak:
/// `critic soak --shards N [--seconds N] [--clients N] [--rate X]
/// [--seed N] [--max-p99-ms X] [--smoke] [--json] [-o FILE]`
///
/// The supervised service soak: spawns a `critic serve` child under
/// open-loop load and `--sys` fault noise, `SIGKILL`s it mid-load,
/// audits no-lost-ack against the journal, restarts it, applies a 2×
/// overload burst under a queue monitor, and drains it gracefully. Exit
/// code 12 (report JSON printed) when any invariant broke.
///
/// The sharded variant spawns a `critic router` fleet instead,
/// `SIGKILL`s one shard mid-load, and audits no-lost-ack across the
/// union of shard journals, disk-warm restart via peer `fetch_artifact`
/// (counter must be > 0), zero re-simulation of cells journaled Ok
/// before the kill, bit-identical metrics against a single-process run
/// of the same mix, and a graceful fleet drain. Exit code 13 on any
/// violation.
fn run_soak_command(args: &[String]) -> Result<(), CliError> {
    let parse_num = |flag: &str| -> Result<Option<u64>, CliError> {
        match arg_after(args, flag) {
            None => Ok(None),
            Some(v) => v
                .parse::<u64>()
                .map(Some)
                .map_err(|_| CliError::Usage(format!("{flag} expects a number, got `{v}`"))),
        }
    };
    if let Some(shards) = parse_num("--shards")? {
        if shards < 2 {
            return Err(CliError::Usage(
                "--shards expects at least 2 (use plain `critic soak` for one server)".to_string(),
            ));
        }
        return run_sharded_soak_command(args, shards as u32);
    }
    let mut config = SoakConfig {
        smoke: args.iter().any(|a| a == "--smoke"),
        kill: !args.iter().any(|a| a == "--no-kill"),
        ..SoakConfig::default()
    };
    if let Some(n) = parse_num("--seconds")? {
        config.seconds = n;
    }
    if let Some(n) = parse_num("--clients")? {
        config.clients = (n as usize).max(1);
    }
    if let Some(v) = arg_after(args, "--rate") {
        config.rate = v
            .parse::<f64>()
            .map_err(|_| CliError::Usage(format!("--rate expects a number, got `{v}`")))?;
    }
    config.seed = parse_num("--seed")?.unwrap_or(0);
    let mut idx = 0;
    while let Some(pos) = args[idx..].iter().position(|a| a == "--sys") {
        idx += pos + 1;
        let Some(value) = args.get(idx) else {
            return Err(CliError::Usage("--sys expects NAME[:PARAM]@AT".to_string()));
        };
        // Validate now so a typo fails fast instead of inside the child.
        parse_sys_spec(value)?;
        config.sys.push(value.clone());
    }

    let report = soak::run_soak(&config).map_err(bench_error)?;
    let json = serde_json::to_string_pretty(&report)
        .map_err(|e| CliError::Io(format!("cannot serialise soak report: {e}")))?;
    if let Some(path) = arg_after(args, "-o") {
        std::fs::write(&path, format!("{json}\n"))
            .map_err(|e| CliError::Io(format!("cannot write {path}: {e}")))?;
        eprintln!("wrote {path}");
    }
    if report.ok() {
        if args.iter().any(|a| a == "--json") {
            println!("{json}");
        } else {
            println!(
                "soak: {} acked before SIGKILL, all preserved; {} disk hits after restart; \
                 overload rejected {} with retry hints (peak queue {} / cap {}); \
                 server exited {}",
                report.acked_before_kill,
                report.disk_hits_after_restart,
                report.phase_overload.rejected,
                report.peak_queue_depth,
                report.queue_capacity,
                report
                    .server_exit_code
                    .map(|c| c.to_string())
                    .unwrap_or_else(|| "by signal".to_string()),
            );
        }
        Ok(())
    } else {
        println!("{json}");
        for v in &report.violations {
            eprintln!(
                "critic: soak invariant `{}` broken: {}",
                v.invariant, v.detail
            );
        }
        Err(CliError::SoakViolation {
            violations: report.violations.len(),
        })
    }
}

/// The `critic soak --shards N` body: configures and runs
/// [`soak::run_sharded_soak`], then maps violations onto exit code 13.
fn run_sharded_soak_command(args: &[String], shards: u32) -> Result<(), CliError> {
    let parse_num = |flag: &str| -> Result<Option<u64>, CliError> {
        match arg_after(args, flag) {
            None => Ok(None),
            Some(v) => v
                .parse::<u64>()
                .map(Some)
                .map_err(|_| CliError::Usage(format!("{flag} expects a number, got `{v}`"))),
        }
    };
    let mut config = ShardedSoakConfig {
        shards,
        smoke: args.iter().any(|a| a == "--smoke"),
        ..ShardedSoakConfig::default()
    };
    if let Some(n) = parse_num("--seconds")? {
        config.seconds = n;
    }
    if let Some(n) = parse_num("--clients")? {
        config.clients = (n as usize).max(1);
    }
    if let Some(v) = arg_after(args, "--rate") {
        config.rate = v
            .parse::<f64>()
            .map_err(|_| CliError::Usage(format!("--rate expects a number, got `{v}`")))?;
    }
    config.seed = parse_num("--seed")?.unwrap_or(0);
    config.max_p99_ms =
        match arg_after(args, "--max-p99-ms") {
            None => None,
            Some(v) => Some(v.parse::<f64>().map_err(|_| {
                CliError::Usage(format!("--max-p99-ms expects a number, got `{v}`"))
            })?),
        };

    let report = soak::run_sharded_soak(&config).map_err(bench_error)?;
    let json = serde_json::to_string_pretty(&report)
        .map_err(|e| CliError::Io(format!("cannot serialise sharded soak report: {e}")))?;
    if let Some(path) = arg_after(args, "-o") {
        std::fs::write(&path, format!("{json}\n"))
            .map_err(|e| CliError::Io(format!("cannot write {path}: {e}")))?;
        eprintln!("wrote {path}");
    }
    if report.ok() {
        if args.iter().any(|a| a == "--json") {
            println!("{json}");
        } else {
            println!(
                "sharded soak: shard {} SIGKILLed; {} acked before the kill, all preserved \
                 across {} journals; restarted disk-warm ({} artifacts fetched from peers, \
                 0 re-simulations); {} in-flight redispatched; {} / {} cells bit-identical \
                 to a single-process run; failover p99 {:.1} ms; router exited {}",
                report.killed_shard.unwrap_or_default(),
                report.acked_before_kill,
                shards,
                report.fetched_artifacts,
                report.redispatched,
                report.oracle_compared,
                report.oracle_compared,
                report.failover_p99_ms,
                report
                    .router_exit_code
                    .map(|c| c.to_string())
                    .unwrap_or_else(|| "by signal".to_string()),
            );
        }
        Ok(())
    } else {
        println!("{json}");
        for v in &report.violations {
            eprintln!(
                "critic: sharded soak invariant `{}` broken: {}",
                v.invariant, v.detail
            );
        }
        Err(CliError::ShardedSoakViolation {
            violations: report.violations.len(),
        })
    }
}

/// `critic chaos --seed S [--cells N] [--smoke] [--minimize] [-o FILE]`
///
/// Seeds a random schedule of systemic + data faults, drills a smoke
/// campaign under it with the supervision policy armed, and asserts the
/// runner's invariants (accounting, journal-resumable, warm-unfaulted,
/// ledger). On violation the full report — schedule included — is printed
/// as JSON and the exit code is 10; `--minimize` first delta-debugs the
/// schedule to a minimal subset reproducing the violation.
fn run_chaos_command(args: &[String]) -> Result<(), CliError> {
    let mut config = ChaosConfig::default();
    match arg_after(args, "--seed") {
        None => {
            return Err(CliError::Usage(
                "usage: critic chaos --seed S [--cells N] [--smoke] [--minimize] [-o FILE]"
                    .to_string(),
            ))
        }
        Some(v) => {
            config.seed = v
                .parse::<u64>()
                .map_err(|_| CliError::Usage(format!("--seed expects a number, got `{v}`")))?;
        }
    }
    if let Some(v) = arg_after(args, "--cells") {
        config.cells = v
            .parse::<usize>()
            .map_err(|_| CliError::Usage(format!("--cells expects a number, got `{v}`")))?;
        if config.cells == 0 {
            return Err(CliError::Usage("--cells must be at least 1".to_string()));
        }
    }
    config.smoke = args.iter().any(|a| a == "--smoke");
    config.minimize = args.iter().any(|a| a == "--minimize");

    let report = chaos::run_chaos(&config).map_err(bench_error)?;
    let json = serde_json::to_string_pretty(&report)
        .map_err(|e| CliError::Io(format!("cannot serialise chaos report: {e}")))?;
    if let Some(path) = arg_after(args, "-o") {
        std::fs::write(&path, format!("{json}\n"))
            .map_err(|e| CliError::Io(format!("cannot write {path}: {e}")))?;
        eprintln!("wrote {path}");
    }

    if report.ok() {
        println!(
            "chaos seed {}: {} schedule entries over {} cells — all invariants held{}",
            report.seed,
            report.schedule.len(),
            report.cells.len(),
            if report.interrupted {
                " (campaign interrupted and shed as designed)"
            } else {
                ""
            }
        );
        for entry in &report.schedule {
            println!("  {entry}");
        }
        Ok(())
    } else {
        println!("{json}");
        for v in &report.violations {
            eprintln!(
                "critic: chaos invariant `{}` broken: {}",
                v.invariant, v.detail
            );
        }
        if let Some(minimal) = &report.minimized {
            eprintln!(
                "critic: minimal reproducing schedule ({} of {} entries):",
                minimal.len(),
                report.schedule.len()
            );
            for entry in minimal {
                eprintln!("critic:   {entry}");
            }
        }
        Err(CliError::ChaosViolation {
            violations: report.violations.len(),
        })
    }
}

/// `critic drill --points N [--seed S] [--smoke] [--minimize] [-o FILE]`
///
/// The kill-anywhere recovery drill: for each seeded point, a child
/// `critic campaign` run with a persistent store and a segmented journal
/// is crashed at a planted operation (plus seeded fault noise), restarted
/// with `--resume`, and checked against the durability invariants —
/// accounting, journal-resumable, warm-unfaulted, ledger, **durable-warm**
/// (a restarted campaign is served bit-identical artifacts from disk) and
/// **no-lost-ack** (a cell journaled Ok before the kill is never
/// re-simulated). On violation the report (with the minimal reproducing
/// fault subset under `--minimize`) is printed as JSON and the exit code
/// is 11.
fn run_drill_command(args: &[String]) -> Result<(), CliError> {
    let mut config = DrillConfig::default();
    if let Some(v) = arg_after(args, "--seed") {
        config.seed = v
            .parse::<u64>()
            .map_err(|_| CliError::Usage(format!("--seed expects a number, got `{v}`")))?;
    }
    if let Some(v) = arg_after(args, "--points") {
        config.points = v
            .parse::<usize>()
            .map_err(|_| CliError::Usage(format!("--points expects a number, got `{v}`")))?;
        if config.points == 0 {
            return Err(CliError::Usage("--points must be at least 1".to_string()));
        }
    }
    config.smoke = args.iter().any(|a| a == "--smoke");
    config.minimize = args.iter().any(|a| a == "--minimize");

    let report = drill::run_drill(&config).map_err(bench_error)?;
    let json = serde_json::to_string_pretty(&report)
        .map_err(|e| CliError::Io(format!("cannot serialise drill report: {e}")))?;
    if let Some(path) = arg_after(args, "-o") {
        std::fs::write(&path, format!("{json}\n"))
            .map_err(|e| CliError::Io(format!("cannot write {path}: {e}")))?;
        eprintln!("wrote {path}");
    }

    if report.ok() {
        println!(
            "drill seed {}: {} kill points ({} crashed, {} clean) — durable-warm and \
             no-lost-ack held; {} acked cells preserved, {} disk hits on verification",
            report.seed,
            report.points.len(),
            report.crashed,
            report.clean,
            report.acked_preserved,
            report.disk_hits
        );
        Ok(())
    } else {
        println!("{json}");
        for v in &report.violations {
            eprintln!(
                "critic: drill invariant `{}` broken at point {} ({}): {}",
                v.invariant, v.point, v.crash, v.detail
            );
        }
        if let Some(minimal) = &report.minimized {
            eprintln!(
                "critic: minimal reproducing fault set ({} spec(s)):",
                minimal.len()
            );
            for spec in minimal {
                eprintln!("critic:   {spec}");
            }
        }
        Err(CliError::DrillViolation {
            violations: report.violations.len(),
        })
    }
}

/// The roll-up `critic stats` prints: cell counts, wall-clock, the
/// campaign-wide telemetry aggregate, and the persistent-store counters.
#[derive(Debug, serde::Serialize)]
struct StatsReport {
    /// Journalled cells after newest-wins dedup on (app, scheme).
    cells: usize,
    /// Cells whose terminal status is `Ok`.
    ok: usize,
    /// Cells that failed, timed out, panicked, or were shed.
    failed: usize,
    /// Mid-file journal lines that classified as nothing — fault-merged
    /// writes and checksum-failed corruption. Counted, not fatal: a journal
    /// that survived a kill or a chaos drill must still roll up.
    skipped_lines: usize,
    /// Checkpoint records replayed across the journal's segments.
    checkpoints: usize,
    /// Whether the active file ended in a torn (half-written) line.
    torn_tail: bool,
    /// Sum of final-attempt wall-clock across cells, in milliseconds.
    total_millis: u64,
    /// Campaign-wide telemetry: the journal's trailer line when present,
    /// otherwise re-aggregated from per-cell spans.
    telemetry: critic_obs::TelemetrySnapshot,
    /// Artifact-store counters from the journal's store trailer, when the
    /// campaign ran one (`disk` holds the persistent tier's counters).
    store: Option<StoreStats>,
    /// Per-run-tag roll-ups: one entry per `--run-tag` found in the journal
    /// (untagged records group under `null`), so a journal spanning server
    /// restarts reports each incarnation separately.
    runs: Vec<critic_core::journal::RunRollup>,
    /// Per-cell stage timing from journaled span data — one entry per cell
    /// that ran with telemetry enabled, in journal order. Empty for silent
    /// campaigns.
    cell_phases: Vec<CellPhases>,
}

/// How one cell's wall clock split across the pipeline stages, extracted
/// from its journaled [`critic_obs::TelemetrySnapshot`].
#[derive(Debug, serde::Serialize)]
struct CellPhases {
    /// App name.
    app: String,
    /// Scheme name.
    scheme: String,
    /// The cell's journaled final-attempt wall clock, in milliseconds.
    millis: u64,
    /// World-construction span total, in milliseconds.
    world_build_millis: f64,
    /// Profiler span total, in milliseconds.
    profile_millis: f64,
    /// Compiler-pass span total, in milliseconds.
    passes_millis: f64,
    /// Translation-validation span total, in milliseconds.
    validate_millis: f64,
    /// Simulation span total, in milliseconds.
    sim_millis: f64,
}

/// Per-shard roll-up in the multi-journal `critic stats` report: one
/// entry per journal file, in argument order.
#[derive(Debug, serde::Serialize)]
struct ShardRollup {
    /// The journal path as given (or discovered in a `--journal DIR`).
    journal: String,
    /// Journalled cells after newest-wins dedup.
    cells: usize,
    /// Cells whose terminal status is `Ok`.
    ok: usize,
    /// Cells that failed, timed out, panicked, or were shed.
    failed: usize,
    /// Sum of final-attempt wall-clock across cells, in milliseconds.
    total_millis: u64,
    /// Unparseable lines skipped during replay.
    skipped_lines: usize,
    /// Per-run-tag roll-ups within this journal (a router restamps a
    /// restarted shard's tag, so restarts show up as separate runs).
    runs: Vec<critic_core::journal::RunRollup>,
}

/// The fleet-wide `critic stats` report when more than one journal is
/// given: per-shard roll-ups plus cross-fleet totals.
#[derive(Debug, serde::Serialize)]
struct FleetStatsReport {
    /// One roll-up per journal.
    shards: Vec<ShardRollup>,
    /// Distinct (app, scheme) cells across the whole fleet.
    fleet_cells: usize,
    /// Sum of per-shard `ok`.
    fleet_ok: usize,
    /// Sum of per-shard `failed`.
    fleet_failed: usize,
    /// Sum of per-shard wall-clock, in milliseconds.
    fleet_millis: u64,
}

/// Expands one `--journal` value: a directory becomes its `*.jsonl`
/// files sorted by name (the router's `shard-N.jsonl` layout), a file is
/// taken as-is.
fn expand_journal_arg(path: &str) -> Result<Vec<std::path::PathBuf>, CliError> {
    let p = std::path::Path::new(path);
    if p.is_dir() {
        let mut files: Vec<std::path::PathBuf> = std::fs::read_dir(p)
            .map_err(|e| CliError::Io(format!("cannot read {path}: {e}")))?
            .filter_map(|entry| entry.ok())
            .map(|entry| entry.path())
            .filter(|f| f.extension().is_some_and(|e| e == "jsonl"))
            .collect();
        files.sort();
        if files.is_empty() {
            return Err(CliError::Io(format!("no *.jsonl journals under {path}")));
        }
        Ok(files)
    } else if p.exists() {
        Ok(vec![p.to_path_buf()])
    } else {
        Err(CliError::Io(format!("cannot read {path}: no such file")))
    }
}

/// `critic stats --journal FILE|DIR [--journal FILE|DIR]... [--json]`
///
/// Replays a campaign journal — segments, checkpoints, and the active file,
/// with per-line checksum verification — dedups cells newest-wins on
/// (app, scheme) — the same rule `--resume` applies — and prints the
/// telemetry and store roll-up. More than one journal (repeat `--journal`,
/// or point it at a router's journal directory) switches to the fleet
/// view: a per-shard roll-up line each plus cross-fleet totals, with
/// distinct-cell counting across shards.
fn run_stats_command(args: &[String]) -> Result<(), CliError> {
    let mut paths: Vec<std::path::PathBuf> = Vec::new();
    let mut idx = 0;
    while let Some(pos) = args[idx..].iter().position(|a| a == "--journal") {
        idx += pos + 1;
        let Some(value) = args.get(idx) else {
            return Err(CliError::Usage("--journal expects FILE|DIR".to_string()));
        };
        paths.extend(expand_journal_arg(value)?);
    }
    if paths.is_empty() {
        return Err(CliError::Usage(
            "usage: critic stats --journal FILE|DIR [--journal FILE|DIR]... [--json]".to_string(),
        ));
    }
    if paths.len() > 1 {
        return run_fleet_stats(&paths, args.iter().any(|a| a == "--json"));
    }
    let journal = paths[0].as_path();
    let replayed =
        Journal::replay(journal, &Telemetry::off()).map_err(|e| CliError::Io(e.to_string()))?;

    // Before the trailer fields are moved out below.
    let runs = replayed.run_rollups();
    let telemetry = match replayed.telemetry_trailer {
        Some(record) => record.campaign_telemetry,
        None => {
            let mut aggregate = critic_obs::TelemetrySnapshot::default();
            for record in &replayed.records {
                if let Some(spans) = &record.spans {
                    aggregate.absorb(spans);
                }
            }
            aggregate
        }
    };
    let ok = replayed
        .records
        .iter()
        .filter(|r| r.status == CellStatus::Ok)
        .count();
    let ms = |nanos: u64| nanos as f64 / 1e6;
    let cell_phases = replayed
        .records
        .iter()
        .filter_map(|r| {
            let spans = r.spans.as_ref()?;
            Some(CellPhases {
                app: r.app.clone(),
                scheme: r.scheme.clone(),
                millis: r.millis,
                world_build_millis: ms(spans.world_build.total_nanos),
                profile_millis: ms(spans.profile.total_nanos),
                passes_millis: ms(spans.passes.total_nanos),
                validate_millis: ms(spans.validate.total_nanos),
                sim_millis: ms(spans.sim.total_nanos),
            })
        })
        .collect();
    let report = StatsReport {
        cells: replayed.records.len(),
        ok,
        failed: replayed.records.len() - ok,
        skipped_lines: replayed.skipped_lines,
        checkpoints: replayed.checkpoints,
        torn_tail: replayed.torn_tail,
        total_millis: replayed.records.iter().map(|r| r.millis).sum(),
        telemetry,
        store: replayed.store_trailer.map(|t| t.campaign_store),
        runs,
        cell_phases,
    };

    if args.iter().any(|a| a == "--json") {
        let json = serde_json::to_string_pretty(&report)
            .map_err(|e| CliError::Io(format!("cannot serialise stats report: {e}")))?;
        println!("{json}");
    } else {
        println!(
            "{} cells ({} ok, {} failed), {} ms total",
            report.cells, report.ok, report.failed, report.total_millis
        );
        // One line per run tag only when tags actually partition the
        // journal — a single-run journal would just repeat the total.
        if report.runs.len() > 1 || report.runs.iter().any(|r| r.run.is_some()) {
            for rollup in &report.runs {
                let tag = match rollup.run {
                    Some(tag) => format!("run {tag}"),
                    None => "untagged".to_string(),
                };
                println!(
                    "  {tag}: {} cells ({} ok, {} failed, {} shed), {} ms",
                    rollup.cells, rollup.ok, rollup.failed, rollup.shed, rollup.total_millis
                );
            }
        }
        if report.skipped_lines > 0 {
            println!(
                "({} unparseable journal line(s) skipped — torn merges or corruption)",
                report.skipped_lines
            );
        }
        if report.torn_tail {
            println!("(active file ends in a torn line — truncated on the next resume)");
        }
        if report.checkpoints > 0 {
            println!("({} checkpoint(s) replayed)", report.checkpoints);
        }
        if let Some(store) = &report.store {
            if let Some(disk) = &store.disk {
                println!(
                    "persistent store: {} entries ({} B), {} disk hits / {} misses, \
                     {} saves, {} evictions, {} quarantines",
                    disk.entries,
                    disk.bytes,
                    disk.disk_hits,
                    disk.disk_misses,
                    disk.saves,
                    disk.evictions,
                    disk.quarantines
                );
            }
        }
        if report.telemetry.is_empty() {
            println!("no telemetry in journal (campaign ran without --stats)");
        } else {
            println!("{}", report.telemetry.render());
        }
    }
    Ok(())
}

/// The multi-journal `critic stats` body: replays every journal
/// independently and prints per-shard roll-ups plus fleet totals.
fn run_fleet_stats(paths: &[std::path::PathBuf], json: bool) -> Result<(), CliError> {
    let mut shards = Vec::new();
    let mut fleet: std::collections::BTreeSet<(String, String)> = std::collections::BTreeSet::new();
    for path in paths {
        let replayed = Journal::replay(path, &Telemetry::off())
            .map_err(|e| CliError::Io(format!("{}: {e}", path.display())))?;
        let ok = replayed
            .records
            .iter()
            .filter(|r| r.status == CellStatus::Ok)
            .count();
        for record in &replayed.records {
            fleet.insert((record.app.clone(), record.scheme.clone()));
        }
        shards.push(ShardRollup {
            journal: path.display().to_string(),
            cells: replayed.records.len(),
            ok,
            failed: replayed.records.len() - ok,
            total_millis: replayed.records.iter().map(|r| r.millis).sum(),
            skipped_lines: replayed.skipped_lines,
            runs: replayed.run_rollups(),
        });
    }
    let report = FleetStatsReport {
        fleet_cells: fleet.len(),
        fleet_ok: shards.iter().map(|s| s.ok).sum(),
        fleet_failed: shards.iter().map(|s| s.failed).sum(),
        fleet_millis: shards.iter().map(|s| s.total_millis).sum(),
        shards,
    };
    if json {
        let json = serde_json::to_string_pretty(&report)
            .map_err(|e| CliError::Io(format!("cannot serialise fleet stats: {e}")))?;
        println!("{json}");
    } else {
        for shard in &report.shards {
            println!(
                "{}: {} cells ({} ok, {} failed), {} ms{}",
                shard.journal,
                shard.cells,
                shard.ok,
                shard.failed,
                shard.total_millis,
                if shard.skipped_lines > 0 {
                    format!(" ({} line(s) skipped)", shard.skipped_lines)
                } else {
                    String::new()
                }
            );
            // A shard journal spanning restarts carries one run tag per
            // incarnation; surface them the same way the single view does.
            if shard.runs.len() > 1 {
                for rollup in &shard.runs {
                    let tag = match rollup.run {
                        Some(tag) => format!("run {tag}"),
                        None => "untagged".to_string(),
                    };
                    println!(
                        "    {tag}: {} cells ({} ok, {} failed, {} shed), {} ms",
                        rollup.cells, rollup.ok, rollup.failed, rollup.shed, rollup.total_millis
                    );
                }
            }
        }
        println!(
            "fleet: {} journals, {} distinct cells ({} ok records, {} failed), {} ms total",
            report.shards.len(),
            report.fleet_cells,
            report.fleet_ok,
            report.fleet_failed,
            report.fleet_millis
        );
    }
    Ok(())
}
