//! Regenerates every table and figure of the paper's evaluation.
//!
//! ```text
//! figures [--quick] [--json] [TARGET...]
//! TARGET: table1 table2 fig1a fig1b fig3 fig5a fig5b fig8 fig10 fig11
//!         fig12a fig12b fig13 ledger all   (default: all)
//! ```
//!
//! `--quick` runs 3 apps per suite on 100k-instruction traces; the default
//! runs all apps on 240k-instruction traces (a few minutes).

use critic_core::experiments as exp;
use critic_core::DEFAULT_TRACE_LEN;

struct Opts {
    quick: bool,
    json: bool,
    targets: Vec<String>,
}

const TARGETS: [&str; 15] = [
    "table1", "table2", "fig1a", "fig1b", "fig3", "fig5a", "fig5b", "fig8", "fig10", "fig11",
    "fig12a", "fig12b", "fig13", "ledger", "all",
];

fn parse_args() -> Opts {
    let mut opts = Opts {
        quick: false,
        json: false,
        targets: Vec::new(),
    };
    for arg in std::env::args().skip(1) {
        match arg.as_str() {
            "--quick" => opts.quick = true,
            "--json" => opts.json = true,
            "--help" | "-h" => {
                eprintln!("usage: figures [--quick] [--json] [TARGET...]");
                std::process::exit(0);
            }
            other if TARGETS.contains(&other) => opts.targets.push(other.to_string()),
            other => {
                eprintln!(
                    "figures: unknown target `{other}`; valid: {}",
                    TARGETS.join(", ")
                );
                std::process::exit(2);
            }
        }
    }
    if opts.targets.is_empty() {
        opts.targets.push("all".into());
    }
    opts
}

/// Runs one figure target behind the campaign's panic isolation boundary:
/// a panic in one target is reported and the remaining targets still run.
fn isolate_target(failures: &mut Vec<String>, name: &str, f: impl FnOnce()) {
    if let Err(e) = critic_core::campaign::isolate(name, f) {
        eprintln!("figures: target {name} failed: {e}");
        failures.push(name.to_string());
    }
}

fn main() {
    let opts = parse_args();
    let (len, apps) = if opts.quick {
        (100_000, 3)
    } else {
        (DEFAULT_TRACE_LEN, 10)
    };
    let spec_apps = apps.min(8);
    let wants = |t: &str| opts.targets.iter().any(|x| x == t || x == "all");
    let emit = |name: &str, value: &dyn erased_fmt::Emit| {
        if opts.json {
            println!("{}", value.to_json(name));
        } else {
            println!("{}", value.to_text(name));
        }
    };
    let mut failures: Vec<String> = Vec::new();

    if wants("table1") {
        println!("== Table I: baseline simulation configuration ==");
        println!("{}\n", exp::table1());
    }
    if wants("table2") {
        println!("== Table II: workloads ==");
        for row in exp::table2() {
            println!(
                "  {:12} {:10} {:22} {}",
                row.name, row.suite, row.domain, row.activity
            );
        }
        println!();
    }
    if wants("fig1a") {
        isolate_target(&mut failures, "fig1a", || {
            let rows = exp::fig1a(len, spec_apps);
            emit(
                "fig1a",
                &rows_wrap(
                    &rows,
                    |r: &exp::Fig1aRow| {
                        format!(
                            "  {:10} prefetch {:+.2}%  prioritize {:+.2}%  critical insns {:.1}%",
                            r.suite,
                            (r.prefetch_speedup - 1.0) * 100.0,
                            (r.prioritize_speedup - 1.0) * 100.0,
                            r.critical_frac * 100.0
                        )
                    },
                    "Fig. 1a: single-instruction criticality optimizations",
                ),
            );
        });
    }
    if wants("fig1b") {
        isolate_target(&mut failures, "fig1b", || {
            let rows = exp::fig1b(len, spec_apps);
            emit(
                "fig1b",
                &rows_wrap(
                    &rows,
                    |r: &exp::Fig1bRow| {
                        format!(
                            "  {:10} none {:.2}  gaps(0..5+) {:?}",
                            r.suite,
                            r.none_frac,
                            r.gap_fracs.map(|g| (g * 100.0).round() / 100.0)
                        )
                    },
                    "Fig. 1b: low-fanout gaps between dependent criticals",
                ),
            );
        });
    }
    if wants("fig3") {
        isolate_target(&mut failures, "fig3", || {
            let rows = exp::fig3(len, spec_apps);
            emit(
                "fig3",
                &rows_wrap(
                    &rows,
                    |r: &exp::Fig3Row| {
                        format!(
                "  {:10} stages[fetch,dec,issue,exec,rob] {:?}  F.StallForI {:.3}  F.StallForR+D {:.3}  latency[s,m,l] {:?}",
                r.suite,
                r.stage_shares.map(|s| (s * 100.0).round() / 100.0),
                r.stall_for_i,
                r.stall_for_rd,
                r.latency_mix.map(|s| (s * 100.0).round() / 100.0)
            )
                    },
                    "Fig. 3: critical-instruction pipeline profile",
                ),
            );
        });
    }
    if wants("fig5a") {
        isolate_target(&mut failures, "fig5a", || {
            let rows = exp::fig5a(len, spec_apps);
            emit(
                "fig5a",
                &rows_wrap(
                    &rows,
                    |r: &exp::Fig5aRow| {
                        format!(
                "  {:10} max len {:5}  p99 len {:4}  mean len {:5.1} | max spread {:6}  p99 spread {:5}",
                r.suite, r.shape.max_len, r.shape.p99_len, r.shape.mean_len,
                r.shape.max_spread, r.shape.p99_spread
            )
                    },
                    "Fig. 5a: IC length and spread",
                ),
            );
        });
    }
    if wants("fig5b") {
        isolate_target(&mut failures, "fig5b", || {
            let rows = exp::fig5b(len, apps);
            emit(
                "fig5b",
                &rows_wrap(
                    &rows,
                    |r: &exp::Fig5bRow| {
                        format!(
                "  {:12} unique {:5}  critical {:4}  convertible {:.1}%  coverage {:.1}%",
                r.app, r.unique_chains, r.critical_chains,
                r.convertible_frac * 100.0, r.coverage * 100.0
            )
                    },
                    "Fig. 5b: unique CritICs and Thumb convertibility",
                ),
            );
        });
    }
    if wants("fig8") || wants("fig10") {
        isolate_target(&mut failures, "fig10", || {
            let rows = exp::fig10(len, apps);
            emit(
                "fig10",
                &rows_wrap(
                    &rows,
                    |r: &exp::Fig10Row| {
                        format!(
                "  {:12} hoist {:+.2}%  critic {:+.2}%  ideal {:+.2}%  branch-switch {:+.2}% | fetch-stall saved {:+.2}pp | energy: cpu {:+.2}% system {:+.2}% (icache {:+.2}pp)",
                r.app,
                (r.hoist - 1.0) * 100.0,
                (r.critic - 1.0) * 100.0,
                (r.critic_ideal - 1.0) * 100.0,
                (r.branch_switch - 1.0) * 100.0,
                r.fetch_stall_saving * 100.0,
                r.cpu_energy_saving * 100.0,
                r.system_energy_saving * 100.0,
                r.icache_component * 100.0
            )
                    },
                    "Figs. 8 & 10: CritIC design space (per app)",
                ),
            );
            let mean = |f: fn(&exp::Fig10Row) -> f64| {
                rows.iter().map(f).sum::<f64>() / rows.len().max(1) as f64
            };
            println!(
            "  MEAN         hoist {:+.2}%  critic {:+.2}%  ideal {:+.2}%  branch-switch {:+.2}% | energy cpu {:+.2}% system {:+.2}%\n",
            (mean(|r| r.hoist) - 1.0) * 100.0,
            (mean(|r| r.critic) - 1.0) * 100.0,
            (mean(|r| r.critic_ideal) - 1.0) * 100.0,
            (mean(|r| r.branch_switch) - 1.0) * 100.0,
            mean(|r| r.cpu_energy_saving) * 100.0,
            mean(|r| r.system_energy_saving) * 100.0,
        );
        });
    }
    if wants("fig11") {
        isolate_target(&mut failures, "fig11", || {
            let rows = exp::fig11(len, apps);
            emit(
                "fig11",
                &rows_wrap(
                    &rows,
                    |r: &exp::Fig11Row| {
                        format!(
                "  {:12} speedup {:+.2}%  with CritIC {:+.2}%  dF.StallForI {:+.2}pp  dF.StallForR+D {:+.2}pp",
                r.mechanism,
                (r.speedup - 1.0) * 100.0,
                (r.with_critic - 1.0) * 100.0,
                r.d_stall_i * 100.0,
                r.d_stall_rd * 100.0
            )
                    },
                    "Fig. 11: hardware fetch mechanisms vs (and with) CritIC",
                ),
            );
        });
    }
    if wants("fig12a") {
        isolate_target(&mut failures, "fig12a", || {
            let rows = exp::fig12a(len, apps, &[2, 3, 4, 5, 7, 9]);
            emit(
                "fig12a",
                &rows_wrap(
                    &rows,
                    |r: &exp::Fig12aRow| {
                        format!(
                            "  n={:2}  speedup {:+.2}%  fetch-stall saved {:+.2}pp",
                            r.n,
                            (r.speedup - 1.0) * 100.0,
                            r.fetch_saving * 100.0
                        )
                    },
                    "Fig. 12a: sensitivity to CritIC length",
                ),
            );
        });
    }
    if wants("fig12b") {
        isolate_target(&mut failures, "fig12b", || {
            let rows = exp::fig12b(len, apps, &[0.2, 0.33, 0.5, 0.72, 1.0]);
            emit(
                "fig12b",
                &rows_wrap(
                    &rows,
                    |r: &exp::Fig12bRow| {
                        format!(
                            "  profiled {:3.0}%  speedup {:+.2}%",
                            r.fraction * 100.0,
                            (r.speedup - 1.0) * 100.0
                        )
                    },
                    "Fig. 12b: sensitivity to profiling coverage",
                ),
            );
        });
    }
    if wants("fig13") {
        isolate_target(&mut failures, "fig13", || {
            let rows = exp::fig13(len, apps);
            emit(
                "fig13",
                &rows_wrap(
                    &rows,
                    |r: &exp::Fig13Row| {
                        format!(
                            "  {:14} speedup {:+.2}%  dynamic 16-bit {:4.1}%",
                            r.scheme,
                            (r.speedup - 1.0) * 100.0,
                            r.converted_frac * 100.0
                        )
                    },
                    "Fig. 13: criticality-aware vs opportunistic conversion",
                ),
            );
        });
    }

    if wants("ledger") {
        isolate_target(&mut failures, "ledger", || {
            let rows = exp::ledger_audit(len, apps);
            emit(
                "ledger",
                &rows_wrap(
                    &rows,
                    |r: &exp::LedgerRow| {
                        format!(
                            "  {:12} {:10} {:>9} cycles = I {:>7} + R+D {:>7} + dec {:>6} + iss {:>6} \
                             + exe {:>7} + mem {:>7} + com {:>7} + idle {:>6}  [{}]",
                            r.app,
                            r.suite,
                            r.cycles,
                            r.ledger.stall_for_i(),
                            r.ledger.stall_for_rd(),
                            r.ledger.decode,
                            r.ledger.issue,
                            r.ledger.execute,
                            r.ledger.mem,
                            r.ledger.commit,
                            r.ledger.squash_idle,
                            if r.balanced { "balanced" } else { "UNBALANCED" }
                        )
                    },
                    "Cycle-accounting audit: every cycle in exactly one bucket",
                ),
            );
            let broken: Vec<&str> = rows
                .iter()
                .filter(|r| !r.balanced)
                .map(|r| r.app.as_str())
                .collect();
            assert!(broken.is_empty(), "unbalanced ledgers: {broken:?}");
        });
    }

    if !failures.is_empty() {
        eprintln!(
            "figures: {} target(s) failed: {}",
            failures.len(),
            failures.join(", ")
        );
        std::process::exit(1);
    }
}

// -- tiny formatting plumbing ------------------------------------------------

mod erased_fmt {
    pub trait Emit {
        fn to_text(&self, name: &str) -> String;
        fn to_json(&self, name: &str) -> String;
    }
}

struct RowsWrap<'a, T> {
    rows: &'a [T],
    fmt: fn(&T) -> String,
    title: &'static str,
}

fn rows_wrap<'a, T>(rows: &'a [T], fmt: fn(&T) -> String, title: &'static str) -> RowsWrap<'a, T> {
    RowsWrap { rows, fmt, title }
}

impl<'a, T: serde::Serialize> erased_fmt::Emit for RowsWrap<'a, T> {
    fn to_text(&self, _name: &str) -> String {
        let mut out = format!("== {} ==\n", self.title);
        for row in self.rows {
            out.push_str(&(self.fmt)(row));
            out.push('\n');
        }
        out
    }

    fn to_json(&self, name: &str) -> String {
        serde_json::json!({ name: self.rows }).to_string()
    }
}
