//! The line-delimited-JSON TCP front end behind `critic serve`: a thin,
//! dependency-free wire layer over [`CampaignService`].
//!
//! One request or reply per line. Requests (disjoint top-level keys,
//! which is how the parser classifies them):
//!
//! ```text
//! {"submit":{"id":7,"app":"Acrobat","scheme":"critic","deadline_ms":2000}}
//! {"stats":true}
//! {"ping":true}
//! {"shutdown":true}
//! {"heartbeat":true}
//! {"fetch_artifact":{"class":"profile","key":1234}}
//! {"list_artifacts":true}
//! ```
//!
//! Replies:
//!
//! ```text
//! {"accepted":{"id":7}}
//! {"rejected":{"id":7,"reason":"rate limited","retry_after_ms":31}}
//! {"done":{"id":7,"record":{...CellRecord...}}}
//! {"stats_reply":{...}}
//! {"pong":true}
//! {"draining":true}
//! {"heartbeat_reply":{"shard":2,"draining":false}}
//! {"artifact":{"class":"profile","key":1234,"found":true,"payload":"...","crc32":987}}
//! {"artifact_index":[{"class":"profile","key":1234},...]}
//! {"error":"..."}
//! ```
//!
//! The last three verbs are the shard-fleet surface: `heartbeat` is the
//! router's liveness probe (answered even while draining, unlike new
//! submissions), and `fetch_artifact`/`list_artifacts` are the peer-rebuild
//! path — a restarted shard diffs a live peer's artifact index against its
//! own disk and pulls what it is missing, CRC-checked on receipt, instead
//! of re-simulating.
//!
//! Ordering: `accepted` is written after the submission is admitted, but
//! the terminal `done` is written by a worker thread and may overtake it
//! on a fast cell. Clients must correlate by `id`, not by line order.
//!
//! The `done` line is written only *after* the record's journal append has
//! been fsynced ([`CampaignService`]'s ack-follows-fsync invariant), so
//! every `done` a client observed survives a `SIGKILL` of the server.

use std::io::{BufRead, BufReader, Read, Write};
use std::net::{Shutdown, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::thread;
use std::time::Duration;

use critic_core::campaign::CellRecord;
use critic_core::disk::ArtifactClass;
use critic_core::keys::crc32;
use critic_core::service::{CampaignService, SubmitOutcome};
use critic_core::store::ArtifactStore;
use serde::{Deserialize, Serialize};

/// Set by the binary's `SIGTERM` handler; the accept loop polls it and
/// begins a graceful drain when it goes true.
pub static TERM: AtomicBool = AtomicBool::new(false);

/// `{"submit":{...}}` — submit one campaign cell.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SubmitRequest {
    /// The submission body.
    pub submit: SubmitBody,
}

/// The body of a [`SubmitRequest`].
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SubmitBody {
    /// Client-chosen correlation id, echoed on every reply to this
    /// submission.
    pub id: u64,
    /// App name (case-insensitive).
    pub app: String,
    /// Scheme name (`critic`, `opp16`, `hoist`, ...).
    pub scheme: String,
    /// Optional per-request deadline; the server clamps it against its own.
    pub deadline_ms: Option<u64>,
}

/// `{"stats":true}` — ask for the server-side counters.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct StatsRequest {
    /// Always `true`; the key is the request.
    pub stats: bool,
}

/// `{"ping":true}` — liveness probe.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct PingRequest {
    /// Always `true`; the key is the request.
    pub ping: bool,
}

/// `{"shutdown":true}` — begin a graceful drain (same path as `SIGTERM`).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ShutdownRequest {
    /// Always `true`; the key is the request.
    pub shutdown: bool,
}

/// `{"heartbeat":true}` — the router's liveness probe. Unlike `ping`, the
/// reply carries the shard's identity so a supervisor can detect a port
/// reused by a stranger.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct HeartbeatRequest {
    /// Always `true`; the key is the request.
    pub heartbeat: bool,
}

/// `{"fetch_artifact":{"class":"profile","key":N}}` — ask a peer shard for
/// one persistent artifact by (class, key).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct FetchArtifactRequest {
    /// Which artifact.
    pub fetch_artifact: ArtifactRef,
}

/// `{"list_artifacts":true}` — ask a peer shard for its full artifact
/// index, so a rebuilding shard can diff it against its own disk.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ListArtifactsRequest {
    /// Always `true`; the key is the request.
    pub list_artifacts: bool,
}

/// One (class, key) reference into a shard's persistent store.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ArtifactRef {
    /// Artifact class name (`profile` or `baseline`).
    pub class: String,
    /// The stable artifact key.
    pub key: u64,
}

/// `{"accepted":{"id":N}}` — the submission passed admission control.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct AcceptedReply {
    /// The echoed correlation id.
    pub accepted: IdBody,
}

/// An id-only reply body.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct IdBody {
    /// The echoed correlation id.
    pub id: u64,
}

/// `{"rejected":{...}}` — admission control refused the submission;
/// nothing was queued and no `done` will follow.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct RejectedReply {
    /// The rejection body.
    pub rejected: RejectedBody,
}

/// The body of a [`RejectedReply`].
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct RejectedBody {
    /// The echoed correlation id.
    pub id: u64,
    /// Why admission control refused (`rate limited`, `queue full`, ...).
    pub reason: String,
    /// Earliest sensible retry, milliseconds (0 = don't retry as-is).
    pub retry_after_ms: u64,
}

/// `{"done":{...}}` — the terminal result of an accepted submission,
/// written after its journal fsync.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct DoneReply {
    /// The completion body.
    pub done: DoneBody,
}

/// The body of a [`DoneReply`].
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct DoneBody {
    /// The echoed correlation id.
    pub id: u64,
    /// The terminal cell record (may be a `Shed` record from an open
    /// breaker).
    pub record: CellRecord,
}

/// `{"stats_reply":{...}}` — answer to a [`StatsRequest`].
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct StatsReply {
    /// The counters body.
    pub stats_reply: ServeStats,
}

/// Server-side counters, serialised on demand.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct ServeStats {
    /// Cells queued but not yet claimed by a worker.
    pub queue_depth: u64,
    /// Cells currently executing.
    pub in_flight: u64,
    /// Requests accepted (admitted or synchronously shed) so far.
    pub accepted: u64,
    /// Terminal responses delivered so far.
    pub responded: u64,
    /// Whether a drain has begun.
    pub draining: bool,
    /// Persistent-store disk hits so far (0 without a `--store-dir`).
    pub disk_hits: u64,
    /// Which shard this server is, when it runs under a router.
    pub shard: Option<u64>,
    /// Artifacts pulled from peers during rebuild (the soak's disk-warm
    /// gate: a restarted shard must show this > 0).
    pub fetched_artifacts: u64,
    /// Profiles materialized so far — disk-warm loads included, since the
    /// in-memory memo counts its closure runs.
    pub profiles_built: u64,
    /// Baselines materialized so far, same accounting.
    pub baselines_built: u64,
    /// Persistent-store entries written. A from-scratch build always
    /// saves and a disk-warm load never does, so the soak's
    /// zero-re-simulation gate watches the delta of this counter.
    pub disk_saves: u64,
}

/// `{"pong":true}` — answer to a [`PingRequest`].
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct PongReply {
    /// Always `true`.
    pub pong: bool,
}

/// `{"draining":true}` — answer to a [`ShutdownRequest`].
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct DrainingReply {
    /// Always `true`.
    pub draining: bool,
}

/// `{"heartbeat_reply":{...}}` — answer to a [`HeartbeatRequest`].
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct HeartbeatReply {
    /// The heartbeat body.
    pub heartbeat_reply: HeartbeatBody,
}

/// The body of a [`HeartbeatReply`].
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct HeartbeatBody {
    /// The shard id the server was started with, if any.
    pub shard: Option<u64>,
    /// Whether a drain has begun (a draining shard is alive but should
    /// get no new work).
    pub draining: bool,
}

/// `{"artifact":{...}}` — answer to a [`FetchArtifactRequest`].
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ArtifactReply {
    /// The artifact body.
    pub artifact: ArtifactBody,
}

/// The body of an [`ArtifactReply`]. `payload` is the artifact's JSON
/// text carried as a JSON string; `crc32` is over the payload bytes so the
/// receiver verifies integrity *before* trusting its own disk write (the
/// store's on-disk CRC then re-protects it at rest).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ArtifactBody {
    /// Artifact class name (`profile` or `baseline`).
    pub class: String,
    /// The stable artifact key.
    pub key: u64,
    /// Whether the serving shard had the artifact.
    pub found: bool,
    /// The artifact's JSON text, when found.
    pub payload: Option<String>,
    /// CRC-32 of the payload bytes (0 when not found).
    pub crc32: u32,
}

/// `{"artifact_index":[...]}` — answer to a [`ListArtifactsRequest`].
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ArtifactIndexReply {
    /// Every (class, key) on the serving shard's disk, in deterministic
    /// order.
    pub artifact_index: Vec<ArtifactRef>,
}

/// `{"error":"..."}` — the request line did not parse as any request.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ErrorReply {
    /// What went wrong.
    pub error: String,
}

/// What one serve session handled, returned by [`serve_on`] after the
/// drain completes.
#[derive(Debug, Clone, Default, Serialize)]
pub struct ServeSummary {
    /// Connections accepted over the session.
    pub connections: u64,
    /// Requests accepted (admitted or synchronously shed).
    pub accepted: u64,
    /// Terminal responses delivered.
    pub responded: u64,
}

/// Serialises `reply` and writes it as one line under the stream lock.
/// Write errors are swallowed: a client that hung up mid-reply is that
/// client's problem, never the server's.
fn write_line<T: Serialize>(stream: &Arc<Mutex<TcpStream>>, reply: &T) {
    let Ok(json) = serde_json::to_string(reply) else {
        return;
    };
    let mut guard = stream
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner);
    let _ = guard.write_all(json.as_bytes());
    let _ = guard.write_all(b"\n");
    let _ = guard.flush();
}

/// What distinguishes one shard's serve loop from a standalone server:
/// its identity and the peer-rebuild counter. [`Default`] is the
/// standalone case (no shard id, nothing fetched), which is what every
/// pre-existing call site wants.
#[derive(Debug, Clone, Default)]
pub struct ShardContext {
    /// The shard id, when running under a router.
    pub shard: Option<u64>,
    /// Artifacts pulled from peers during rebuild; shared with the
    /// connection threads so `stats` can report it live.
    pub fetched_artifacts: Arc<AtomicU64>,
}

/// Snapshot of the service counters for a [`StatsReply`].
fn serve_stats(service: &CampaignService, ctx: &ShardContext) -> ServeStats {
    let store = service.store_stats();
    ServeStats {
        queue_depth: service.queue_depth() as u64,
        in_flight: service.in_flight() as u64,
        accepted: service.accepted(),
        responded: service.responded(),
        draining: service.is_draining(),
        disk_hits: store.disk.map(|d| d.disk_hits).unwrap_or(0),
        shard: ctx.shard,
        fetched_artifacts: ctx.fetched_artifacts.load(Ordering::Relaxed),
        profiles_built: store.profiles_built,
        baselines_built: store.baselines_built,
        disk_saves: store.disk.map(|d| d.saves).unwrap_or(0),
    }
}

/// Answers one [`FetchArtifactRequest`] from the service's persistent
/// store. Absent disk tier, unknown class, and missing key all answer
/// `found:false` — a rebuilding peer treats them identically.
fn fetch_artifact_body(service: &CampaignService, want: &ArtifactRef) -> ArtifactBody {
    let missing = ArtifactBody {
        class: want.class.clone(),
        key: want.key,
        found: false,
        payload: None,
        crc32: 0,
    };
    let Some(class) = ArtifactClass::parse(&want.class) else {
        return missing;
    };
    let Some(disk) = service.store().disk() else {
        return missing;
    };
    match disk.load(class, want.key) {
        Ok(Some(bytes)) => {
            let checksum = crc32(&bytes);
            match String::from_utf8(bytes) {
                Ok(payload) => ArtifactBody {
                    class: want.class.clone(),
                    key: want.key,
                    found: true,
                    payload: Some(payload),
                    crc32: checksum,
                },
                Err(_) => missing,
            }
        }
        // Not found and quarantined-corrupt both answer `found:false`.
        Ok(None) | Err(_) => missing,
    }
}

/// One connection's request loop. Returns when the peer hangs up or the
/// server cuts the stream after draining.
fn handle_client(
    stream: TcpStream,
    service: CampaignService,
    client: u64,
    shutdown: Arc<AtomicBool>,
    ctx: ShardContext,
) {
    let Ok(write_half) = stream.try_clone() else {
        return;
    };
    let writer = Arc::new(Mutex::new(write_half));
    let mut reader = BufReader::new(stream);
    let mut line = String::new();
    loop {
        line.clear();
        match reader.read_line(&mut line) {
            Ok(0) | Err(_) => return,
            Ok(_) => {}
        }
        let text = line.trim();
        if text.is_empty() {
            continue;
        }
        if let Ok(request) = serde_json::from_str::<SubmitRequest>(text) {
            let id = request.submit.id;
            let done_writer = Arc::clone(&writer);
            let outcome = service.submit(
                client,
                &request.submit.app,
                &request.submit.scheme,
                request.submit.deadline_ms,
                move |record| {
                    write_line(
                        &done_writer,
                        &DoneReply {
                            done: DoneBody { id, record },
                        },
                    );
                },
            );
            match outcome {
                SubmitOutcome::Accepted => write_line(
                    &writer,
                    &AcceptedReply {
                        accepted: IdBody { id },
                    },
                ),
                SubmitOutcome::Rejected {
                    reason,
                    retry_after_ms,
                } => write_line(
                    &writer,
                    &RejectedReply {
                        rejected: RejectedBody {
                            id,
                            reason,
                            retry_after_ms,
                        },
                    },
                ),
            }
        } else if serde_json::from_str::<StatsRequest>(text).is_ok() {
            write_line(
                &writer,
                &StatsReply {
                    stats_reply: serve_stats(&service, &ctx),
                },
            );
        } else if serde_json::from_str::<PingRequest>(text).is_ok() {
            write_line(&writer, &PongReply { pong: true });
        } else if serde_json::from_str::<HeartbeatRequest>(text).is_ok() {
            write_line(
                &writer,
                &HeartbeatReply {
                    heartbeat_reply: HeartbeatBody {
                        shard: ctx.shard,
                        draining: service.is_draining(),
                    },
                },
            );
        } else if let Ok(request) = serde_json::from_str::<FetchArtifactRequest>(text) {
            write_line(
                &writer,
                &ArtifactReply {
                    artifact: fetch_artifact_body(&service, &request.fetch_artifact),
                },
            );
        } else if serde_json::from_str::<ListArtifactsRequest>(text).is_ok() {
            let artifact_index = service
                .store()
                .disk()
                .map(|disk| {
                    disk.entries()
                        .into_iter()
                        .map(|(class, key)| ArtifactRef {
                            class: class.name().to_string(),
                            key,
                        })
                        .collect()
                })
                .unwrap_or_default();
            write_line(&writer, &ArtifactIndexReply { artifact_index });
        } else if serde_json::from_str::<ShutdownRequest>(text).is_ok() {
            shutdown.store(true, Ordering::SeqCst);
            write_line(&writer, &DrainingReply { draining: true });
        } else {
            write_line(
                &writer,
                &ErrorReply {
                    error: format!("unparseable request: {text}"),
                },
            );
        }
    }
}

/// Runs the accept loop over an already-bound listener until `shutdown`,
/// [`static@TERM`], or an injected kill ([`CampaignService::is_draining`])
/// asks for a drain; then drains the service (finishing every in-flight
/// cell, checkpointing the journal) and cuts the client connections.
///
/// Split out from [`run_serve`] so tests and the in-process service bench
/// can run a server on an ephemeral port without spawning a process.
pub fn serve_on(
    listener: TcpListener,
    service: &CampaignService,
    shutdown: &Arc<AtomicBool>,
    ctx: &ShardContext,
) -> ServeSummary {
    let _ = listener.set_nonblocking(true);
    let mut handles = Vec::new();
    let mut raw_streams: Vec<TcpStream> = Vec::new();
    let mut connections = 0u64;
    loop {
        if TERM.load(Ordering::SeqCst) || shutdown.load(Ordering::SeqCst) || service.is_draining() {
            break;
        }
        match listener.accept() {
            Ok((stream, _peer)) => {
                connections += 1;
                let client = connections;
                if let Ok(raw) = stream.try_clone() {
                    raw_streams.push(raw);
                }
                let service = service.clone();
                let shutdown = Arc::clone(shutdown);
                let ctx = ctx.clone();
                handles.push(thread::spawn(move || {
                    handle_client(stream, service, client, shutdown, ctx);
                }));
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                thread::sleep(Duration::from_millis(5));
            }
            Err(_) => break,
        }
    }
    // Finish every queued and in-flight cell (their `done` lines are
    // written by the drain), then cut the streams so client read loops
    // observe EOF instead of hanging.
    service.drain();
    for stream in &raw_streams {
        let _ = stream.shutdown(Shutdown::Both);
    }
    for handle in handles {
        let _ = handle.join();
    }
    ServeSummary {
        connections,
        accepted: service.accepted(),
        responded: service.responded(),
    }
}

/// Binds `127.0.0.1:port` (0 = ephemeral), prints
/// `listening on 127.0.0.1:PORT` on stdout (the line a supervising parent
/// reads to discover the port), and serves until shutdown.
///
/// # Errors
///
/// Returns the bind error verbatim; everything after the bind is
/// best-effort and surfaces through the summary instead.
pub fn run_serve(
    port: u16,
    service: &CampaignService,
    ctx: &ShardContext,
) -> std::io::Result<ServeSummary> {
    let listener = TcpListener::bind(("127.0.0.1", port))?;
    let addr = listener.local_addr()?;
    println!("listening on {addr}");
    let _ = std::io::stdout().flush();
    let shutdown = Arc::new(AtomicBool::new(false));
    let summary = serve_on(listener, service, &shutdown, ctx);
    eprintln!(
        "critic serve: drained after {} connection(s), {} accepted, {} responded",
        summary.connections, summary.accepted, summary.responded
    );
    Ok(summary)
}

/// What one peer-rebuild pass did, per peer and in total.
#[derive(Debug, Clone, Default, Serialize)]
pub struct RebuildReport {
    /// Peers successfully consulted (index listed).
    pub peers_consulted: u64,
    /// Artifacts pulled and saved locally.
    pub fetched: u64,
    /// Artifacts offered by a peer but rejected on receipt (CRC mismatch
    /// or malformed reply) — never written to disk.
    pub rejected: u64,
}

/// Pulls every artifact present on `peers` but missing from this shard's
/// own disk, so a restarted shard rejoins disk-warm instead of
/// re-simulating. Run *before* binding the listener: the router marks a
/// shard up only once it prints its banner, by which point rebuild is done.
///
/// Per-peer failures (connect refused, peer died mid-transfer) are
/// skipped, not fatal — rebuild is an optimisation, and the shard serves
/// correctly from an empty disk too. Every received payload is CRC-checked
/// against the wire checksum before [`critic_core::DiskStore::save`]
/// re-frames it with the at-rest CRC; a mismatch drops the artifact.
pub fn rebuild_from_peers(
    store: &ArtifactStore,
    peers: &[String],
    fetched_counter: &AtomicU64,
) -> RebuildReport {
    let mut report = RebuildReport::default();
    let Some(disk) = store.disk() else {
        return report;
    };
    for peer in peers {
        let Ok(stream) = TcpStream::connect(peer.as_str()) else {
            continue;
        };
        let _ = stream.set_read_timeout(Some(Duration::from_secs(30)));
        let Ok(mut writer) = stream.try_clone() else {
            continue;
        };
        let mut reader = BufReader::new(stream);
        let index = match request_reply(
            &mut writer,
            &mut reader,
            &ListArtifactsRequest {
                list_artifacts: true,
            },
            |reply| matches!(reply, Reply::ArtifactIndex(_)),
            |_| {},
        ) {
            Ok(Reply::ArtifactIndex(index)) => index,
            _ => continue,
        };
        report.peers_consulted += 1;
        for wanted in index {
            let Some(class) = ArtifactClass::parse(&wanted.class) else {
                continue;
            };
            if disk.contains(class, wanted.key) {
                continue;
            }
            let body = match request_reply(
                &mut writer,
                &mut reader,
                &FetchArtifactRequest {
                    fetch_artifact: wanted.clone(),
                },
                |reply| matches!(reply, Reply::Artifact(_)),
                |_| {},
            ) {
                Ok(Reply::Artifact(body)) => body,
                // Peer hung up mid-transfer: move on to the next peer.
                _ => break,
            };
            if !body.found {
                continue;
            }
            let Some(payload) = body.payload else {
                report.rejected += 1;
                continue;
            };
            if crc32(payload.as_bytes()) != body.crc32 {
                report.rejected += 1;
                continue;
            }
            if disk.save(class, wanted.key, payload.as_bytes()).is_ok() {
                report.fetched += 1;
                fetched_counter.fetch_add(1, Ordering::Relaxed);
            }
        }
    }
    report
}

/// Reads reply lines off a client-side stream. Thin helper shared by
/// `critic loadgen` and the soak: classifies one line into whichever reply
/// type it is.
#[derive(Debug, Clone)]
pub enum Reply {
    /// `{"accepted":{...}}`.
    Accepted(IdBody),
    /// `{"rejected":{...}}`.
    Rejected(RejectedBody),
    /// `{"done":{...}}`.
    Done(Box<DoneBody>),
    /// `{"stats_reply":{...}}`.
    Stats(ServeStats),
    /// `{"pong":true}`.
    Pong,
    /// `{"draining":true}`.
    Draining,
    /// `{"heartbeat_reply":{...}}`.
    Heartbeat(HeartbeatBody),
    /// `{"artifact":{...}}`.
    Artifact(Box<ArtifactBody>),
    /// `{"artifact_index":[...]}`.
    ArtifactIndex(Vec<ArtifactRef>),
    /// `{"error":"..."}`.
    Error(String),
}

/// Classifies one reply line; `None` when it parses as nothing known.
pub fn parse_reply(line: &str) -> Option<Reply> {
    let text = line.trim();
    if text.is_empty() {
        return None;
    }
    if let Ok(reply) = serde_json::from_str::<DoneReply>(text) {
        return Some(Reply::Done(Box::new(reply.done)));
    }
    if let Ok(reply) = serde_json::from_str::<AcceptedReply>(text) {
        return Some(Reply::Accepted(reply.accepted));
    }
    if let Ok(reply) = serde_json::from_str::<RejectedReply>(text) {
        return Some(Reply::Rejected(reply.rejected));
    }
    if let Ok(reply) = serde_json::from_str::<StatsReply>(text) {
        return Some(Reply::Stats(reply.stats_reply));
    }
    if serde_json::from_str::<PongReply>(text).is_ok() {
        return Some(Reply::Pong);
    }
    if serde_json::from_str::<DrainingReply>(text).is_ok() {
        return Some(Reply::Draining);
    }
    if let Ok(reply) = serde_json::from_str::<HeartbeatReply>(text) {
        return Some(Reply::Heartbeat(reply.heartbeat_reply));
    }
    if let Ok(reply) = serde_json::from_str::<ArtifactReply>(text) {
        return Some(Reply::Artifact(Box::new(reply.artifact)));
    }
    if let Ok(reply) = serde_json::from_str::<ArtifactIndexReply>(text) {
        return Some(Reply::ArtifactIndex(reply.artifact_index));
    }
    if let Ok(reply) = serde_json::from_str::<ErrorReply>(text) {
        return Some(Reply::Error(reply.error));
    }
    None
}

/// Blocking helper for request/reply exchanges on a client stream: writes
/// one request line and reads lines until `want` picks a reply (skipping
/// interleaved `done` lines, which the caller sees via `on_other`).
///
/// # Errors
///
/// Propagates stream I/O errors; EOF before a matching reply is
/// `UnexpectedEof`.
pub fn request_reply<R: Read, T: Serialize>(
    writer: &mut TcpStream,
    reader: &mut BufReader<R>,
    request: &T,
    mut want: impl FnMut(&Reply) -> bool,
    mut on_other: impl FnMut(Reply),
) -> std::io::Result<Reply> {
    let json = serde_json::to_string(request)
        .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e.to_string()))?;
    writer.write_all(json.as_bytes())?;
    writer.write_all(b"\n")?;
    writer.flush()?;
    let mut line = String::new();
    loop {
        line.clear();
        if reader.read_line(&mut line)? == 0 {
            return Err(std::io::Error::new(
                std::io::ErrorKind::UnexpectedEof,
                "server hung up before replying",
            ));
        }
        if let Some(reply) = parse_reply(&line) {
            if want(&reply) {
                return Ok(reply);
            }
            on_other(reply);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wire_types_round_trip_and_classify_disjointly() {
        let submit = SubmitRequest {
            submit: SubmitBody {
                id: 7,
                app: "Acrobat".into(),
                scheme: "critic".into(),
                deadline_ms: Some(2_000),
            },
        };
        let line = serde_json::to_string(&submit).expect("serialise");
        let back: SubmitRequest = serde_json::from_str(&line).expect("deserialise");
        assert_eq!(back.submit.id, 7);
        assert_eq!(back.submit.deadline_ms, Some(2_000));
        // Disjoint top-level keys: a submit line is not any other request.
        assert!(serde_json::from_str::<StatsRequest>(&line).is_err());
        assert!(serde_json::from_str::<PingRequest>(&line).is_err());
        assert!(serde_json::from_str::<ShutdownRequest>(&line).is_err());

        let rejected = RejectedReply {
            rejected: RejectedBody {
                id: 9,
                reason: "rate limited".into(),
                retry_after_ms: 31,
            },
        };
        let line = serde_json::to_string(&rejected).expect("serialise");
        match parse_reply(&line) {
            Some(Reply::Rejected(body)) => {
                assert_eq!(body.id, 9);
                assert_eq!(body.retry_after_ms, 31);
            }
            other => panic!("misclassified: {other:?}"),
        }
        assert!(matches!(parse_reply("{\"pong\":true}"), Some(Reply::Pong)));
        assert!(parse_reply("not json at all").is_none());
    }

    #[test]
    fn deadline_is_optional_on_the_wire() {
        let line = "{\"submit\":{\"id\":1,\"app\":\"Maps\",\"scheme\":\"opp16\"}}";
        let back: SubmitRequest = serde_json::from_str(line).expect("deserialise");
        assert_eq!(back.submit.deadline_ms, None);
    }
}
