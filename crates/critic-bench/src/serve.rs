//! The line-delimited-JSON TCP front end behind `critic serve`: a thin,
//! dependency-free wire layer over [`CampaignService`].
//!
//! One request or reply per line. Requests (disjoint top-level keys,
//! which is how the parser classifies them):
//!
//! ```text
//! {"submit":{"id":7,"app":"Acrobat","scheme":"critic","deadline_ms":2000}}
//! {"stats":true}
//! {"ping":true}
//! {"shutdown":true}
//! ```
//!
//! Replies:
//!
//! ```text
//! {"accepted":{"id":7}}
//! {"rejected":{"id":7,"reason":"rate limited","retry_after_ms":31}}
//! {"done":{"id":7,"record":{...CellRecord...}}}
//! {"stats_reply":{...}}
//! {"pong":true}
//! {"draining":true}
//! {"error":"..."}
//! ```
//!
//! Ordering: `accepted` is written after the submission is admitted, but
//! the terminal `done` is written by a worker thread and may overtake it
//! on a fast cell. Clients must correlate by `id`, not by line order.
//!
//! The `done` line is written only *after* the record's journal append has
//! been fsynced ([`CampaignService`]'s ack-follows-fsync invariant), so
//! every `done` a client observed survives a `SIGKILL` of the server.

use std::io::{BufRead, BufReader, Read, Write};
use std::net::{Shutdown, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::thread;
use std::time::Duration;

use critic_core::campaign::CellRecord;
use critic_core::service::{CampaignService, SubmitOutcome};
use serde::{Deserialize, Serialize};

/// Set by the binary's `SIGTERM` handler; the accept loop polls it and
/// begins a graceful drain when it goes true.
pub static TERM: AtomicBool = AtomicBool::new(false);

/// `{"submit":{...}}` — submit one campaign cell.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SubmitRequest {
    /// The submission body.
    pub submit: SubmitBody,
}

/// The body of a [`SubmitRequest`].
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SubmitBody {
    /// Client-chosen correlation id, echoed on every reply to this
    /// submission.
    pub id: u64,
    /// App name (case-insensitive).
    pub app: String,
    /// Scheme name (`critic`, `opp16`, `hoist`, ...).
    pub scheme: String,
    /// Optional per-request deadline; the server clamps it against its own.
    pub deadline_ms: Option<u64>,
}

/// `{"stats":true}` — ask for the server-side counters.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct StatsRequest {
    /// Always `true`; the key is the request.
    pub stats: bool,
}

/// `{"ping":true}` — liveness probe.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct PingRequest {
    /// Always `true`; the key is the request.
    pub ping: bool,
}

/// `{"shutdown":true}` — begin a graceful drain (same path as `SIGTERM`).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ShutdownRequest {
    /// Always `true`; the key is the request.
    pub shutdown: bool,
}

/// `{"accepted":{"id":N}}` — the submission passed admission control.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct AcceptedReply {
    /// The echoed correlation id.
    pub accepted: IdBody,
}

/// An id-only reply body.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct IdBody {
    /// The echoed correlation id.
    pub id: u64,
}

/// `{"rejected":{...}}` — admission control refused the submission;
/// nothing was queued and no `done` will follow.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct RejectedReply {
    /// The rejection body.
    pub rejected: RejectedBody,
}

/// The body of a [`RejectedReply`].
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct RejectedBody {
    /// The echoed correlation id.
    pub id: u64,
    /// Why admission control refused (`rate limited`, `queue full`, ...).
    pub reason: String,
    /// Earliest sensible retry, milliseconds (0 = don't retry as-is).
    pub retry_after_ms: u64,
}

/// `{"done":{...}}` — the terminal result of an accepted submission,
/// written after its journal fsync.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct DoneReply {
    /// The completion body.
    pub done: DoneBody,
}

/// The body of a [`DoneReply`].
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct DoneBody {
    /// The echoed correlation id.
    pub id: u64,
    /// The terminal cell record (may be a `Shed` record from an open
    /// breaker).
    pub record: CellRecord,
}

/// `{"stats_reply":{...}}` — answer to a [`StatsRequest`].
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct StatsReply {
    /// The counters body.
    pub stats_reply: ServeStats,
}

/// Server-side counters, serialised on demand.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct ServeStats {
    /// Cells queued but not yet claimed by a worker.
    pub queue_depth: u64,
    /// Cells currently executing.
    pub in_flight: u64,
    /// Requests accepted (admitted or synchronously shed) so far.
    pub accepted: u64,
    /// Terminal responses delivered so far.
    pub responded: u64,
    /// Whether a drain has begun.
    pub draining: bool,
    /// Persistent-store disk hits so far (0 without a `--store-dir`).
    pub disk_hits: u64,
}

/// `{"pong":true}` — answer to a [`PingRequest`].
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct PongReply {
    /// Always `true`.
    pub pong: bool,
}

/// `{"draining":true}` — answer to a [`ShutdownRequest`].
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct DrainingReply {
    /// Always `true`.
    pub draining: bool,
}

/// `{"error":"..."}` — the request line did not parse as any request.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ErrorReply {
    /// What went wrong.
    pub error: String,
}

/// What one serve session handled, returned by [`serve_on`] after the
/// drain completes.
#[derive(Debug, Clone, Default, Serialize)]
pub struct ServeSummary {
    /// Connections accepted over the session.
    pub connections: u64,
    /// Requests accepted (admitted or synchronously shed).
    pub accepted: u64,
    /// Terminal responses delivered.
    pub responded: u64,
}

/// Serialises `reply` and writes it as one line under the stream lock.
/// Write errors are swallowed: a client that hung up mid-reply is that
/// client's problem, never the server's.
fn write_line<T: Serialize>(stream: &Arc<Mutex<TcpStream>>, reply: &T) {
    let Ok(json) = serde_json::to_string(reply) else {
        return;
    };
    let mut guard = stream
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner);
    let _ = guard.write_all(json.as_bytes());
    let _ = guard.write_all(b"\n");
    let _ = guard.flush();
}

/// Snapshot of the service counters for a [`StatsReply`].
fn serve_stats(service: &CampaignService) -> ServeStats {
    ServeStats {
        queue_depth: service.queue_depth() as u64,
        in_flight: service.in_flight() as u64,
        accepted: service.accepted(),
        responded: service.responded(),
        draining: service.is_draining(),
        disk_hits: service.store_stats().disk.map(|d| d.disk_hits).unwrap_or(0),
    }
}

/// One connection's request loop. Returns when the peer hangs up or the
/// server cuts the stream after draining.
fn handle_client(
    stream: TcpStream,
    service: CampaignService,
    client: u64,
    shutdown: Arc<AtomicBool>,
) {
    let Ok(write_half) = stream.try_clone() else {
        return;
    };
    let writer = Arc::new(Mutex::new(write_half));
    let mut reader = BufReader::new(stream);
    let mut line = String::new();
    loop {
        line.clear();
        match reader.read_line(&mut line) {
            Ok(0) | Err(_) => return,
            Ok(_) => {}
        }
        let text = line.trim();
        if text.is_empty() {
            continue;
        }
        if let Ok(request) = serde_json::from_str::<SubmitRequest>(text) {
            let id = request.submit.id;
            let done_writer = Arc::clone(&writer);
            let outcome = service.submit(
                client,
                &request.submit.app,
                &request.submit.scheme,
                request.submit.deadline_ms,
                move |record| {
                    write_line(
                        &done_writer,
                        &DoneReply {
                            done: DoneBody { id, record },
                        },
                    );
                },
            );
            match outcome {
                SubmitOutcome::Accepted => write_line(
                    &writer,
                    &AcceptedReply {
                        accepted: IdBody { id },
                    },
                ),
                SubmitOutcome::Rejected {
                    reason,
                    retry_after_ms,
                } => write_line(
                    &writer,
                    &RejectedReply {
                        rejected: RejectedBody {
                            id,
                            reason,
                            retry_after_ms,
                        },
                    },
                ),
            }
        } else if serde_json::from_str::<StatsRequest>(text).is_ok() {
            write_line(
                &writer,
                &StatsReply {
                    stats_reply: serve_stats(&service),
                },
            );
        } else if serde_json::from_str::<PingRequest>(text).is_ok() {
            write_line(&writer, &PongReply { pong: true });
        } else if serde_json::from_str::<ShutdownRequest>(text).is_ok() {
            shutdown.store(true, Ordering::SeqCst);
            write_line(&writer, &DrainingReply { draining: true });
        } else {
            write_line(
                &writer,
                &ErrorReply {
                    error: format!("unparseable request: {text}"),
                },
            );
        }
    }
}

/// Runs the accept loop over an already-bound listener until `shutdown`,
/// [`static@TERM`], or an injected kill ([`CampaignService::is_draining`])
/// asks for a drain; then drains the service (finishing every in-flight
/// cell, checkpointing the journal) and cuts the client connections.
///
/// Split out from [`run_serve`] so tests and the in-process service bench
/// can run a server on an ephemeral port without spawning a process.
pub fn serve_on(
    listener: TcpListener,
    service: &CampaignService,
    shutdown: &Arc<AtomicBool>,
) -> ServeSummary {
    let _ = listener.set_nonblocking(true);
    let mut handles = Vec::new();
    let mut raw_streams: Vec<TcpStream> = Vec::new();
    let mut connections = 0u64;
    loop {
        if TERM.load(Ordering::SeqCst) || shutdown.load(Ordering::SeqCst) || service.is_draining() {
            break;
        }
        match listener.accept() {
            Ok((stream, _peer)) => {
                connections += 1;
                let client = connections;
                if let Ok(raw) = stream.try_clone() {
                    raw_streams.push(raw);
                }
                let service = service.clone();
                let shutdown = Arc::clone(shutdown);
                handles.push(thread::spawn(move || {
                    handle_client(stream, service, client, shutdown);
                }));
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                thread::sleep(Duration::from_millis(5));
            }
            Err(_) => break,
        }
    }
    // Finish every queued and in-flight cell (their `done` lines are
    // written by the drain), then cut the streams so client read loops
    // observe EOF instead of hanging.
    service.drain();
    for stream in &raw_streams {
        let _ = stream.shutdown(Shutdown::Both);
    }
    for handle in handles {
        let _ = handle.join();
    }
    ServeSummary {
        connections,
        accepted: service.accepted(),
        responded: service.responded(),
    }
}

/// Binds `127.0.0.1:port` (0 = ephemeral), prints
/// `listening on 127.0.0.1:PORT` on stdout (the line a supervising parent
/// reads to discover the port), and serves until shutdown.
///
/// # Errors
///
/// Returns the bind error verbatim; everything after the bind is
/// best-effort and surfaces through the summary instead.
pub fn run_serve(port: u16, service: &CampaignService) -> std::io::Result<ServeSummary> {
    let listener = TcpListener::bind(("127.0.0.1", port))?;
    let addr = listener.local_addr()?;
    println!("listening on {addr}");
    let _ = std::io::stdout().flush();
    let shutdown = Arc::new(AtomicBool::new(false));
    let summary = serve_on(listener, service, &shutdown);
    eprintln!(
        "critic serve: drained after {} connection(s), {} accepted, {} responded",
        summary.connections, summary.accepted, summary.responded
    );
    Ok(summary)
}

/// Reads reply lines off a client-side stream. Thin helper shared by
/// `critic loadgen` and the soak: classifies one line into whichever reply
/// type it is.
#[derive(Debug, Clone)]
pub enum Reply {
    /// `{"accepted":{...}}`.
    Accepted(IdBody),
    /// `{"rejected":{...}}`.
    Rejected(RejectedBody),
    /// `{"done":{...}}`.
    Done(Box<DoneBody>),
    /// `{"stats_reply":{...}}`.
    Stats(ServeStats),
    /// `{"pong":true}`.
    Pong,
    /// `{"draining":true}`.
    Draining,
    /// `{"error":"..."}`.
    Error(String),
}

/// Classifies one reply line; `None` when it parses as nothing known.
pub fn parse_reply(line: &str) -> Option<Reply> {
    let text = line.trim();
    if text.is_empty() {
        return None;
    }
    if let Ok(reply) = serde_json::from_str::<DoneReply>(text) {
        return Some(Reply::Done(Box::new(reply.done)));
    }
    if let Ok(reply) = serde_json::from_str::<AcceptedReply>(text) {
        return Some(Reply::Accepted(reply.accepted));
    }
    if let Ok(reply) = serde_json::from_str::<RejectedReply>(text) {
        return Some(Reply::Rejected(reply.rejected));
    }
    if let Ok(reply) = serde_json::from_str::<StatsReply>(text) {
        return Some(Reply::Stats(reply.stats_reply));
    }
    if serde_json::from_str::<PongReply>(text).is_ok() {
        return Some(Reply::Pong);
    }
    if serde_json::from_str::<DrainingReply>(text).is_ok() {
        return Some(Reply::Draining);
    }
    if let Ok(reply) = serde_json::from_str::<ErrorReply>(text) {
        return Some(Reply::Error(reply.error));
    }
    None
}

/// Blocking helper for request/reply exchanges on a client stream: writes
/// one request line and reads lines until `want` picks a reply (skipping
/// interleaved `done` lines, which the caller sees via `on_other`).
///
/// # Errors
///
/// Propagates stream I/O errors; EOF before a matching reply is
/// `UnexpectedEof`.
pub fn request_reply<R: Read, T: Serialize>(
    writer: &mut TcpStream,
    reader: &mut BufReader<R>,
    request: &T,
    mut want: impl FnMut(&Reply) -> bool,
    mut on_other: impl FnMut(Reply),
) -> std::io::Result<Reply> {
    let json = serde_json::to_string(request)
        .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e.to_string()))?;
    writer.write_all(json.as_bytes())?;
    writer.write_all(b"\n")?;
    writer.flush()?;
    let mut line = String::new();
    loop {
        line.clear();
        if reader.read_line(&mut line)? == 0 {
            return Err(std::io::Error::new(
                std::io::ErrorKind::UnexpectedEof,
                "server hung up before replying",
            ));
        }
        if let Some(reply) = parse_reply(&line) {
            if want(&reply) {
                return Ok(reply);
            }
            on_other(reply);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wire_types_round_trip_and_classify_disjointly() {
        let submit = SubmitRequest {
            submit: SubmitBody {
                id: 7,
                app: "Acrobat".into(),
                scheme: "critic".into(),
                deadline_ms: Some(2_000),
            },
        };
        let line = serde_json::to_string(&submit).expect("serialise");
        let back: SubmitRequest = serde_json::from_str(&line).expect("deserialise");
        assert_eq!(back.submit.id, 7);
        assert_eq!(back.submit.deadline_ms, Some(2_000));
        // Disjoint top-level keys: a submit line is not any other request.
        assert!(serde_json::from_str::<StatsRequest>(&line).is_err());
        assert!(serde_json::from_str::<PingRequest>(&line).is_err());
        assert!(serde_json::from_str::<ShutdownRequest>(&line).is_err());

        let rejected = RejectedReply {
            rejected: RejectedBody {
                id: 9,
                reason: "rate limited".into(),
                retry_after_ms: 31,
            },
        };
        let line = serde_json::to_string(&rejected).expect("serialise");
        match parse_reply(&line) {
            Some(Reply::Rejected(body)) => {
                assert_eq!(body.id, 9);
                assert_eq!(body.retry_after_ms, 31);
            }
            other => panic!("misclassified: {other:?}"),
        }
        assert!(matches!(parse_reply("{\"pong\":true}"), Some(Reply::Pong)));
        assert!(parse_reply("not json at all").is_none());
    }

    #[test]
    fn deadline_is_optional_on_the_wire() {
        let line = "{\"submit\":{\"id\":1,\"app\":\"Maps\",\"scheme\":\"opp16\"}}";
        let back: SubmitRequest = serde_json::from_str(line).expect("deserialise");
        assert_eq!(back.submit.deadline_ms, None);
    }
}
