//! The sharded front tier behind `critic router`: one process that owns
//! the client-facing listener, places every submission on a shard via the
//! consistent-hash ring ([`critic_core::ring`]), and supervises N
//! `critic serve` shard children.
//!
//! Responsibilities, in the order a request meets them:
//!
//! 1. **Placement.** Each `submit` hashes to
//!    [`placement_key`]`(app, scheme)` and goes to the first *live* shard
//!    in [`HashRing::successors`] order. A dead owner's keyspace spills
//!    onto its ring successors — no designated backup, no reshuffle.
//! 2. **Supervision.** A supervisor thread heartbeats every shard over
//!    the multiplexed shard connection, reaps exited children, and
//!    restarts dead shards with exponential backoff. A restarted shard is
//!    handed `--peers` (the live shards' addresses) so it rebuilds its
//!    disk from them *before* binding — the router marks it up only once
//!    its banner prints, by which point it is disk-warm.
//! 3. **Rerouting.** Submissions in flight on a shard when it dies are
//!    redispatched to the next live successor; when no shard is live the
//!    client gets an honest `rejected` whose `retry_after_ms` is the time
//!    until the earliest scheduled restart attempt, not a made-up number.
//! 4. **Identity.** Clients keep their own correlation ids; the router
//!    rewrites them to globally-unique ids shard-side and maps replies
//!    back, so two clients using id 1 never collide on one shard.
//!
//! The router speaks the same line-JSON protocol as `critic serve`
//! ([`crate::serve`]), so `critic loadgen` points at a router unchanged.
//! Two extra verbs exist for operators and the sharded soak:
//! `{"router_stats":true}` answers with per-shard status plus routing
//! counters, and `{"shutdown":true}` drains the whole fleet (each shard
//! checkpoints and exits 9, then the router exits 9).

use std::collections::HashMap;
use std::io::{BufRead, BufReader, Write};
use std::net::{Shutdown, TcpListener, TcpStream};
use std::path::PathBuf;
use std::process::{Child, Command, Stdio};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::thread;
use std::time::{Duration, Instant};

use critic_core::ring::{placement_key, HashRing, DEFAULT_VNODES};
use serde::{Deserialize, Serialize};

use crate::serve::{
    parse_reply, AcceptedReply, DoneBody, DoneReply, IdBody, PingRequest, PongReply, RejectedBody,
    RejectedReply, Reply, ShutdownRequest, StatsRequest, SubmitBody, SubmitRequest,
};

/// `{"router_stats":true}` — ask the router for shard status and routing
/// counters. Distinct from `{"stats":true}` (which a router also answers,
/// with the same reply) so scripts can be explicit about which tier they
/// expect to be talking to.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct RouterStatsRequest {
    /// Always `true`; the key is the request.
    pub router_stats: bool,
}

/// `{"router_stats_reply":{...}}` — answer to a [`RouterStatsRequest`].
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct RouterStatsReply {
    /// The stats body.
    pub router_stats_reply: RouterStats,
}

/// Router-side counters and per-shard status.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct RouterStats {
    /// One row per shard.
    pub shards: Vec<ShardRow>,
    /// Submissions forwarded to a shard (including redispatches).
    pub forwarded: u64,
    /// Submissions placed on a non-owner because the owner was down.
    pub rerouted: u64,
    /// In-flight submissions moved to a successor after a shard died.
    pub redispatched: u64,
    /// Submissions rejected because no shard was live.
    pub rejected_no_shard: u64,
    /// Shard restarts performed.
    pub restarts: u64,
}

/// One shard's status as the router sees it.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ShardRow {
    /// The shard id (its position on the ring).
    pub shard: u32,
    /// Where it is listening, when up.
    pub addr: Option<String>,
    /// Its OS pid, when up (what a chaos harness kills).
    pub pid: Option<u32>,
    /// Whether the router considers it live.
    pub up: bool,
    /// How many times this shard has been (re)started; the shard's
    /// journal run-tag is `shard * 1000 + generation`.
    pub generation: u64,
}

/// Everything `critic router` needs to run a fleet.
#[derive(Debug, Clone)]
pub struct RouterConfig {
    /// Client-facing port (0 = ephemeral; the banner names the real one).
    pub port: u16,
    /// Number of shard children.
    pub shards: u32,
    /// Virtual nodes per shard on the placement ring.
    pub vnodes: u32,
    /// The `critic` binary to spawn shards from.
    pub binary: PathBuf,
    /// Directory for per-shard journals (`shard-<i>.jsonl`).
    pub journal_dir: PathBuf,
    /// Directory for per-shard persistent stores (`shard-<i>/`).
    pub store_dir: PathBuf,
    /// Extra `critic serve` arguments passed to every shard verbatim
    /// (trace length, admission knobs, ...). The router appends its own
    /// `--port 0 --shard N --run-tag T --journal ... --store-dir ...
    /// --peers ...` after these.
    pub shard_args: Vec<String>,
    /// Heartbeat interval, milliseconds.
    pub heartbeat_ms: u64,
    /// First restart backoff, milliseconds; doubles per consecutive
    /// failure up to `backoff_cap_ms`, resets on a successful start.
    pub backoff_base_ms: u64,
    /// Restart backoff ceiling, milliseconds.
    pub backoff_cap_ms: u64,
}

impl RouterConfig {
    /// A 3-shard fleet with the default ring and supervision cadence.
    pub fn new(binary: PathBuf, journal_dir: PathBuf, store_dir: PathBuf) -> RouterConfig {
        RouterConfig {
            port: 0,
            shards: 3,
            vnodes: DEFAULT_VNODES,
            binary,
            journal_dir,
            store_dir,
            shard_args: Vec::new(),
            heartbeat_ms: 100,
            backoff_base_ms: 200,
            backoff_cap_ms: 3_200,
        }
    }
}

/// What one router session handled, returned by [`run_router`] after the
/// fleet drains.
#[derive(Debug, Clone, Default, Serialize)]
pub struct RouterSummary {
    /// Client connections accepted.
    pub connections: u64,
    /// Final routing counters.
    pub stats: RouterStats,
}

/// One submission the router has forwarded and not yet answered.
struct RouteEntry {
    /// The client connection to answer on.
    client: Arc<Mutex<TcpStream>>,
    /// The client's own correlation id.
    orig_id: u64,
    /// The submission body (kept for redispatch after a shard death).
    body: SubmitBody,
    /// Which shard currently holds it.
    shard: u32,
}

/// Mutable per-shard supervision state.
struct ShardState {
    up: bool,
    addr: Option<String>,
    pid: Option<u32>,
    generation: u64,
    /// The router's multiplexed connection to the shard, when up.
    conn: Option<Arc<Mutex<TcpStream>>>,
    child: Option<Child>,
    /// Earliest next restart attempt, when down.
    next_attempt: Instant,
    backoff_ms: u64,
    /// Last reply (any reply) seen on the shard connection.
    last_seen: Instant,
}

/// The shared router state: ring, shard slots, in-flight routes, counters.
struct Fabric {
    config: RouterConfig,
    ring: HashRing,
    slots: Vec<Mutex<ShardState>>,
    routes: Mutex<HashMap<u64, RouteEntry>>,
    next_gid: AtomicU64,
    draining: AtomicBool,
    forwarded: AtomicU64,
    rerouted: AtomicU64,
    redispatched: AtomicU64,
    rejected_no_shard: AtomicU64,
    restarts: AtomicU64,
}

/// Serialises `reply` as one line under the stream lock, swallowing write
/// errors (a hung-up peer is the peer's problem).
fn write_line<T: Serialize>(stream: &Arc<Mutex<TcpStream>>, reply: &T) -> bool {
    let Ok(json) = serde_json::to_string(reply) else {
        return false;
    };
    let mut guard = stream
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner);
    guard.write_all(json.as_bytes()).is_ok()
        && guard.write_all(b"\n").is_ok()
        && guard.flush().is_ok()
}

impl Fabric {
    fn new(config: RouterConfig) -> Arc<Fabric> {
        let ring = HashRing::new(0..config.shards, config.vnodes);
        let now = Instant::now();
        let slots = (0..config.shards)
            .map(|_| {
                Mutex::new(ShardState {
                    up: false,
                    addr: None,
                    pid: None,
                    generation: 0,
                    conn: None,
                    child: None,
                    next_attempt: now,
                    backoff_ms: config.backoff_base_ms,
                    last_seen: now,
                })
            })
            .collect();
        Arc::new(Fabric {
            config,
            ring,
            slots,
            routes: Mutex::new(HashMap::new()),
            next_gid: AtomicU64::new(1),
            draining: AtomicBool::new(false),
            forwarded: AtomicU64::new(0),
            rerouted: AtomicU64::new(0),
            redispatched: AtomicU64::new(0),
            rejected_no_shard: AtomicU64::new(0),
            restarts: AtomicU64::new(0),
        })
    }

    fn slot(&self, shard: u32) -> std::sync::MutexGuard<'_, ShardState> {
        self.slots[shard as usize]
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }

    fn routes(&self) -> std::sync::MutexGuard<'_, HashMap<u64, RouteEntry>> {
        self.routes
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }

    /// The live connection to `shard`, or `None` while it is down.
    fn conn(&self, shard: u32) -> Option<Arc<Mutex<TcpStream>>> {
        let state = self.slot(shard);
        if state.up {
            state.conn.clone()
        } else {
            None
        }
    }

    /// Addresses of every live shard except `not` (the peer list handed
    /// to a restarting shard).
    fn live_addrs_except(&self, not: u32) -> Vec<String> {
        (0..self.config.shards)
            .filter(|s| *s != not)
            .filter_map(|s| {
                let state = self.slot(s);
                if state.up {
                    state.addr.clone()
                } else {
                    None
                }
            })
            .collect()
    }

    /// Milliseconds until the earliest scheduled restart attempt — the
    /// honest `retry_after_ms` when no shard can take a submission.
    fn retry_hint_ms(&self) -> u64 {
        let now = Instant::now();
        let mut hint = self.config.heartbeat_ms.max(25);
        for shard in 0..self.config.shards {
            let state = self.slot(shard);
            if !state.up {
                let wait = state
                    .next_attempt
                    .saturating_duration_since(now)
                    .as_millis() as u64;
                hint = hint.max(25).min(wait.max(25));
            }
        }
        hint
    }

    fn stats(&self) -> RouterStats {
        let shards = (0..self.config.shards)
            .map(|shard| {
                let state = self.slot(shard);
                ShardRow {
                    shard,
                    addr: state.addr.clone(),
                    pid: state.pid,
                    up: state.up,
                    generation: state.generation,
                }
            })
            .collect();
        RouterStats {
            shards,
            forwarded: self.forwarded.load(Ordering::Relaxed),
            rerouted: self.rerouted.load(Ordering::Relaxed),
            redispatched: self.redispatched.load(Ordering::Relaxed),
            rejected_no_shard: self.rejected_no_shard.load(Ordering::Relaxed),
            restarts: self.restarts.load(Ordering::Relaxed),
        }
    }
}

/// Spawns shard `shard` (generation `state.generation + 1`), waits for its
/// banner, connects, and starts its reply-reader thread. Called with the
/// slot *unlocked*; locks it only to commit the new state.
fn spawn_shard(fabric: &Arc<Fabric>, shard: u32) -> std::io::Result<()> {
    let generation = {
        let state = fabric.slot(shard);
        state.generation + 1
    };
    let run_tag = u64::from(shard) * 1_000 + generation;
    let journal = fabric
        .config
        .journal_dir
        .join(format!("shard-{shard}.jsonl"));
    let store = fabric.config.store_dir.join(format!("shard-{shard}"));
    let peers = fabric.live_addrs_except(shard);

    let mut command = Command::new(&fabric.config.binary);
    command.arg("serve");
    command.args(&fabric.config.shard_args);
    command.args(["--port", "0"]);
    command.args(["--shard", &shard.to_string()]);
    command.args(["--run-tag", &run_tag.to_string()]);
    command.args(["--journal", &journal.to_string_lossy()]);
    command.args(["--store-dir", &store.to_string_lossy()]);
    if !peers.is_empty() {
        command.args(["--peers", &peers.join(",")]);
    }
    command.stdin(Stdio::null());
    command.stdout(Stdio::piped());
    command.stderr(Stdio::inherit());
    let mut child = command.spawn()?;
    let pid = child.id();

    // The shard prints its banner only after peer rebuild and bind, so a
    // banner means "up and disk-warm". A child that dies first gives EOF.
    let stdout = child
        .stdout
        .take()
        .ok_or_else(|| std::io::Error::other("shard stdout not piped"))?;
    let mut reader = BufReader::new(stdout);
    let mut line = String::new();
    let addr = loop {
        line.clear();
        if reader.read_line(&mut line)? == 0 {
            let _ = child.kill();
            let _ = child.wait();
            return Err(std::io::Error::new(
                std::io::ErrorKind::UnexpectedEof,
                format!("shard {shard} exited before its banner"),
            ));
        }
        if let Some(rest) = line.trim().strip_prefix("listening on ") {
            break rest.to_string();
        }
    };
    // Keep draining stdout so the child never blocks on a full pipe.
    thread::spawn(move || {
        let mut sink = String::new();
        loop {
            sink.clear();
            match reader.read_line(&mut sink) {
                Ok(0) | Err(_) => return,
                Ok(_) => {}
            }
        }
    });

    let stream = TcpStream::connect(&addr)?;
    let read_half = stream.try_clone()?;
    let conn = Arc::new(Mutex::new(stream));
    {
        let mut state = fabric.slot(shard);
        state.up = true;
        state.addr = Some(addr);
        state.pid = Some(pid);
        state.generation = generation;
        state.conn = Some(Arc::clone(&conn));
        state.child = Some(child);
        state.backoff_ms = fabric.config.backoff_base_ms;
        state.last_seen = Instant::now();
    }
    if generation > 1 {
        fabric.restarts.fetch_add(1, Ordering::Relaxed);
    }

    let fabric = Arc::clone(fabric);
    thread::spawn(move || shard_reader(&fabric, shard, generation, read_half));
    Ok(())
}

/// The reply-reader for one shard connection: maps `accepted` /
/// `rejected` / `done` back to the owning client, records heartbeat
/// answers, and declares the shard dead on EOF.
fn shard_reader(fabric: &Arc<Fabric>, shard: u32, generation: u64, stream: TcpStream) {
    let mut reader = BufReader::new(stream);
    let mut line = String::new();
    loop {
        line.clear();
        match reader.read_line(&mut line) {
            Ok(0) | Err(_) => break,
            Ok(_) => {}
        }
        let Some(reply) = parse_reply(&line) else {
            continue;
        };
        {
            let mut state = fabric.slot(shard);
            if state.generation != generation {
                return; // a newer incarnation owns this slot
            }
            state.last_seen = Instant::now();
        }
        // Every branch copies what it needs out of the routes map before
        // writing to the client: a slow client must never block the map.
        match reply {
            Reply::Accepted(IdBody { id }) => {
                let target = {
                    let routes = fabric.routes();
                    routes
                        .get(&id)
                        .map(|entry| (Arc::clone(&entry.client), entry.orig_id))
                };
                if let Some((client, orig_id)) = target {
                    write_line(
                        &client,
                        &AcceptedReply {
                            accepted: IdBody { id: orig_id },
                        },
                    );
                }
            }
            Reply::Rejected(body) => {
                let entry = fabric.routes().remove(&body.id);
                if let Some(entry) = entry {
                    write_line(
                        &entry.client,
                        &RejectedReply {
                            rejected: RejectedBody {
                                id: entry.orig_id,
                                reason: body.reason,
                                retry_after_ms: body.retry_after_ms,
                            },
                        },
                    );
                }
            }
            Reply::Done(done) => {
                let entry = fabric.routes().remove(&done.id);
                if let Some(entry) = entry {
                    write_line(
                        &entry.client,
                        &DoneReply {
                            done: DoneBody {
                                id: entry.orig_id,
                                record: done.record,
                            },
                        },
                    );
                }
            }
            // Heartbeat / stats / pong answers only refresh `last_seen`.
            _ => {}
        }
    }
    mark_down(fabric, shard, generation);
}

/// Declares shard `shard` (incarnation `generation`) dead: schedules the
/// backoff restart, reaps the child, and redispatches its in-flight
/// submissions to ring successors. Idempotent per incarnation.
fn mark_down(fabric: &Arc<Fabric>, shard: u32, generation: u64) {
    {
        let mut state = fabric.slot(shard);
        if state.generation != generation || !state.up {
            return;
        }
        state.up = false;
        state.addr = None;
        state.pid = None;
        state.conn = None;
        state.next_attempt = Instant::now() + Duration::from_millis(state.backoff_ms);
        state.backoff_ms = (state.backoff_ms * 2).min(fabric.config.backoff_cap_ms);
        if let Some(mut child) = state.child.take() {
            let _ = child.kill();
            let _ = child.wait();
        }
    }
    if !fabric.draining.load(Ordering::SeqCst) {
        redispatch_orphans(fabric, shard);
    }
}

/// Moves every in-flight submission owned by dead `shard` to the next
/// live ring successor, or rejects it honestly when nobody is live.
fn redispatch_orphans(fabric: &Arc<Fabric>, shard: u32) {
    let orphans: Vec<u64> = fabric
        .routes()
        .iter()
        .filter(|(_, entry)| entry.shard == shard)
        .map(|(gid, _)| *gid)
        .collect();
    for gid in orphans {
        let Some(mut entry) = fabric.routes().remove(&gid) else {
            continue;
        };
        let key = placement_key(&entry.body.app, &entry.body.scheme);
        let target = fabric
            .ring
            .successors(key)
            .into_iter()
            .find_map(|s| fabric.conn(s).map(|conn| (s, conn)));
        match target {
            Some((next, conn)) => {
                entry.shard = next;
                let request = SubmitRequest {
                    submit: SubmitBody {
                        id: gid,
                        ..entry.body.clone()
                    },
                };
                fabric.routes().insert(gid, entry);
                if write_line(&conn, &request) {
                    fabric.redispatched.fetch_add(1, Ordering::Relaxed);
                }
                // On a failed write the successor is dying too; the route
                // now points at it, so its own mark_down redispatches
                // again or rejects.
            }
            None => {
                fabric.rejected_no_shard.fetch_add(1, Ordering::Relaxed);
                write_line(
                    &entry.client,
                    &RejectedReply {
                        rejected: RejectedBody {
                            id: entry.orig_id,
                            reason: "no live shard".to_string(),
                            retry_after_ms: fabric.retry_hint_ms(),
                        },
                    },
                );
            }
        }
    }
}

/// Places one client submission: first live shard in successor order.
fn forward_submit(fabric: &Arc<Fabric>, client: &Arc<Mutex<TcpStream>>, body: SubmitBody) {
    if fabric.draining.load(Ordering::SeqCst) {
        write_line(
            client,
            &RejectedReply {
                rejected: RejectedBody {
                    id: body.id,
                    reason: "draining".to_string(),
                    retry_after_ms: 1_000,
                },
            },
        );
        return;
    }
    let key = placement_key(&body.app, &body.scheme);
    let successors = fabric.ring.successors(key);
    let owner = successors.first().copied();
    for shard in successors {
        let Some(conn) = fabric.conn(shard) else {
            continue;
        };
        let gid = fabric.next_gid.fetch_add(1, Ordering::Relaxed);
        let entry = RouteEntry {
            client: Arc::clone(client),
            orig_id: body.id,
            body: body.clone(),
            shard,
        };
        fabric.routes().insert(gid, entry);
        let request = SubmitRequest {
            submit: SubmitBody {
                id: gid,
                ..body.clone()
            },
        };
        if write_line(&conn, &request) {
            fabric.forwarded.fetch_add(1, Ordering::Relaxed);
            if owner != Some(shard) {
                fabric.rerouted.fetch_add(1, Ordering::Relaxed);
            }
            return;
        }
        // Write failed: the shard is dying. Drop the route (no reply came
        // or will come for this gid) and try the next successor.
        fabric.routes().remove(&gid);
    }
    fabric.rejected_no_shard.fetch_add(1, Ordering::Relaxed);
    write_line(
        client,
        &RejectedReply {
            rejected: RejectedBody {
                id: body.id,
                reason: "no live shard".to_string(),
                retry_after_ms: fabric.retry_hint_ms(),
            },
        },
    );
}

/// One client connection's request loop on the router.
fn handle_router_client(fabric: &Arc<Fabric>, stream: TcpStream, shutdown: &Arc<AtomicBool>) {
    let Ok(write_half) = stream.try_clone() else {
        return;
    };
    let writer = Arc::new(Mutex::new(write_half));
    let mut reader = BufReader::new(stream);
    let mut line = String::new();
    loop {
        line.clear();
        match reader.read_line(&mut line) {
            Ok(0) | Err(_) => return,
            Ok(_) => {}
        }
        let text = line.trim();
        if text.is_empty() {
            continue;
        }
        if let Ok(request) = serde_json::from_str::<SubmitRequest>(text) {
            forward_submit(fabric, &writer, request.submit);
        } else if serde_json::from_str::<RouterStatsRequest>(text).is_ok()
            || serde_json::from_str::<StatsRequest>(text).is_ok()
        {
            write_line(
                &writer,
                &RouterStatsReply {
                    router_stats_reply: fabric.stats(),
                },
            );
        } else if serde_json::from_str::<PingRequest>(text).is_ok() {
            write_line(&writer, &PongReply { pong: true });
        } else if serde_json::from_str::<ShutdownRequest>(text).is_ok() {
            shutdown.store(true, Ordering::SeqCst);
            write_line(&writer, &crate::serve::DrainingReply { draining: true });
        } else {
            write_line(
                &writer,
                &crate::serve::ErrorReply {
                    error: format!("unparseable request: {text}"),
                },
            );
        }
    }
}

/// The supervisor tick: heartbeat live shards, reap exited children,
/// restart dead shards whose backoff has elapsed.
fn supervise(fabric: &Arc<Fabric>) {
    let stale_after = Duration::from_millis(fabric.config.heartbeat_ms.max(1) * 20);
    loop {
        if fabric.draining.load(Ordering::SeqCst) {
            return;
        }
        for shard in 0..fabric.config.shards {
            let (up, generation, conn, stale, exited) = {
                let mut state = fabric.slot(shard);
                let exited = state
                    .child
                    .as_mut()
                    .and_then(|c| c.try_wait().ok().flatten())
                    .is_some();
                (
                    state.up,
                    state.generation,
                    state.conn.clone(),
                    state.last_seen.elapsed() > stale_after,
                    exited,
                )
            };
            if up {
                if exited || stale {
                    mark_down(fabric, shard, generation);
                } else if let Some(conn) = conn {
                    if !write_line(&conn, &crate::serve::HeartbeatRequest { heartbeat: true }) {
                        mark_down(fabric, shard, generation);
                    }
                }
            } else {
                let due = {
                    let state = fabric.slot(shard);
                    Instant::now() >= state.next_attempt
                };
                if due && spawn_shard(fabric, shard).is_err() {
                    let mut state = fabric.slot(shard);
                    state.next_attempt = Instant::now() + Duration::from_millis(state.backoff_ms);
                    state.backoff_ms = (state.backoff_ms * 2).min(fabric.config.backoff_cap_ms);
                }
            }
        }
        thread::sleep(Duration::from_millis(fabric.config.heartbeat_ms.max(1)));
    }
}

/// Runs the router: spawns the fleet, binds the client listener, prints
/// `listening on ADDR`, serves until `SIGTERM` or a wire `shutdown`, then
/// drains the fleet (every shard checkpoints and exits 9) and returns.
///
/// # Errors
///
/// Returns the bind error or a fleet-boot error (no shard came up)
/// verbatim; individual shard deaths after boot are handled, not errors.
pub fn run_router(config: RouterConfig) -> std::io::Result<RouterSummary> {
    std::fs::create_dir_all(&config.journal_dir)?;
    std::fs::create_dir_all(&config.store_dir)?;
    let listener = TcpListener::bind(("127.0.0.1", config.port))?;
    let addr = listener.local_addr()?;
    let fabric = Fabric::new(config);

    let mut boot_errors = Vec::new();
    for shard in 0..fabric.config.shards {
        if let Err(e) = spawn_shard(&fabric, shard) {
            boot_errors.push(format!("shard {shard}: {e}"));
        }
    }
    if boot_errors.len() == fabric.config.shards as usize {
        return Err(std::io::Error::other(format!(
            "no shard came up: {}",
            boot_errors.join("; ")
        )));
    }

    println!("listening on {addr}");
    let _ = std::io::stdout().flush();

    let supervisor = {
        let fabric = Arc::clone(&fabric);
        thread::spawn(move || supervise(&fabric))
    };

    let shutdown = Arc::new(AtomicBool::new(false));
    let _ = listener.set_nonblocking(true);
    let mut handles = Vec::new();
    let mut raw_streams: Vec<TcpStream> = Vec::new();
    let mut connections = 0u64;
    loop {
        if crate::serve::TERM.load(Ordering::SeqCst) || shutdown.load(Ordering::SeqCst) {
            break;
        }
        match listener.accept() {
            Ok((stream, _peer)) => {
                connections += 1;
                if let Ok(raw) = stream.try_clone() {
                    raw_streams.push(raw);
                }
                let fabric = Arc::clone(&fabric);
                let shutdown = Arc::clone(&shutdown);
                handles.push(thread::spawn(move || {
                    handle_router_client(&fabric, stream, &shutdown);
                }));
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                thread::sleep(Duration::from_millis(5));
            }
            Err(_) => break,
        }
    }

    // Drain: stop supervision, ask every live shard to drain, wait for
    // the in-flight routes to flush (shards finish queued cells before
    // cutting streams), then reap children and cut client connections.
    fabric.draining.store(true, Ordering::SeqCst);
    let _ = supervisor.join();
    for shard in 0..fabric.config.shards {
        if let Some(conn) = fabric.conn(shard) {
            write_line(&conn, &ShutdownRequest { shutdown: true });
        }
    }
    let flush_deadline = Instant::now() + Duration::from_secs(60);
    while !fabric.routes().is_empty() && Instant::now() < flush_deadline {
        thread::sleep(Duration::from_millis(20));
    }
    for shard in 0..fabric.config.shards {
        let mut state = fabric.slot(shard);
        if let Some(mut child) = state.child.take() {
            let reap_deadline = Instant::now() + Duration::from_secs(30);
            loop {
                match child.try_wait() {
                    Ok(Some(_)) => break,
                    Ok(None) if Instant::now() < reap_deadline => {
                        thread::sleep(Duration::from_millis(20));
                    }
                    _ => {
                        let _ = child.kill();
                        let _ = child.wait();
                        break;
                    }
                }
            }
        }
        state.up = false;
        state.conn = None;
    }
    for stream in &raw_streams {
        let _ = stream.shutdown(Shutdown::Both);
    }
    for handle in handles {
        let _ = handle.join();
    }
    let stats = fabric.stats();
    eprintln!(
        "critic router: drained after {connections} connection(s), {} forwarded, {} redispatched, {} restarts",
        stats.forwarded, stats.redispatched, stats.restarts
    );
    Ok(RouterSummary { connections, stats })
}

/// Blocking client-side helper: fetch [`RouterStats`] over `addr`.
///
/// # Errors
///
/// Propagates connect/IO errors; an unexpected reply is `InvalidData`.
pub fn fetch_router_stats(addr: &str) -> std::io::Result<RouterStats> {
    let stream = TcpStream::connect(addr)?;
    let _ = stream.set_read_timeout(Some(Duration::from_secs(10)));
    let mut writer = stream.try_clone()?;
    let mut reader = BufReader::new(stream);
    let request = serde_json::to_string(&RouterStatsRequest { router_stats: true })
        .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e.to_string()))?;
    writer.write_all(request.as_bytes())?;
    writer.write_all(b"\n")?;
    writer.flush()?;
    let mut line = String::new();
    loop {
        line.clear();
        if reader.read_line(&mut line)? == 0 {
            return Err(std::io::Error::new(
                std::io::ErrorKind::UnexpectedEof,
                "router hung up before replying",
            ));
        }
        if let Ok(reply) = serde_json::from_str::<RouterStatsReply>(line.trim()) {
            return Ok(reply.router_stats_reply);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn router_stats_round_trip_and_stay_disjoint() {
        let reply = RouterStatsReply {
            router_stats_reply: RouterStats {
                shards: vec![ShardRow {
                    shard: 0,
                    addr: Some("127.0.0.1:1".into()),
                    pid: Some(42),
                    up: true,
                    generation: 1,
                }],
                forwarded: 7,
                rerouted: 1,
                redispatched: 2,
                rejected_no_shard: 0,
                restarts: 3,
            },
        };
        let line = serde_json::to_string(&reply).expect("serialise");
        let back: RouterStatsReply = serde_json::from_str(&line).expect("deserialise");
        assert_eq!(back.router_stats_reply.forwarded, 7);
        assert_eq!(back.router_stats_reply.shards[0].pid, Some(42));
        // A router stats reply is not any serve-tier reply.
        assert!(crate::serve::parse_reply(&line).is_none());
    }

    #[test]
    fn retry_hint_tracks_the_earliest_restart() {
        let config = RouterConfig::new(
            PathBuf::from("/bin/false"),
            PathBuf::from("/tmp/x"),
            PathBuf::from("/tmp/y"),
        );
        let fabric = Fabric::new(config);
        // All shards down, next attempt ~base backoff away.
        for shard in 0..3 {
            let mut state = fabric.slot(shard);
            state.up = false;
            state.next_attempt = Instant::now() + Duration::from_millis(500);
        }
        let hint = fabric.retry_hint_ms();
        assert!((25..=600).contains(&hint), "hint {hint} out of range");
    }
}
