//! The chaos harness behind `critic chaos`: seeded random schedules of
//! systemic *and* data faults over a smoke campaign, invariant checks, and
//! delta-debugging of failing schedules.
//!
//! A chaos run draws a schedule ([`Vec<ScheduleEntry>`]) — a mix of
//! [`PlannedFault`] data
//! corruptions and [`SysFaultSpec`] environmental failures — from a single
//! seed, runs a small campaign under it with the full supervision policy
//! armed (backoff, breaker, degradation ladder), and asserts the
//! invariants the runner promises to keep under *any* fault mix:
//!
//! * **accounting** — every grid cell appears in the summary exactly once
//!   (Ok, Failed, or Shed); nothing is silently dropped.
//! * **journal-resumable** — whatever the faults did to the journal
//!   (dropped lines, skipped fsyncs, torn tails), a `--resume` run against
//!   it completes the grid.
//! * **warm-unfaulted** — cells the schedule did not touch report metrics
//!   bit-identical to a fault-free reference run, and the reference's own
//!   cold/warm store pair is bit-identical.
//! * **ledger** — the probe cell's cycle ledger still partitions its run
//!   (checked once per invocation; it cannot depend on the schedule).
//!
//! When an invariant breaks, [`minimize_schedule`] delta-debugs (ddmin)
//! the schedule down to a minimal subset that still reproduces the same
//! violation — the JSON the CLI prints is a ready-made regression test.
//!
//! Everything is deterministic from the seed: schedules come from the
//! bit-exact [`StdRng`], campaigns run single-worker, and `WorkerStall` is
//! deliberately absent from the generator pool (its effect depends on host
//! timing, which would make schedules non-reproducible).

use std::collections::BTreeMap;
use std::fmt;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use critic_core::campaign::{
    run_campaign, run_campaign_with_store, CampaignSpec, CellMetrics, CellStatus, PlannedFault,
    Scheme, SupervisionPolicy,
};
use critic_core::design::DesignPoint;
use critic_core::store::ArtifactStore;
use critic_core::RunError;
use critic_obs::Telemetry;
use critic_workloads::suite::Suite;
use critic_workloads::{AppSpec, Fault, SysFault, SysFaultSpec, SysInjector};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

use crate::perf::{time_single_cell, BenchError};

/// Distinguishes concurrently-running chaos campaigns' journal files.
static JOURNAL_COUNTER: AtomicU64 = AtomicU64::new(0);

/// One entry of a chaos schedule: either a data fault aimed at a specific
/// cell or a systemic fault armed at an operation index.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum ScheduleEntry {
    /// Corrupt the data flowing through one cell's pipeline.
    Data(PlannedFault),
    /// Fail one operation of the system around the pipeline.
    Sys(SysFaultSpec),
}

impl fmt::Display for ScheduleEntry {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ScheduleEntry::Data(p) => {
                write!(
                    f,
                    "data:{}:{}:{}(seed {})",
                    p.app, p.scheme, p.fault, p.seed
                )
            }
            ScheduleEntry::Sys(s) => write!(f, "sys:{s}"),
        }
    }
}

/// What `critic chaos` runs.
#[derive(Debug, Clone, Copy)]
pub struct ChaosConfig {
    /// Seed for the schedule (and the supervision policy's backoff jitter).
    pub seed: u64,
    /// Grid cells (apps × 2 schemes; odd values round up).
    pub cells: usize,
    /// Smoke mode: shorter traces, for CI.
    pub smoke: bool,
    /// Delta-debug a violating schedule down to a minimal reproducer.
    pub minimize: bool,
}

impl Default for ChaosConfig {
    fn default() -> ChaosConfig {
        ChaosConfig {
            seed: 0,
            cells: 8,
            smoke: false,
            minimize: false,
        }
    }
}

/// One broken invariant, with enough detail to debug it.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Violation {
    /// Which invariant broke: `accounting`, `journal-resumable`,
    /// `warm-unfaulted`, or `ledger`.
    pub invariant: String,
    /// Human-readable specifics.
    pub detail: String,
}

/// The deterministic per-cell residue of a chaos campaign — everything a
/// re-run with the same seed must reproduce bit-identically (wall-clock
/// fields are deliberately absent).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ChaosCell {
    /// App name.
    pub app: String,
    /// Scheme name.
    pub scheme: String,
    /// Terminal status.
    pub status: CellStatus,
    /// Attempts consumed.
    pub attempts: u32,
    /// Final degradation-ladder level, if the supervisor degraded the cell.
    pub degraded: Option<u8>,
    /// Metrics, for Ok cells.
    pub metrics: Option<CellMetrics>,
}

/// The outcome `critic chaos` reports (and serialises on violation).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ChaosReport {
    /// The driving seed.
    pub seed: u64,
    /// The full generated schedule.
    pub schedule: Vec<ScheduleEntry>,
    /// Per-cell deterministic results of the chaos campaign.
    pub cells: Vec<ChaosCell>,
    /// Whether the chaos campaign was interrupted by an injected kill.
    pub interrupted: bool,
    /// Broken invariants (empty on a passing run).
    pub violations: Vec<Violation>,
    /// The ddmin-minimized schedule still reproducing the first
    /// violation's invariant, when `--minimize` was requested and needed.
    pub minimized: Option<Vec<ScheduleEntry>>,
}

impl ChaosReport {
    /// Whether every invariant held.
    pub fn ok(&self) -> bool {
        self.violations.is_empty()
    }
}

/// The grid a chaos run drills: `cells` cells as apps × {critic, opp16},
/// apps shrunk to campaign-test size so a schedule probe costs fractions
/// of a second.
fn chaos_grid(config: &ChaosConfig) -> (Vec<AppSpec>, Vec<Scheme>) {
    let napps = config.cells.div_ceil(2).max(1);
    let apps: Vec<AppSpec> = Suite::ALL
        .iter()
        .flat_map(|s| s.apps())
        .take(napps)
        .map(|mut app| {
            app.params.num_functions = 24;
            app
        })
        .collect();
    let schemes = vec![
        Scheme::new("critic", DesignPoint::critic()),
        Scheme::new("opp16", DesignPoint::opp16()),
    ];
    (apps, schemes)
}

fn chaos_trace_len(config: &ChaosConfig) -> usize {
    if config.smoke {
        6_000
    } else {
        12_000
    }
}

/// Draws a schedule from the seed: 3–6 entries, each a coin flip between
/// a data fault on a random cell and a systemic fault at a random index.
///
/// The systemic pool spans every deterministic fault family. Alloc budgets
/// are drawn below the first pipeline charge (`trace_len * 64` bytes) so
/// an injected budget always fails its attempt — firing-but-harmless
/// faults would water the drill down. `WorkerStall` is excluded: its
/// observable effect depends on host timing.
pub fn generate_schedule(config: &ChaosConfig) -> Vec<ScheduleEntry> {
    let (apps, schemes) = chaos_grid(config);
    let cells = (apps.len() * schemes.len()) as u64;
    let mut rng = StdRng::seed_from_u64(config.seed);
    let data_pool = [
        Fault::ClobberedDestination,
        Fault::DanglingTerminator,
        Fault::DuplicateUid,
        Fault::EmptyTrace,
    ];
    let n: usize = rng.gen_range(3..=6);
    let mut schedule = Vec::with_capacity(n + 1);
    for _ in 0..n {
        if rng.gen_range(0..2) == 0 {
            let app = &apps[rng.gen_range(0..apps.len())];
            let scheme = &schemes[rng.gen_range(0..schemes.len())];
            schedule.push(ScheduleEntry::Data(PlannedFault {
                app: app.name.clone(),
                scheme: scheme.name.clone(),
                fault: data_pool[rng.gen_range(0..data_pool.len())],
                seed: rng.gen_range(1..=1_000),
            }));
        } else {
            let budget_cap = (chaos_trace_len(config) as u64 * 64).saturating_sub(1);
            let kind = rng.gen_range(0..6);
            let fault = match kind {
                0 => SysFault::JournalWrite,
                1 => SysFault::JournalFsync,
                2 => SysFault::JournalTorn,
                3 => SysFault::StoreRead,
                4 => SysFault::StoreWrite,
                _ => SysFault::AllocBudget {
                    bytes: rng.gen_range(budget_cap / 2..=budget_cap),
                },
            };
            // Ops per class scale with the grid: journal appends and
            // attempt starts roughly once per cell, store requests a
            // few times per clean cell.
            let at = match fault.op() {
                critic_workloads::SysOp::StoreRequest => rng.gen_range(0..cells * 2),
                _ => rng.gen_range(0..cells),
            };
            schedule.push(ScheduleEntry::Sys(SysFaultSpec { fault, at }));
        }
    }
    // One kill in every third schedule, appended last so the coin flips
    // above stay aligned across seeds.
    let kill = rng.gen_range(0..3) == 0;
    let at = rng.gen_range(0..cells.max(2) - 1);
    if kill {
        schedule.push(ScheduleEntry::Sys(SysFaultSpec {
            fault: SysFault::Kill,
            at,
        }));
    }
    schedule
}

/// The campaign spec one schedule probe runs: single worker (full
/// determinism), retry budget, validation on, telemetry on, and the whole
/// supervision policy armed.
fn chaos_spec(config: &ChaosConfig, schedule: &[ScheduleEntry]) -> CampaignSpec {
    let (apps, schemes) = chaos_grid(config);
    let mut spec = CampaignSpec::new(apps, schemes, chaos_trace_len(config));
    spec.workers = 1;
    spec.retries = 2;
    spec.validate = true;
    spec.telemetry = Telemetry::enabled();
    spec.supervision = SupervisionPolicy {
        backoff_base_millis: 1,
        backoff_cap_millis: 4,
        backoff_seed: config.seed,
        breaker_threshold: 2,
        degrade: true,
    };
    let sys: Vec<SysFaultSpec> = schedule
        .iter()
        .filter_map(|e| match e {
            ScheduleEntry::Sys(s) => Some(*s),
            ScheduleEntry::Data(_) => None,
        })
        .collect();
    if !sys.is_empty() {
        spec.sys = Some(Arc::new(SysInjector::new(sys)));
    }
    spec.faults = schedule
        .iter()
        .filter_map(|e| match e {
            ScheduleEntry::Data(p) => Some(p.clone()),
            ScheduleEntry::Sys(_) => None,
        })
        .collect();
    spec
}

/// A scratch journal path no two concurrent probes share.
fn scratch_journal() -> PathBuf {
    let dir = std::env::temp_dir().join("critic_chaos");
    let _ = std::fs::create_dir_all(&dir);
    dir.join(format!(
        "journal_{}_{}.jsonl",
        std::process::id(),
        JOURNAL_COUNTER.fetch_add(1, Ordering::Relaxed)
    ))
}

/// The fault-free reference the warm-unfaulted invariant compares against:
/// per-cell metrics from a clean run of the same grid, after checking the
/// reference's own cold/warm store pair is bit-identical.
fn reference_metrics(
    config: &ChaosConfig,
) -> Result<BTreeMap<(String, String), CellMetrics>, Violation> {
    let mut spec = chaos_spec(config, &[]);
    spec.telemetry = Telemetry::off();
    let store = Arc::new(ArtifactStore::new());
    let run_error = |e: RunError| Violation {
        invariant: "warm-unfaulted".to_string(),
        detail: format!("fault-free reference run failed: {e}"),
    };
    let cold = run_campaign_with_store(&spec, &store).map_err(run_error)?;
    let warm = run_campaign_with_store(&spec, &store).map_err(run_error)?;
    if !cold.all_ok() {
        return Err(Violation {
            invariant: "warm-unfaulted".to_string(),
            detail: format!(
                "fault-free reference run has failing cells:\n{}",
                cold.render()
            ),
        });
    }
    for (c, w) in cold.records.iter().zip(&warm.records) {
        if c.metrics != w.metrics || c.validation != w.validation || c.status != w.status {
            return Err(Violation {
                invariant: "warm-unfaulted".to_string(),
                detail: format!(
                    "cold and warm reference runs diverge at {}:{}",
                    c.app, c.scheme
                ),
            });
        }
    }
    Ok(cold
        .records
        .into_iter()
        .map(|r| ((r.app.clone(), r.scheme.clone()), r.metrics))
        .filter_map(|(k, m)| m.map(|m| (k, m)))
        .collect())
}

/// One schedule probe: run the campaign under the schedule, then check the
/// schedule-dependent invariants. `reference` gates the warm-unfaulted
/// check (minimization probes for other invariants skip it by passing
/// `None`).
fn run_schedule(
    config: &ChaosConfig,
    schedule: &[ScheduleEntry],
    reference: Option<&BTreeMap<(String, String), CellMetrics>>,
) -> Result<(Vec<ChaosCell>, bool, Vec<Violation>), RunError> {
    let journal = scratch_journal();
    let mut spec = chaos_spec(config, schedule);
    spec.journal = Some(journal.clone());
    let summary = run_campaign(&spec)?;
    let mut violations = Vec::new();

    // Invariant: accounting. Every grid cell exactly once, whatever the
    // faults did.
    let grid: Vec<(String, String)> = spec
        .apps
        .iter()
        .flat_map(|a| {
            spec.schemes
                .iter()
                .map(move |s| (a.name.clone(), s.name.clone()))
        })
        .collect();
    let mut seen: BTreeMap<(String, String), usize> = BTreeMap::new();
    for r in &summary.records {
        *seen.entry((r.app.clone(), r.scheme.clone())).or_insert(0) += 1;
    }
    for key in &grid {
        match seen.get(key).copied().unwrap_or(0) {
            1 => {}
            n => violations.push(Violation {
                invariant: "accounting".to_string(),
                detail: format!(
                    "cell {}:{} appears {n} times in the summary (expected exactly once)",
                    key.0, key.1
                ),
            }),
        }
    }

    // Invariant: journal-resumable. A faultless resume against whatever
    // journal the chaos run left behind completes the grid.
    let mut resume_spec = chaos_spec(config, schedule);
    resume_spec.sys = None;
    resume_spec.journal = Some(journal.clone());
    resume_spec.resume = true;
    match run_campaign(&resume_spec) {
        Err(e) => violations.push(Violation {
            invariant: "journal-resumable".to_string(),
            detail: format!("resume against the chaos journal failed: {e}"),
        }),
        Ok(resumed) => {
            if resumed.records.len() != grid.len() || resumed.interrupted {
                violations.push(Violation {
                    invariant: "journal-resumable".to_string(),
                    detail: format!(
                        "resume completed {}/{} cells (interrupted: {})",
                        resumed.records.len(),
                        grid.len(),
                        resumed.interrupted
                    ),
                });
            }
        }
    }

    // Invariant: warm-unfaulted. Ok cells the schedule never touched (no
    // data fault, never degraded to the baseline-scheme rung) match the
    // fault-free reference bit for bit.
    if let Some(reference) = reference {
        for r in &summary.records {
            let unfaulted = r.fault.is_none() && r.degraded.is_none_or(|l| l < 3);
            if r.status != CellStatus::Ok || !unfaulted {
                continue;
            }
            let key = (r.app.clone(), r.scheme.clone());
            if reference.get(&key) != r.metrics.as_ref() {
                violations.push(Violation {
                    invariant: "warm-unfaulted".to_string(),
                    detail: format!(
                        "unfaulted cell {}:{} diverged from the fault-free reference: \
                         {:?} vs {:?}",
                        r.app,
                        r.scheme,
                        r.metrics,
                        reference.get(&key)
                    ),
                });
            }
        }
    }

    let cells = summary
        .records
        .iter()
        .map(|r| ChaosCell {
            app: r.app.clone(),
            scheme: r.scheme.clone(),
            status: r.status,
            attempts: r.attempts,
            degraded: r.degraded,
            metrics: r.metrics.clone(),
        })
        .collect();
    let _ = std::fs::remove_file(&journal);
    Ok((cells, summary.interrupted, violations))
}

/// Probes one explicit schedule (no generation, no reference run): runs
/// the campaign under it and returns the schedule-dependent invariant
/// violations. This is the oracle handed to [`minimize_schedule`], public
/// so integration tests can drill hand-crafted schedules — e.g. proving
/// the minimizer isolates the `chaos-planted-bug` feature's record drop.
///
/// # Errors
///
/// Only infrastructure failures (an unusable scratch journal); invariant
/// violations are the Ok payload.
pub fn probe_schedule(
    config: &ChaosConfig,
    schedule: &[ScheduleEntry],
) -> Result<Vec<Violation>, BenchError> {
    let (_, _, violations) = run_schedule(config, schedule, None).map_err(BenchError::Run)?;
    Ok(violations)
}

/// ddmin over schedule entries: returns a minimal subset for which
/// `still_fails` holds. `still_fails(&full)` must hold on entry; the
/// result is 1-minimal (dropping any single remaining entry passes).
pub fn minimize_schedule<F>(schedule: &[ScheduleEntry], still_fails: F) -> Vec<ScheduleEntry>
where
    F: Fn(&[ScheduleEntry]) -> bool,
{
    let mut current: Vec<ScheduleEntry> = schedule.to_vec();
    let mut granularity = 2usize;
    while current.len() >= 2 {
        let chunk = current.len().div_ceil(granularity);
        let mut reduced = false;
        // Subsets first, then complements — classic ddmin.
        for start in (0..current.len()).step_by(chunk) {
            let subset: Vec<ScheduleEntry> =
                current[start..(start + chunk).min(current.len())].to_vec();
            if subset.len() < current.len() && still_fails(&subset) {
                current = subset;
                granularity = 2;
                reduced = true;
                break;
            }
        }
        if reduced {
            continue;
        }
        for start in (0..current.len()).step_by(chunk) {
            let complement: Vec<ScheduleEntry> = current
                .iter()
                .enumerate()
                .filter(|(i, _)| *i < start || *i >= (start + chunk).min(current.len()))
                .map(|(_, e)| e.clone())
                .collect();
            if !complement.is_empty()
                && complement.len() < current.len()
                && still_fails(&complement)
            {
                current = complement;
                granularity = (granularity - 1).max(2);
                reduced = true;
                break;
            }
        }
        if reduced {
            continue;
        }
        if granularity >= current.len() {
            break;
        }
        granularity = (granularity * 2).min(current.len());
    }
    // Final 1-minimality pass: drop single entries while any drop still
    // reproduces.
    let mut i = 0;
    while current.len() > 1 && i < current.len() {
        let mut candidate = current.clone();
        candidate.remove(i);
        if still_fails(&candidate) {
            current = candidate;
            i = 0;
        } else {
            i += 1;
        }
    }
    current
}

/// Runs one full chaos invocation: generate, drill, check, and (on
/// violation, when asked) minimize.
///
/// # Errors
///
/// Only infrastructure failures (an unusable scratch journal, a broken
/// reference run) are errors; invariant violations are *data*, reported
/// on the [`ChaosReport`].
pub fn run_chaos(config: &ChaosConfig) -> Result<ChaosReport, BenchError> {
    let schedule = generate_schedule(config);
    let reference = reference_metrics(config);
    let (cells, interrupted, mut violations) = match &reference {
        Ok(reference) => run_schedule(config, &schedule, Some(reference))?,
        Err(_) => run_schedule(config, &schedule, None)?,
    };
    if let Err(violation) = reference {
        violations.insert(0, violation);
    }

    // The ledger invariant is schedule-independent: check it once, after
    // the drill, so its cost is paid per invocation rather than per probe.
    if let Err(e) = time_single_cell(chaos_trace_len(config)) {
        violations.push(Violation {
            invariant: "ledger".to_string(),
            detail: e.to_string(),
        });
    }

    let minimized = match violations.first() {
        Some(first) if config.minimize => {
            let invariant = first.invariant.clone();
            Some(minimize_schedule(&schedule, |subset| {
                run_schedule(config, subset, None)
                    .map(|(_, _, vs)| vs.iter().any(|v| v.invariant == invariant))
                    .unwrap_or(false)
            }))
        }
        _ => None,
    };

    Ok(ChaosReport {
        seed: config.seed,
        schedule,
        cells,
        interrupted,
        violations,
        minimized,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn smoke_config(seed: u64) -> ChaosConfig {
        ChaosConfig {
            seed,
            cells: 4,
            smoke: true,
            minimize: false,
        }
    }

    #[test]
    fn schedules_are_deterministic_per_seed() {
        for seed in [0, 1, 42, 0xdead_beef] {
            let a = generate_schedule(&smoke_config(seed));
            let b = generate_schedule(&smoke_config(seed));
            assert_eq!(a, b, "seed {seed}");
            assert!((3..=7).contains(&a.len()), "seed {seed}: {a:?}");
        }
        let a = generate_schedule(&smoke_config(1));
        let b = generate_schedule(&smoke_config(2));
        assert_ne!(a, b, "different seeds draw different schedules");
    }

    #[test]
    fn schedules_round_trip_through_json() {
        let schedule = generate_schedule(&smoke_config(7));
        let json = serde_json::to_string(&schedule).expect("serialises");
        let back: Vec<ScheduleEntry> = serde_json::from_str(&json).expect("deserialises");
        assert_eq!(back, schedule);
    }

    #[test]
    fn minimizer_reduces_to_the_failing_core_on_a_synthetic_oracle() {
        // Synthetic oracle: the schedule "fails" iff it contains both the
        // store-read fault and the kill. ddmin must find exactly that pair.
        let schedule = vec![
            ScheduleEntry::Sys(SysFaultSpec {
                fault: SysFault::JournalFsync,
                at: 0,
            }),
            ScheduleEntry::Sys(SysFaultSpec {
                fault: SysFault::StoreRead,
                at: 1,
            }),
            ScheduleEntry::Sys(SysFaultSpec {
                fault: SysFault::JournalWrite,
                at: 2,
            }),
            ScheduleEntry::Sys(SysFaultSpec {
                fault: SysFault::Kill,
                at: 1,
            }),
            ScheduleEntry::Sys(SysFaultSpec {
                fault: SysFault::JournalTorn,
                at: 3,
            }),
        ];
        let needs = |subset: &[ScheduleEntry]| {
            let has = |f: SysFault| {
                subset
                    .iter()
                    .any(|e| matches!(e, ScheduleEntry::Sys(s) if s.fault == f))
            };
            has(SysFault::StoreRead) && has(SysFault::Kill)
        };
        assert!(needs(&schedule));
        let minimal = minimize_schedule(&schedule, needs);
        assert_eq!(minimal.len(), 2, "{minimal:?}");
        assert!(needs(&minimal), "{minimal:?}");
    }

    #[test]
    fn minimizer_handles_single_culprit() {
        let schedule = vec![
            ScheduleEntry::Sys(SysFaultSpec {
                fault: SysFault::JournalFsync,
                at: 0,
            }),
            ScheduleEntry::Sys(SysFaultSpec {
                fault: SysFault::StoreWrite,
                at: 1,
            }),
            ScheduleEntry::Sys(SysFaultSpec {
                fault: SysFault::JournalWrite,
                at: 2,
            }),
        ];
        let culprit = |subset: &[ScheduleEntry]| {
            subset
                .iter()
                .any(|e| matches!(e, ScheduleEntry::Sys(s) if s.fault == SysFault::StoreWrite))
        };
        let minimal = minimize_schedule(&schedule, culprit);
        assert_eq!(
            minimal,
            vec![ScheduleEntry::Sys(SysFaultSpec {
                fault: SysFault::StoreWrite,
                at: 1,
            })]
        );
    }
}
