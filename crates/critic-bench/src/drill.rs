//! The kill-anywhere recovery drill behind `critic drill`: a supervisor
//! that crashes real `critic campaign` child processes at seeded fault
//! points, restarts them with `--resume` against the same journal and
//! persistent store, and asserts the durability contract point by point.
//!
//! Each kill point plants one [`SysFault::Crash`] — an abort at the Nth
//! occurrence of one instrumented operation (journal append, journal
//! fsync, store request, disk request, attempt start, cell done) — plus a
//! seeded handful of non-fatal fault noise (dropped journal writes, torn
//! lines, disk read/write/corrupt failures). The supervisor then checks:
//!
//! * **accounting / grid-complete** — after the restart, the journal's
//!   newest-wins replay covers every grid cell exactly once, all Ok;
//! * **journal-resumable** — the restarted child exits 0 and the scarred
//!   journal (segments, checkpoints, torn tail) replays cleanly;
//! * **warm-unfaulted** — every cell's final metrics are bit-identical to
//!   a fault-free in-process reference run;
//! * **ledger** — the probe cell's cycle ledger still partitions its run
//!   (schedule-independent, checked once per invocation);
//! * **durable-warm** — a verification campaign over the *same store
//!   directory* (fresh process-equivalent: new in-memory store, fresh
//!   journal) is served from disk (`disk_hits > 0`) and reproduces the
//!   reference metrics bit for bit;
//! * **no-lost-ack** — every cell journaled `Ok` under run tag 0 before
//!   the kill still carries run tag 0 (and the same metrics) after the
//!   restart: an acknowledged cell is never re-simulated.
//!
//! Children are spawned from the current executable (`critic drill` runs
//! inside the `critic` binary), crash via `std::process::abort` (SIGABRT),
//! and restart with `--run-tag 1` so re-simulated cells are
//! distinguishable from preserved ones in the journal itself. A violating
//! point is delta-debugged (ddmin, reusing the chaos minimizer) down to a
//! minimal fault subset that still reproduces it — the repro JSON the CLI
//! prints on exit code 11.

use std::collections::BTreeMap;
use std::path::{Path, PathBuf};
use std::process::{Command, ExitStatus, Output};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use critic_core::campaign::{
    run_campaign, run_campaign_with_store, CampaignSpec, CellMetrics, CellStatus, Scheme,
};
use critic_core::design::DesignPoint;
use critic_core::journal::Journal;
use critic_core::store::ArtifactStore;
use critic_obs::Telemetry;
use critic_workloads::suite::Suite;
use critic_workloads::{SysFault, SysFaultSpec, SysOp};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

use crate::chaos::{minimize_schedule, ScheduleEntry};
use crate::perf::{time_single_cell, BenchError};

/// Distinguishes concurrently-running drill points' scratch directories.
static SCRATCH_COUNTER: AtomicU64 = AtomicU64::new(0);

/// The exit signal `std::process::abort` raises: SIGABRT.
#[cfg(unix)]
const ABORT_SIGNAL: i32 = 6;

/// Journal segment size drill children run with — small enough that a
/// four-cell grid rolls and compacts at least once mid-campaign, so kill
/// points land inside the roll protocol too.
const SEGMENT_LINES: usize = 3;

/// What `critic drill` runs.
#[derive(Debug, Clone)]
pub struct DrillConfig {
    /// Seed for the fault-noise draws riding along each kill point.
    pub seed: u64,
    /// Kill points to drill: point `i` crashes at occurrence `i / 6` of
    /// operation class `i % 6`, sweeping every class at every depth.
    pub points: usize,
    /// Smoke mode: shorter traces, for CI and tests.
    pub smoke: bool,
    /// Delta-debug a violating point's fault set to a minimal reproducer.
    pub minimize: bool,
    /// The `critic` binary to spawn children from; defaults to the current
    /// executable (correct when invoked as `critic drill`).
    pub binary: Option<PathBuf>,
}

impl Default for DrillConfig {
    fn default() -> DrillConfig {
        DrillConfig {
            seed: 0,
            points: 24,
            smoke: false,
            minimize: false,
            binary: None,
        }
    }
}

/// One seeded kill point: the planted crash plus its fault noise.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct KillPoint {
    /// The planted crash: op class and occurrence index.
    pub crash: SysFaultSpec,
    /// Non-fatal faults armed alongside it.
    pub noise: Vec<SysFaultSpec>,
}

impl KillPoint {
    /// The full `--sys` spec list the child campaign runs under.
    pub fn specs(&self) -> Vec<SysFaultSpec> {
        let mut specs = vec![self.crash];
        specs.extend(self.noise.iter().copied());
        specs
    }
}

/// One broken durability invariant, pinned to its kill point.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DrillViolation {
    /// Index of the kill point in the report's `points`.
    pub point: usize,
    /// The crash spec that was planted there.
    pub crash: SysFaultSpec,
    /// Which invariant broke: `accounting`, `journal-resumable`,
    /// `warm-unfaulted`, `ledger`, `durable-warm`, or `no-lost-ack`.
    pub invariant: String,
    /// Human-readable specifics.
    pub detail: String,
}

/// The outcome `critic drill` reports (and serialises on violation).
#[derive(Debug, Clone, Serialize)]
pub struct DrillReport {
    /// The driving seed.
    pub seed: u64,
    /// Grid cells each point's campaign covers.
    pub cells: usize,
    /// Every kill point drilled.
    pub points: Vec<KillPoint>,
    /// Points whose child actually died at the planted crash.
    pub crashed: usize,
    /// Points whose crash index lay beyond the ops the campaign executed
    /// (the child finished; the restart path is verified regardless).
    pub clean: usize,
    /// Cells journaled Ok before a kill and verified untouched after the
    /// restart, summed across points.
    pub acked_preserved: u64,
    /// Disk-store hits observed by the verification passes, summed across
    /// points (durable-warm requires every point to contribute).
    pub disk_hits: u64,
    /// Broken invariants (empty on a passing drill).
    pub violations: Vec<DrillViolation>,
    /// The ddmin-minimized fault subset still reproducing the first
    /// violation, when `--minimize` was requested and needed.
    pub minimized: Option<Vec<SysFaultSpec>>,
}

impl DrillReport {
    /// Whether every invariant held at every point.
    pub fn ok(&self) -> bool {
        self.violations.is_empty()
    }
}

/// Apps per drill grid: 2 apps x {critic, opp16} = 4 cells, small enough
/// that each point's three campaign passes cost fractions of a second.
const DRILL_APPS: usize = 2;

fn drill_trace_len(config: &DrillConfig) -> usize {
    if config.smoke {
        2_000
    } else {
        4_000
    }
}

/// The in-process twin of the child campaign's grid, used for the
/// reference run and the durable-warm verification pass. Must match the
/// child's flags exactly: `--suite mobile --apps 2 --schemes critic,opp16`.
fn drill_spec(config: &DrillConfig) -> CampaignSpec {
    let apps = Suite::Mobile.apps().into_iter().take(DRILL_APPS).collect();
    let schemes = vec![
        Scheme::new("critic", DesignPoint::critic()),
        Scheme::new("opp16", DesignPoint::opp16()),
    ];
    let mut spec = CampaignSpec::new(apps, schemes, drill_trace_len(config));
    spec.workers = 1;
    spec.telemetry = Telemetry::off();
    spec
}

/// Generates the seeded kill points: a round-robin sweep of every
/// operation class at increasing occurrence indices, each with 0–2
/// non-fatal noise faults drawn from the seed.
pub fn generate_points(config: &DrillConfig) -> Vec<KillPoint> {
    let mut rng = StdRng::seed_from_u64(config.seed);
    let noise_pool = [
        SysFault::JournalWrite,
        SysFault::JournalFsync,
        SysFault::JournalTorn,
        SysFault::StoreRead,
        SysFault::StoreWrite,
        SysFault::DiskRead,
        SysFault::DiskWrite,
        SysFault::DiskCorrupt,
    ];
    (0..config.points)
        .map(|i| {
            let op = SysOp::ALL[i % SysOp::ALL.len()];
            let at = (i / SysOp::ALL.len()) as u64;
            let n = rng.gen_range(0..=2);
            let noise = (0..n)
                .map(|_| SysFaultSpec {
                    fault: noise_pool[rng.gen_range(0..noise_pool.len())],
                    at: rng.gen_range(0..12),
                })
                .collect();
            KillPoint {
                crash: SysFaultSpec {
                    fault: SysFault::Crash { op },
                    at,
                },
                noise,
            }
        })
        .collect()
}

/// Renders one spec as the CLI's `--sys NAME[:PARAM]@AT` syntax.
fn sys_arg(spec: &SysFaultSpec) -> String {
    let head = match spec.fault {
        SysFault::AllocBudget { bytes } => format!("alloc-budget:{bytes}"),
        SysFault::WorkerStall { millis } => format!("worker-stall:{millis}"),
        SysFault::Crash { op } => format!("crash:{}", op.name()),
        other => other.name().to_string(),
    };
    format!("{head}@{}", spec.at)
}

/// Whether the child died at the planted crash (`std::process::abort` →
/// SIGABRT on unix; any signal death elsewhere).
fn crashed_by_abort(status: &ExitStatus) -> bool {
    #[cfg(unix)]
    {
        use std::os::unix::process::ExitStatusExt;
        status.signal() == Some(ABORT_SIGNAL)
    }
    #[cfg(not(unix))]
    {
        status.code().is_none()
    }
}

/// The last few lines of a child's stderr, for violation details.
fn stderr_tail(output: &Output) -> String {
    let text = String::from_utf8_lossy(&output.stderr);
    let lines: Vec<&str> = text.lines().collect();
    let tail = lines.len().saturating_sub(4);
    lines[tail..].join(" | ")
}

/// Spawns one child campaign over the point's journal and store.
fn run_child(
    binary: &Path,
    config: &DrillConfig,
    journal: &Path,
    store_dir: &Path,
    specs: &[SysFaultSpec],
    resume: bool,
    run_tag: u64,
) -> Result<Output, BenchError> {
    let mut cmd = Command::new(binary);
    cmd.args([
        "campaign",
        "--suite",
        "mobile",
        "--apps",
        &DRILL_APPS.to_string(),
        "--schemes",
        "critic,opp16",
        "--trace-len",
        &drill_trace_len(config).to_string(),
        "--workers",
        "1",
        "--segment-lines",
        &SEGMENT_LINES.to_string(),
        "--run-tag",
        &run_tag.to_string(),
    ]);
    cmd.arg("--journal").arg(journal);
    cmd.arg("--store-dir").arg(store_dir);
    if resume {
        cmd.arg("--resume");
    }
    for spec in specs {
        cmd.arg("--sys").arg(sys_arg(spec));
    }
    cmd.output().map_err(|e| {
        BenchError::Io(format!(
            "cannot spawn drill child {}: {e}",
            binary.display()
        ))
    })
}

/// What one drilled point produced, before violations are pinned to it.
struct PointOutcome {
    crashed: bool,
    acked_preserved: u64,
    disk_hits: u64,
    violations: Vec<(String, String)>,
}

/// The per-cell reference metrics every point's outcomes are compared
/// against, from one fault-free in-process run of the drill grid.
type Reference = BTreeMap<(String, String), CellMetrics>;

fn reference_metrics(config: &DrillConfig) -> Result<Reference, BenchError> {
    let spec = drill_spec(config);
    let summary = run_campaign(&spec).map_err(BenchError::Run)?;
    if !summary.all_ok() {
        return Err(BenchError::FailedCells(summary.render()));
    }
    Ok(summary
        .records
        .into_iter()
        .filter_map(|r| r.metrics.map(|m| ((r.app, r.scheme), m)))
        .collect())
}

/// Drills one kill point end to end: crash the child, snapshot the acked
/// set, restart with `--resume`, then check every schedule-dependent
/// invariant.
fn run_point(
    config: &DrillConfig,
    binary: &Path,
    specs: &[SysFaultSpec],
    reference: &Reference,
) -> Result<PointOutcome, BenchError> {
    let scratch = std::env::temp_dir().join("critic_drill").join(format!(
        "point_{}_{}",
        std::process::id(),
        SCRATCH_COUNTER.fetch_add(1, Ordering::Relaxed)
    ));
    std::fs::create_dir_all(&scratch)
        .map_err(|e| BenchError::Io(format!("cannot create {}: {e}", scratch.display())))?;
    let journal = scratch.join("journal.jsonl");
    let store_dir = scratch.join("store");

    let mut violations: Vec<(String, String)> = Vec::new();
    let mut violate = |invariant: &str, detail: String| {
        violations.push((invariant.to_string(), detail));
    };

    // Phase 1: the campaign under fire. Either it dies at the planted
    // crash (SIGABRT) or the crash index lay beyond the executed ops and
    // it finishes — success, failed cells from the noise, whatever.
    let first = run_child(binary, config, &journal, &store_dir, specs, false, 0)?;
    let crashed = crashed_by_abort(&first.status);
    if !crashed && !matches!(first.status.code(), Some(0) | Some(6)) {
        violate(
            "journal-resumable",
            format!(
                "initial campaign neither crashed at the planted point nor exited \
                 cleanly (status {:?}): {}",
                first.status.code(),
                stderr_tail(&first)
            ),
        );
    }

    // The acked set: cells the journal acknowledged Ok under run tag 0.
    // no-lost-ack promises the restart never re-simulates any of them.
    let grid: Vec<(String, String)> = {
        let spec = drill_spec(config);
        spec.apps
            .iter()
            .flat_map(|a| {
                spec.schemes
                    .iter()
                    .map(move |s| (a.name.clone(), s.name.clone()))
            })
            .collect()
    };
    let acked: BTreeMap<(String, String), CellMetrics> =
        match Journal::replay(&journal, &Telemetry::off()) {
            Err(e) => {
                violate(
                    "journal-resumable",
                    format!("replay after the kill failed: {e}"),
                );
                BTreeMap::new()
            }
            Ok(pre) => pre
                .records
                .into_iter()
                .filter(|r| {
                    r.status == CellStatus::Ok
                        && r.run == Some(0)
                        && grid.contains(&(r.app.clone(), r.scheme.clone()))
                })
                .filter_map(|r| r.metrics.clone().map(|m| ((r.app, r.scheme), m)))
                .collect(),
        };

    // Phase 2: the restart. Same journal, same store, no faults, run tag 1.
    let second = run_child(binary, config, &journal, &store_dir, &[], true, 1)?;
    if second.status.code() != Some(0) {
        violate(
            "journal-resumable",
            format!(
                "resume exited with status {:?}: {}",
                second.status.code(),
                stderr_tail(&second)
            ),
        );
    }

    // Phase 3: replay the final journal and check accounting, bit-identity
    // against the reference, and no-lost-ack.
    match Journal::replay(&journal, &Telemetry::off()) {
        Err(e) => violate(
            "journal-resumable",
            format!("replay after the resume failed: {e}"),
        ),
        Ok(post) => {
            let newest: BTreeMap<(String, String), _> = post
                .records
                .into_iter()
                .map(|r| ((r.app.clone(), r.scheme.clone()), r))
                .collect();
            for key in &grid {
                match newest.get(key) {
                    None => violate(
                        "accounting",
                        format!("cell {}:{} missing from the resumed journal", key.0, key.1),
                    ),
                    Some(r) if r.status != CellStatus::Ok => violate(
                        "accounting",
                        format!(
                            "cell {}:{} ended {:?} after a faultless resume",
                            key.0, key.1, r.status
                        ),
                    ),
                    Some(r) => {
                        if r.metrics.as_ref() != reference.get(key) {
                            violate(
                                "warm-unfaulted",
                                format!(
                                    "cell {}:{} diverged from the fault-free reference: \
                                     {:?} vs {:?}",
                                    key.0,
                                    key.1,
                                    r.metrics,
                                    reference.get(key)
                                ),
                            );
                        }
                    }
                }
            }
            for (key, pre_metrics) in &acked {
                match newest.get(key) {
                    None => violate(
                        "no-lost-ack",
                        format!(
                            "cell {}:{} was journaled Ok before the kill but vanished",
                            key.0, key.1
                        ),
                    ),
                    Some(r) if r.run != Some(0) => violate(
                        "no-lost-ack",
                        format!(
                            "cell {}:{} was journaled Ok before the kill but re-simulated \
                             (final run tag {:?})",
                            key.0, key.1, r.run
                        ),
                    ),
                    Some(r) if r.metrics.as_ref() != Some(pre_metrics) => violate(
                        "no-lost-ack",
                        format!(
                            "cell {}:{} kept run tag 0 but its acked metrics changed",
                            key.0, key.1
                        ),
                    ),
                    Some(_) => {}
                }
            }
        }
    }

    // Phase 4: durable-warm. A process-restart-equivalent verification
    // pass — fresh in-memory store over the same directory, fresh journal
    // — must be served from disk and reproduce the reference bit for bit.
    let mut disk_hits = 0;
    match ArtifactStore::persistent(&store_dir, None, Telemetry::off()) {
        Err(e) => violate(
            "durable-warm",
            format!("store dir unusable after the drill: {e}"),
        ),
        Ok(store) => {
            let store = Arc::new(store);
            let spec = drill_spec(config);
            match run_campaign_with_store(&spec, &store) {
                Err(e) => violate("durable-warm", format!("verification campaign failed: {e}")),
                Ok(summary) => {
                    for r in &summary.records {
                        let key = (r.app.clone(), r.scheme.clone());
                        if r.status != CellStatus::Ok {
                            violate(
                                "durable-warm",
                                format!(
                                    "verification cell {}:{} ended {:?}",
                                    r.app, r.scheme, r.status
                                ),
                            );
                        } else if r.metrics.as_ref() != reference.get(&key) {
                            violate(
                                "durable-warm",
                                format!(
                                    "verification cell {}:{} is not bit-identical to the \
                                     reference: {:?} vs {:?}",
                                    r.app,
                                    r.scheme,
                                    r.metrics,
                                    reference.get(&key)
                                ),
                            );
                        }
                    }
                    disk_hits = store.stats().disk.map(|d| d.disk_hits).unwrap_or_default();
                    if disk_hits == 0 {
                        violate(
                            "durable-warm",
                            "verification campaign never hit the disk store — nothing \
                             survived the restart"
                                .to_string(),
                        );
                    }
                }
            }
        }
    }

    let _ = std::fs::remove_dir_all(&scratch);
    Ok(PointOutcome {
        crashed,
        acked_preserved: acked.len() as u64,
        disk_hits,
        violations,
    })
}

/// Runs one full drill invocation: generate the kill points, drill each,
/// check the schedule-independent ledger invariant, and (on violation,
/// when asked) minimize the first violating point's fault set.
///
/// # Errors
///
/// Only infrastructure failures (an unusable scratch directory, a broken
/// reference run, an unspawnable child) are errors; invariant violations
/// are *data*, reported on the [`DrillReport`].
pub fn run_drill(config: &DrillConfig) -> Result<DrillReport, BenchError> {
    let binary = match &config.binary {
        Some(path) => path.clone(),
        None => std::env::current_exe()
            .map_err(|e| BenchError::Io(format!("cannot locate the critic binary: {e}")))?,
    };
    let points = generate_points(config);
    let reference = reference_metrics(config)?;

    let mut violations = Vec::new();
    // The ledger invariant is schedule-independent: once per invocation.
    if let Err(e) = time_single_cell(drill_trace_len(config)) {
        violations.push(DrillViolation {
            point: 0,
            crash: points[0].crash,
            invariant: "ledger".to_string(),
            detail: e.to_string(),
        });
    }

    let mut crashed = 0;
    let mut clean = 0;
    let mut acked_preserved = 0;
    let mut disk_hits = 0;
    for (i, point) in points.iter().enumerate() {
        let outcome = run_point(config, &binary, &point.specs(), &reference)?;
        if outcome.crashed {
            crashed += 1;
        } else {
            clean += 1;
        }
        acked_preserved += outcome.acked_preserved;
        disk_hits += outcome.disk_hits;
        violations.extend(outcome.violations.into_iter().map(|(invariant, detail)| {
            DrillViolation {
                point: i,
                crash: point.crash,
                invariant,
                detail,
            }
        }));
    }

    let minimized = match violations.first() {
        Some(first) if config.minimize => {
            let invariant = first.invariant.clone();
            let point = &points[first.point];
            let entries: Vec<ScheduleEntry> = point
                .specs()
                .iter()
                .map(|s| ScheduleEntry::Sys(*s))
                .collect();
            let minimal = minimize_schedule(&entries, |subset| {
                let specs: Vec<SysFaultSpec> = subset
                    .iter()
                    .filter_map(|e| match e {
                        ScheduleEntry::Sys(s) => Some(*s),
                        ScheduleEntry::Data(_) => None,
                    })
                    .collect();
                run_point(config, &binary, &specs, &reference)
                    .map(|o| o.violations.iter().any(|(inv, _)| *inv == invariant))
                    .unwrap_or(false)
            });
            Some(
                minimal
                    .into_iter()
                    .filter_map(|e| match e {
                        ScheduleEntry::Sys(s) => Some(s),
                        ScheduleEntry::Data(_) => None,
                    })
                    .collect(),
            )
        }
        _ => None,
    };

    Ok(DrillReport {
        seed: config.seed,
        cells: DRILL_APPS * 2,
        points,
        crashed,
        clean,
        acked_preserved,
        disk_hits,
        violations,
        minimized,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn points_are_deterministic_and_sweep_every_op_class() {
        let config = DrillConfig {
            seed: 9,
            points: 13,
            ..DrillConfig::default()
        };
        let a = generate_points(&config);
        let b = generate_points(&config);
        assert_eq!(a, b);
        assert_eq!(a.len(), 13);
        for (i, point) in a.iter().enumerate() {
            let SysFault::Crash { op } = point.crash.fault else {
                panic!("point {i} is not a crash: {:?}", point.crash);
            };
            assert_eq!(op, SysOp::ALL[i % SysOp::ALL.len()]);
            assert_eq!(point.crash.at, (i / SysOp::ALL.len()) as u64);
            assert!(point.noise.len() <= 2);
            for noise in &point.noise {
                assert!(
                    !matches!(noise.fault, SysFault::Crash { .. } | SysFault::Kill),
                    "noise must be non-fatal: {:?}",
                    noise.fault
                );
            }
        }
    }

    #[test]
    fn sys_args_render_in_cli_syntax() {
        assert_eq!(
            sys_arg(&SysFaultSpec {
                fault: SysFault::Crash {
                    op: SysOp::JournalAppend
                },
                at: 4,
            }),
            "crash:journal-append@4"
        );
        assert_eq!(
            sys_arg(&SysFaultSpec {
                fault: SysFault::DiskCorrupt,
                at: 1,
            }),
            "disk-corrupt@1"
        );
        assert_eq!(
            sys_arg(&SysFaultSpec {
                fault: SysFault::AllocBudget { bytes: 64 },
                at: 0,
            }),
            "alloc-budget:64@0"
        );
    }
}
