//! The load generator behind `critic loadgen`: N concurrent clients
//! submitting a seeded app × scheme mix at an open-loop rate, reporting
//! latency percentiles, shed/reject counts, and degradation occupancy.
//!
//! Open-loop means each client sends on its own schedule (`rate` requests
//! per second from connect time) regardless of how fast the server
//! answers — the standard way to expose queueing collapse, since a
//! closed-loop client would politely slow down exactly when the server is
//! drowning. A client that falls behind its schedule sends immediately
//! without re-pacing.

use std::collections::HashMap;
use std::io::BufReader;
use std::net::{Shutdown, TcpStream};
use std::sync::{Arc, Mutex};
use std::thread;
use std::time::{Duration, Instant};

use critic_core::campaign::{CellMetrics, CellStatus};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::Serialize;

use crate::perf::BenchError;
use crate::serve::{parse_reply, Reply, SubmitBody, SubmitRequest};

/// One load-generation run's parameters.
#[derive(Debug, Clone)]
pub struct LoadgenConfig {
    /// Server addresses, `host:port`; client `i` connects to
    /// `addrs[i % addrs.len()]`, so one run can spread over a fleet.
    pub addrs: Vec<String>,
    /// Concurrent clients (each on its own connection).
    pub clients: usize,
    /// Submissions per client.
    pub requests_per_client: usize,
    /// Open-loop submissions per second per client; 0 sends flat-out.
    pub rate: f64,
    /// Per-request deadline forwarded to the server, if any.
    pub deadline_ms: Option<u64>,
    /// Seed for the app × scheme mix (client `i` derives `seed + i`).
    pub seed: u64,
    /// App-name pool for the mix.
    pub apps: Vec<String>,
    /// Scheme-name pool for the mix.
    pub schemes: Vec<String>,
    /// When non-empty, the mix draws whole (app, scheme) pairs from this
    /// pool instead of crossing `apps` × `schemes` — how the sharded soak
    /// replays exactly the cells it saw acked earlier.
    pub pairs: Vec<(String, String)>,
    /// Resubmissions allowed per request after a `rejected` reply. Each
    /// retry honours the server's `retry_after_ms` hint (a blind 10 ms
    /// pause when the hint is 0). 0 — the default, and what the
    /// accounting-exactness tests rely on — never retries.
    pub retries: u32,
    /// How long to wait for outstanding responses after the last send.
    pub drain_timeout: Duration,
}

impl LoadgenConfig {
    /// A small default mix against `addr`: 8 clients × 8 requests at
    /// 16/s over the first four Mobile apps and three schemes.
    pub fn new(addr: &str) -> LoadgenConfig {
        LoadgenConfig {
            addrs: vec![addr.to_string()],
            clients: 8,
            requests_per_client: 8,
            rate: 16.0,
            deadline_ms: None,
            seed: 0,
            apps: ["Acrobat", "Angrybirds", "Browser", "Facebook"]
                .into_iter()
                .map(String::from)
                .collect(),
            schemes: ["critic", "opp16", "hoist"]
                .into_iter()
                .map(String::from)
                .collect(),
            pairs: Vec::new(),
            retries: 0,
            drain_timeout: Duration::from_secs(120),
        }
    }
}

/// One acknowledged (`done`) cell, as the client observed it. The soak
/// compares this set against the journal after a `SIGKILL`: every entry
/// here must have survived.
#[derive(Debug, Clone, Serialize)]
pub struct AckedCell {
    /// The submission's correlation id.
    pub id: u64,
    /// App name as echoed in the record.
    pub app: String,
    /// Scheme name as echoed in the record.
    pub scheme: String,
    /// Terminal status.
    pub status: CellStatus,
    /// When the `done` arrived, milliseconds since the run started — what
    /// the sharded soak compares against its kill offset to know which
    /// acks predate the shard kill.
    pub acked_at_ms: u64,
    /// Degradation level of the record (0 when unreported).
    pub degraded: u8,
    /// The record's metrics, kept so two runs of the same mix can be
    /// compared bit-for-bit (the sharded soak's single-process oracle).
    pub metrics: Option<CellMetrics>,
}

/// Aggregated latency and outcome counters for one loadgen run,
/// serialised into `BENCH_pr7.json` and the soak report.
#[derive(Debug, Clone, Default, Serialize)]
pub struct LoadgenReport {
    /// Clients that ran.
    pub clients: usize,
    /// Submissions actually written to a socket.
    pub requests: u64,
    /// `accepted` replies observed.
    pub accepted: u64,
    /// `rejected` replies observed.
    pub rejected: u64,
    /// `done` replies observed.
    pub done: u64,
    /// `done` records with `Ok` status.
    pub ok: u64,
    /// `done` records with `Shed` status (open breaker).
    pub shed: u64,
    /// `done` records that failed, timed out, or panicked.
    pub failed: u64,
    /// Submissions with neither a `rejected` nor a `done` by the drain
    /// timeout (or before the connection was cut).
    pub unanswered: u64,
    /// Retries sent after waiting out a non-zero `retry_after_ms` hint.
    pub hinted_retries: u64,
    /// Retries sent after a blind pause because the hint was 0.
    pub blind_retries: u64,
    /// Clients that could not connect at all.
    pub connect_failures: u64,
    /// Median submit→done latency, milliseconds.
    pub p50_ms: f64,
    /// 99th-percentile latency, milliseconds.
    pub p99_ms: f64,
    /// 99.9th-percentile latency, milliseconds.
    pub p999_ms: f64,
    /// Worst observed latency, milliseconds.
    pub max_ms: f64,
    /// Mean `retry_after_ms` across rejections (0 when none).
    pub mean_retry_after_ms: f64,
    /// `done` records by degradation level 0..=3 — the ladder's occupancy
    /// under this load.
    pub degraded: [u64; 4],
}

/// What one run produced: the serialisable report plus the raw acked set
/// (kept out of the JSON; the soak consumes it directly).
#[derive(Debug, Clone, Default)]
pub struct LoadgenOutcome {
    /// The aggregated report.
    pub report: LoadgenReport,
    /// Every `done` the clients observed.
    pub acked: Vec<AckedCell>,
}

/// Per-client tallies merged into the final report.
#[derive(Default)]
struct ClientOutcome {
    requests: u64,
    accepted: u64,
    rejected: u64,
    retry_after_sum: u64,
    unanswered: u64,
    hinted_retries: u64,
    blind_retries: u64,
    connect_failed: bool,
    latencies_micros: Vec<u64>,
    acked: Vec<AckedCell>,
    degraded: [u64; 4],
    shed: u64,
    ok: u64,
    failed: u64,
}

/// One submission awaiting its terminal reply.
struct Pending {
    sent: Instant,
    body: SubmitBody,
    retries_left: u32,
}

/// One rejected submission waiting out its retry delay.
struct RetryItem {
    due: Instant,
    body: SubmitBody,
    retries_left: u32,
    hinted: bool,
}

/// Shared between one client's writer (pacing) side and reader thread.
#[derive(Default)]
struct ClientState {
    /// id -> in-flight submission, removed on a terminal reply.
    pending: HashMap<u64, Pending>,
    /// Rejected submissions scheduled for resend; the writer flushes the
    /// due ones between paced sends and during the drain wait.
    retries: Vec<RetryItem>,
}

fn percentile_ms(sorted_micros: &[u64], fraction: f64) -> f64 {
    if sorted_micros.is_empty() {
        return 0.0;
    }
    let rank = ((sorted_micros.len() as f64) * fraction).ceil() as usize;
    let index = rank.clamp(1, sorted_micros.len()) - 1;
    sorted_micros[index] as f64 / 1e3
}

/// Writes one submission line; false when the stream is gone.
fn send_submit(writer: &mut TcpStream, body: &SubmitBody) -> bool {
    let request = SubmitRequest {
        submit: body.clone(),
    };
    let Ok(json) = serde_json::to_string(&request) else {
        return false;
    };
    use std::io::Write;
    writer
        .write_all(json.as_bytes())
        .and_then(|()| writer.write_all(b"\n"))
        .and_then(|()| writer.flush())
        .is_ok()
}

/// Re-sends every retry whose delay has elapsed. Returns false when the
/// stream died mid-send (the writer stops sending then).
fn flush_due_retries(
    writer: &mut TcpStream,
    state: &Arc<Mutex<ClientState>>,
    outcome: &mut ClientOutcome,
) -> bool {
    loop {
        let now = Instant::now();
        let item = {
            let mut state = state
                .lock()
                .unwrap_or_else(std::sync::PoisonError::into_inner);
            let due = state.retries.iter().position(|r| r.due <= now);
            due.map(|index| state.retries.swap_remove(index))
        };
        let Some(item) = item else {
            return true;
        };
        let id = item.body.id;
        state
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .pending
            .insert(
                id,
                Pending {
                    sent: Instant::now(),
                    body: item.body.clone(),
                    retries_left: item.retries_left,
                },
            );
        if send_submit(writer, &item.body) {
            outcome.requests += 1;
            if item.hinted {
                outcome.hinted_retries += 1;
            } else {
                outcome.blind_retries += 1;
            }
        } else {
            state
                .lock()
                .unwrap_or_else(std::sync::PoisonError::into_inner)
                .pending
                .remove(&id);
            return false;
        }
    }
}

/// One client's full run: connect, pace `requests_per_client` submissions,
/// collect replies until everything is answered or the drain timeout
/// passes. `epoch` is the whole run's start instant, shared across clients
/// so ack timestamps are comparable.
fn run_client(config: &LoadgenConfig, client_index: usize, epoch: Instant) -> ClientOutcome {
    let mut outcome = ClientOutcome::default();
    let addr = &config.addrs[client_index % config.addrs.len()];
    // The server may still be mid-bind when the first client starts; a
    // short retry loop absorbs that without hiding a dead server.
    let mut stream = None;
    for _ in 0..50 {
        match TcpStream::connect(addr) {
            Ok(s) => {
                stream = Some(s);
                break;
            }
            Err(_) => thread::sleep(Duration::from_millis(20)),
        }
    }
    let Some(stream) = stream else {
        outcome.connect_failed = true;
        return outcome;
    };
    let Ok(read_half) = stream.try_clone() else {
        outcome.connect_failed = true;
        return outcome;
    };

    let state = Arc::new(Mutex::new(ClientState::default()));
    let results = Arc::new(Mutex::new(ClientOutcome::default()));
    let reader_state = Arc::clone(&state);
    let reader_results = Arc::clone(&results);
    let reader = thread::spawn(move || {
        use std::io::BufRead;
        let mut reader = BufReader::new(read_half);
        let mut line = String::new();
        loop {
            line.clear();
            match reader.read_line(&mut line) {
                Ok(0) | Err(_) => return,
                Ok(_) => {}
            }
            let Some(reply) = parse_reply(&line) else {
                continue;
            };
            let mut results = reader_results
                .lock()
                .unwrap_or_else(std::sync::PoisonError::into_inner);
            match reply {
                Reply::Accepted(_) => results.accepted += 1,
                Reply::Rejected(body) => {
                    results.rejected += 1;
                    results.retry_after_sum += body.retry_after_ms;
                    let mut state = reader_state
                        .lock()
                        .unwrap_or_else(std::sync::PoisonError::into_inner);
                    if let Some(pending) = state.pending.remove(&body.id) {
                        if pending.retries_left > 0 {
                            // Honour the server's hint; a zero hint means
                            // "don't retry as-is", so back off blindly and
                            // briefly instead of hammering.
                            let hinted = body.retry_after_ms > 0;
                            let delay = if hinted { body.retry_after_ms } else { 10 };
                            state.retries.push(RetryItem {
                                due: Instant::now() + Duration::from_millis(delay),
                                body: pending.body,
                                retries_left: pending.retries_left - 1,
                                hinted,
                            });
                        }
                    }
                }
                Reply::Done(body) => {
                    let sent = reader_state
                        .lock()
                        .unwrap_or_else(std::sync::PoisonError::into_inner)
                        .pending
                        .remove(&body.id);
                    if let Some(pending) = sent {
                        results
                            .latencies_micros
                            .push(pending.sent.elapsed().as_micros() as u64);
                    }
                    let level = body.record.degraded.unwrap_or(0).min(3) as usize;
                    results.degraded[level] += 1;
                    match body.record.status {
                        CellStatus::Ok => results.ok += 1,
                        CellStatus::Shed => results.shed += 1,
                        _ => results.failed += 1,
                    }
                    results.acked.push(AckedCell {
                        id: body.id,
                        app: body.record.app,
                        scheme: body.record.scheme,
                        status: body.record.status,
                        acked_at_ms: epoch.elapsed().as_millis() as u64,
                        degraded: body.record.degraded.unwrap_or(0),
                        metrics: body.record.metrics,
                    });
                }
                _ => {}
            }
        }
    });

    let mut rng = StdRng::seed_from_u64(config.seed.wrapping_add(client_index as u64));
    let mut writer = stream;
    let start = Instant::now();
    for k in 0..config.requests_per_client {
        if config.rate > 0.0 {
            let target = start + Duration::from_secs_f64(k as f64 / config.rate);
            let now = Instant::now();
            if now < target {
                thread::sleep(target - now);
            }
        }
        if !flush_due_retries(&mut writer, &state, &mut outcome) {
            break;
        }
        let (app, scheme) = if config.pairs.is_empty() {
            (
                config.apps[rng.gen_range(0..config.apps.len())].clone(),
                config.schemes[rng.gen_range(0..config.schemes.len())].clone(),
            )
        } else {
            config.pairs[rng.gen_range(0..config.pairs.len())].clone()
        };
        let id = (client_index as u64) * 1_000_000 + k as u64;
        let body = SubmitBody {
            id,
            app,
            scheme,
            deadline_ms: config.deadline_ms,
        };
        // Register before writing: the reply can beat the map update
        // otherwise.
        state
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .pending
            .insert(
                id,
                Pending {
                    sent: Instant::now(),
                    body: body.clone(),
                    retries_left: config.retries,
                },
            );
        if !send_submit(&mut writer, &body) {
            // Server gone (soak SIGKILL): stop sending; whatever is
            // pending becomes unanswered.
            state
                .lock()
                .unwrap_or_else(std::sync::PoisonError::into_inner)
                .pending
                .remove(&id);
            break;
        }
        outcome.requests += 1;
    }

    // Wait out the in-flight tail (flushing retries as their delays
    // elapse), then cut the stream to free the reader.
    let deadline = Instant::now() + config.drain_timeout;
    loop {
        if !flush_due_retries(&mut writer, &state, &mut outcome) {
            break;
        }
        let outstanding = {
            let state = state
                .lock()
                .unwrap_or_else(std::sync::PoisonError::into_inner);
            state.pending.len() + state.retries.len()
        };
        if outstanding == 0 || Instant::now() >= deadline || reader.is_finished() {
            break;
        }
        thread::sleep(Duration::from_millis(10));
    }
    let _ = writer.shutdown(Shutdown::Both);
    let _ = reader.join();

    let mut results = results
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner);
    outcome.accepted = results.accepted;
    outcome.rejected = results.rejected;
    outcome.retry_after_sum = results.retry_after_sum;
    outcome.latencies_micros = std::mem::take(&mut results.latencies_micros);
    outcome.acked = std::mem::take(&mut results.acked);
    outcome.degraded = results.degraded;
    outcome.shed = results.shed;
    outcome.ok = results.ok;
    outcome.failed = results.failed;
    outcome.unanswered = state
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner)
        .pending
        .len() as u64;
    outcome
}

/// Runs the full mix: `clients` threads, each its own connection, pacing
/// and collecting independently; merges the tallies.
///
/// # Errors
///
/// Returns [`BenchError::Io`] only when the configuration is unusable
/// (no apps/schemes in the mix); connection failures are counted in the
/// report instead, because the soak *expects* them mid-kill.
pub fn run_loadgen(config: &LoadgenConfig) -> Result<LoadgenOutcome, BenchError> {
    if config.pairs.is_empty() && (config.apps.is_empty() || config.schemes.is_empty()) {
        return Err(BenchError::Io(
            "loadgen needs at least one app and one scheme in the mix".to_string(),
        ));
    }
    if config.addrs.is_empty() {
        return Err(BenchError::Io(
            "loadgen needs at least one server address".to_string(),
        ));
    }
    let epoch = Instant::now();
    let outcomes: Vec<ClientOutcome> = thread::scope(|scope| {
        let handles: Vec<_> = (0..config.clients.max(1))
            .map(|i| scope.spawn(move || run_client(config, i, epoch)))
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().unwrap_or_default())
            .collect()
    });

    let mut report = LoadgenReport {
        clients: config.clients.max(1),
        ..LoadgenReport::default()
    };
    let mut all_latencies = Vec::new();
    let mut acked = Vec::new();
    for mut outcome in outcomes {
        report.requests += outcome.requests;
        report.accepted += outcome.accepted;
        report.rejected += outcome.rejected;
        report.ok += outcome.ok;
        report.shed += outcome.shed;
        report.failed += outcome.failed;
        report.unanswered += outcome.unanswered;
        report.hinted_retries += outcome.hinted_retries;
        report.blind_retries += outcome.blind_retries;
        report.connect_failures += u64::from(outcome.connect_failed);
        report.mean_retry_after_ms += outcome.retry_after_sum as f64;
        for (level, count) in outcome.degraded.iter().enumerate() {
            report.degraded[level] += count;
        }
        all_latencies.append(&mut outcome.latencies_micros);
        acked.append(&mut outcome.acked);
    }
    report.done = acked.len() as u64;
    report.mean_retry_after_ms = if report.rejected > 0 {
        report.mean_retry_after_ms / report.rejected as f64
    } else {
        0.0
    };
    all_latencies.sort_unstable();
    report.p50_ms = percentile_ms(&all_latencies, 0.50);
    report.p99_ms = percentile_ms(&all_latencies, 0.99);
    report.p999_ms = percentile_ms(&all_latencies, 0.999);
    report.max_ms = all_latencies.last().copied().unwrap_or(0) as f64 / 1e3;
    Ok(LoadgenOutcome { report, acked })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn percentiles_use_nearest_rank() {
        let micros: Vec<u64> = (1..=1000).map(|n| n * 1000).collect();
        assert_eq!(percentile_ms(&micros, 0.50), 500.0);
        assert_eq!(percentile_ms(&micros, 0.99), 990.0);
        assert_eq!(percentile_ms(&micros, 0.999), 999.0);
        assert_eq!(percentile_ms(&[], 0.5), 0.0);
        assert_eq!(percentile_ms(&[7_000], 0.999), 7.0);
    }

    #[test]
    fn loadgen_against_nothing_counts_connect_failures() {
        // Port 1 is essentially never listening; every client must fail
        // to connect and the report must say so rather than error out.
        let mut config = LoadgenConfig::new("127.0.0.1:1");
        config.clients = 2;
        config.requests_per_client = 1;
        config.drain_timeout = Duration::from_millis(50);
        let outcome = run_loadgen(&config).expect("report, not error");
        assert_eq!(outcome.report.connect_failures, 2);
        assert_eq!(outcome.report.done, 0);
    }

    #[test]
    fn mix_is_deterministic_per_seed() {
        let config = LoadgenConfig::new("127.0.0.1:1");
        let mut a = StdRng::seed_from_u64(config.seed.wrapping_add(3));
        let mut b = StdRng::seed_from_u64(config.seed.wrapping_add(3));
        for _ in 0..32 {
            assert_eq!(
                a.gen_range(0..config.apps.len()),
                b.gen_range(0..config.apps.len())
            );
        }
    }
}
