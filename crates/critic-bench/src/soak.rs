//! The service soak behind `critic soak`: a supervised `critic serve`
//! child under open-loop load and systemic-fault noise, killed with
//! `SIGKILL` mid-load, restarted, overloaded, and drained — with the
//! service-robustness invariants checked at every boundary.
//!
//! The invariants:
//!
//! * **no-lost-ack** — every `done` a client observed before the kill is
//!   present in the journal when the dead server's state is replayed
//!   (ack follows fsync, so a `SIGKILL` can never eat an acknowledged
//!   cell);
//! * **journal-resumable** — the journal replays cleanly after the kill
//!   (a torn tail is truncated, never fatal) and again after the drain;
//! * **bounded-queue** — under 2× overload the server's queue depth,
//!   sampled continuously, never exceeds the configured capacity: load is
//!   shed at admission instead of buffered without bound;
//! * **overload-sheds** — the overload phase produces explicit
//!   rejections carrying non-zero `retry_after_ms` hints (and the clean
//!   phases leave nothing unanswered);
//! * **graceful-drain** — a `shutdown` request drains the server and the
//!   child exits with code 9;
//! * **durable-warm** — the restarted server serves artifacts from disk
//!   (non-zero disk hits), not by re-simulating from scratch.

use std::collections::BTreeSet;
use std::io::{BufRead, BufReader};
use std::net::TcpStream;
use std::path::PathBuf;
use std::process::{Child, Command, Stdio};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread;
use std::time::Duration;

use critic_core::journal::Journal;
use critic_obs::Telemetry;
use serde::Serialize;

use crate::loadgen::{run_loadgen, AckedCell, LoadgenConfig, LoadgenReport};
use crate::perf::BenchError;
use crate::serve::{request_reply, Reply, ServeStats, StatsRequest};

/// One soak invocation's parameters.
#[derive(Debug, Clone)]
pub struct SoakConfig {
    /// Approximate seconds of pre-kill load (the kill lands mid-way).
    pub seconds: u64,
    /// Concurrent loadgen clients.
    pub clients: usize,
    /// Open-loop submissions per second per client.
    pub rate: f64,
    /// `SIGKILL` the server mid-load and restart it (on by default; off
    /// turns the soak into a plain sustained-load run).
    pub kill: bool,
    /// `--sys NAME[:PARAM]@AT` specs forwarded to the server child as
    /// fault noise.
    pub sys: Vec<String>,
    /// Shrink everything for CI smoke and tests.
    pub smoke: bool,
    /// Seed for the loadgen mix.
    pub seed: u64,
    /// The `critic` binary to spawn the server from; defaults to the
    /// current executable (`critic soak` spawns `critic serve`).
    pub binary: Option<PathBuf>,
}

impl Default for SoakConfig {
    fn default() -> SoakConfig {
        SoakConfig {
            seconds: 30,
            clients: 8,
            rate: 4.0,
            kill: true,
            sys: Vec::new(),
            smoke: false,
            seed: 0,
            binary: None,
        }
    }
}

/// One broken soak invariant.
#[derive(Debug, Clone, Serialize)]
pub struct SoakViolation {
    /// Which invariant (`no-lost-ack`, `bounded-queue`, ...).
    pub invariant: String,
    /// What happened.
    pub detail: String,
}

/// The full soak report, serialised as JSON on violation and uploaded as
/// the CI latency artifact.
#[derive(Debug, Clone, Default, Serialize)]
pub struct SoakReport {
    /// Every broken invariant (empty = pass).
    pub violations: Vec<SoakViolation>,
    /// Whether the mid-load `SIGKILL` was delivered.
    pub killed: bool,
    /// `done` replies clients observed before the kill.
    pub acked_before_kill: u64,
    /// Of those, distinct (app, scheme) cells found in the journal after
    /// the kill.
    pub acked_preserved: u64,
    /// Persistent-store disk hits reported by the restarted server after
    /// the warm phase.
    pub disk_hits_after_restart: u64,
    /// Highest queue depth sampled during the overload burst.
    pub peak_queue_depth: u64,
    /// The configured queue capacity the bound is checked against.
    pub queue_capacity: u64,
    /// The restarted server's exit code after the graceful drain.
    pub server_exit_code: Option<i32>,
    /// Pre-kill load phase.
    pub phase_load: LoadgenReport,
    /// Post-restart warm phase.
    pub phase_warm: LoadgenReport,
    /// 2× overload burst against the restarted server.
    pub phase_overload: LoadgenReport,
}

impl SoakReport {
    /// Did every invariant hold?
    pub fn ok(&self) -> bool {
        self.violations.is_empty()
    }
}

/// Everything the soak derives from its config.
struct SoakPlan {
    trace_len: usize,
    workers: usize,
    queue_capacity: u64,
    admission_rate: u64,
    admission_burst: u64,
    requests_per_client: usize,
    kill_after: Duration,
    overload_clients: usize,
    overload_rate: f64,
    overload_requests: usize,
}

fn plan(config: &SoakConfig) -> SoakPlan {
    let seconds = config.seconds.max(2);
    let requests_per_client = ((seconds as f64 * config.rate).ceil() as usize).max(2);
    // Admission sized so the normal phases pass and the overload phase —
    // 2x the token rate — must be refused.
    let admission_rate = ((config.clients as f64 * config.rate) as u64).max(4) * 2;
    SoakPlan {
        trace_len: if config.smoke { 2_000 } else { 4_000 },
        workers: if config.smoke { 2 } else { 4 },
        queue_capacity: 64,
        admission_rate,
        admission_burst: admission_rate,
        requests_per_client,
        kill_after: Duration::from_secs(seconds / 2),
        overload_clients: config.clients.max(2),
        overload_rate: (admission_rate as f64 * 2.0) / config.clients.max(2) as f64,
        overload_requests: (admission_rate as usize * 3).clamp(16, 512),
    }
}

/// A spawned `critic serve` child plus the address it printed.
struct Server {
    child: Child,
    addr: String,
}

fn spawn_server(
    binary: &std::path::Path,
    config: &SoakConfig,
    plan: &SoakPlan,
    journal: &std::path::Path,
    store_dir: &std::path::Path,
    run_tag: u64,
    with_sys: bool,
) -> Result<Server, BenchError> {
    let mut cmd = Command::new(binary);
    cmd.args([
        "serve",
        "--port",
        "0",
        "--trace-len",
        &plan.trace_len.to_string(),
        "--workers",
        &plan.workers.to_string(),
        "--queue",
        &plan.queue_capacity.to_string(),
        "--rate",
        &plan.admission_rate.to_string(),
        "--burst",
        &plan.admission_burst.to_string(),
        "--run-tag",
        &run_tag.to_string(),
        "--stats",
    ]);
    cmd.arg("--journal").arg(journal);
    cmd.arg("--store-dir").arg(store_dir);
    if with_sys {
        for spec in &config.sys {
            cmd.arg("--sys").arg(spec);
        }
    }
    cmd.stdout(Stdio::piped());
    cmd.stderr(Stdio::null());
    let mut child = cmd
        .spawn()
        .map_err(|e| BenchError::Io(format!("cannot spawn serve child: {e}")))?;
    let stdout = child
        .stdout
        .take()
        .ok_or_else(|| BenchError::Io("serve child has no stdout".to_string()))?;
    let mut reader = BufReader::new(stdout);
    let mut line = String::new();
    reader
        .read_line(&mut line)
        .map_err(|e| BenchError::Io(format!("cannot read serve child banner: {e}")))?;
    let addr = line
        .trim()
        .strip_prefix("listening on ")
        .map(str::to_string)
        .ok_or_else(|| {
            let _ = child.kill();
            BenchError::Io(format!("unexpected serve banner: `{}`", line.trim()))
        })?;
    // Keep draining the child's stdout so it can never block on a full
    // pipe; the banner was the only line the soak needs.
    thread::spawn(move || {
        let mut sink = String::new();
        while matches!(reader.read_line(&mut sink), Ok(n) if n > 0) {
            sink.clear();
        }
    });
    Ok(Server { child, addr })
}

/// Polls `{"stats":true}` on its own connection every few milliseconds
/// until `stop`, tracking the highest queue depth seen.
fn spawn_queue_monitor(
    addr: String,
    stop: Arc<AtomicBool>,
    peak: Arc<AtomicU64>,
) -> thread::JoinHandle<()> {
    thread::spawn(move || {
        let Ok(mut stream) = TcpStream::connect(&addr) else {
            return;
        };
        let Ok(read_half) = stream.try_clone() else {
            return;
        };
        let mut reader = BufReader::new(read_half);
        while !stop.load(Ordering::SeqCst) {
            let reply = request_reply(
                &mut stream,
                &mut reader,
                &StatsRequest { stats: true },
                |r| matches!(r, Reply::Stats(_)),
                |_| {},
            );
            match reply {
                Ok(Reply::Stats(stats)) => {
                    peak.fetch_max(stats.queue_depth, Ordering::SeqCst);
                }
                _ => return,
            }
            thread::sleep(Duration::from_millis(10));
        }
    })
}

/// One stats exchange on a fresh connection.
fn fetch_stats(addr: &str) -> Result<ServeStats, BenchError> {
    let mut stream = TcpStream::connect(addr)
        .map_err(|e| BenchError::Io(format!("cannot connect for stats: {e}")))?;
    let read_half = stream
        .try_clone()
        .map_err(|e| BenchError::Io(e.to_string()))?;
    let mut reader = BufReader::new(read_half);
    match request_reply(
        &mut stream,
        &mut reader,
        &StatsRequest { stats: true },
        |r| matches!(r, Reply::Stats(_)),
        |_| {},
    ) {
        Ok(Reply::Stats(stats)) => Ok(stats),
        Ok(_) | Err(_) => Err(BenchError::Io("stats exchange failed".to_string())),
    }
}

/// Asks the server to drain via the wire protocol.
fn send_shutdown(addr: &str) {
    let Ok(mut stream) = TcpStream::connect(addr) else {
        return;
    };
    let Ok(read_half) = stream.try_clone() else {
        return;
    };
    let mut reader = BufReader::new(read_half);
    let _ = request_reply(
        &mut stream,
        &mut reader,
        &crate::serve::ShutdownRequest { shutdown: true },
        |r| matches!(r, Reply::Draining),
        |_| {},
    );
}

/// Checks no-lost-ack: every distinct (app, scheme) among `acked` must
/// still be present when the journal replays.
fn check_acked_against_journal(
    journal: &std::path::Path,
    acked: &[AckedCell],
    violations: &mut Vec<SoakViolation>,
) -> u64 {
    let keys: BTreeSet<(String, String)> = acked
        .iter()
        .map(|a| (a.app.clone(), a.scheme.clone()))
        .collect();
    match Journal::replay(journal, &Telemetry::off()) {
        Ok(replayed) => {
            let present: BTreeSet<(String, String)> = replayed
                .records
                .iter()
                .map(|r| (r.app.clone(), r.scheme.clone()))
                .collect();
            let mut preserved = 0u64;
            for key in &keys {
                if present.contains(key) {
                    preserved += 1;
                } else {
                    violations.push(SoakViolation {
                        invariant: "no-lost-ack".to_string(),
                        detail: format!(
                            "cell {}:{} was acknowledged to a client but is \
                             missing from the journal",
                            key.0, key.1
                        ),
                    });
                }
            }
            preserved
        }
        Err(e) => {
            violations.push(SoakViolation {
                invariant: "journal-resumable".to_string(),
                detail: format!("journal replay failed: {e}"),
            });
            0
        }
    }
}

/// Runs the full soak: load → `SIGKILL` → no-lost-ack audit → restart →
/// warm load → 2× overload under a queue monitor → graceful drain.
///
/// # Errors
///
/// Harness failures (unspawnable child, unusable scratch dir) are
/// [`BenchError::Io`]; *invariant* violations are not errors — they are
/// collected in the report for the caller to turn into exit code 12.
pub fn run_soak(config: &SoakConfig) -> Result<SoakReport, BenchError> {
    let binary = match &config.binary {
        Some(path) => path.clone(),
        None => std::env::current_exe()
            .map_err(|e| BenchError::Io(format!("cannot locate own binary: {e}")))?,
    };
    let plan = plan(config);
    let scratch = std::env::temp_dir().join(format!("critic_soak_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&scratch);
    std::fs::create_dir_all(&scratch)
        .map_err(|e| BenchError::Io(format!("cannot create {}: {e}", scratch.display())))?;
    let journal = scratch.join("serve.jsonl");
    let store_dir = scratch.join("store");

    let mut report = SoakReport {
        queue_capacity: plan.queue_capacity,
        ..SoakReport::default()
    };

    // Phase 1: load, killed mid-way.
    let server = spawn_server(&binary, config, &plan, &journal, &store_dir, 0, true)?;
    let mut child = server.child;
    let addr = server.addr;
    let mut load_config = LoadgenConfig::new(&addr);
    load_config.clients = config.clients;
    load_config.requests_per_client = plan.requests_per_client;
    load_config.rate = config.rate;
    load_config.seed = config.seed;
    load_config.drain_timeout = Duration::from_secs(config.seconds.max(10) * 2);
    let load_outcome = if config.kill {
        let kill_after = plan.kill_after;
        let (outcome, killed) = thread::scope(|scope| {
            let load_config = &load_config;
            let loadgen = scope.spawn(move || run_loadgen(load_config));
            thread::sleep(kill_after);
            let killed = child.kill().is_ok();
            let _ = child.wait();
            (loadgen.join(), killed)
        });
        report.killed = killed;
        outcome
            .map_err(|_| BenchError::Io("loadgen thread panicked".to_string()))?
            .unwrap_or_default()
    } else {
        let outcome = run_loadgen(&load_config)?;
        send_shutdown(&addr);
        report.server_exit_code = child.wait().ok().and_then(|s| s.code());
        outcome
    };
    report.acked_before_kill = load_outcome.acked.len() as u64;
    report.phase_load = load_outcome.report.clone();
    if config.kill && report.acked_before_kill == 0 {
        report.violations.push(SoakViolation {
            invariant: "kill-mid-load".to_string(),
            detail: "the SIGKILL landed before any cell was acknowledged; \
                     the no-lost-ack check would be vacuous"
                .to_string(),
        });
    }

    // Between kill and restart: the dead server's journal must replay and
    // contain every acknowledged cell.
    report.acked_preserved =
        check_acked_against_journal(&journal, &load_outcome.acked, &mut report.violations);

    if !config.kill {
        let _ = std::fs::remove_dir_all(&scratch);
        return Ok(report);
    }

    // Restart (run tag 1, no fault noise) and warm the store back up with
    // the same mix: the disk tier must serve it.
    let server = spawn_server(&binary, config, &plan, &journal, &store_dir, 1, false)?;
    let mut child = server.child;
    let addr = server.addr;
    let mut warm_config = load_config.clone();
    warm_config.addrs = vec![addr.clone()];
    warm_config.requests_per_client = (plan.requests_per_client / 2).max(2);
    let warm_outcome = run_loadgen(&warm_config)?;
    report.phase_warm = warm_outcome.report.clone();
    if report.phase_warm.unanswered > 0 {
        report.violations.push(SoakViolation {
            invariant: "accounting".to_string(),
            detail: format!(
                "{} warm-phase submissions got neither a rejection nor a result",
                report.phase_warm.unanswered
            ),
        });
    }
    match fetch_stats(&addr) {
        Ok(stats) => {
            report.disk_hits_after_restart = stats.disk_hits;
            if stats.disk_hits == 0 {
                report.violations.push(SoakViolation {
                    invariant: "durable-warm".to_string(),
                    detail: "the restarted server reported zero disk hits; the \
                             persistent store served nothing"
                        .to_string(),
                });
            }
        }
        Err(e) => report.violations.push(SoakViolation {
            invariant: "durable-warm".to_string(),
            detail: format!("cannot fetch stats from the restarted server: {e}"),
        }),
    }

    // 2x overload under a continuous queue monitor: the queue must stay
    // bounded and the excess must be rejected with retry hints.
    let stop = Arc::new(AtomicBool::new(false));
    let peak = Arc::new(AtomicU64::new(0));
    let monitor = spawn_queue_monitor(addr.clone(), Arc::clone(&stop), Arc::clone(&peak));
    let mut overload_config = load_config.clone();
    overload_config.addrs = vec![addr.clone()];
    overload_config.clients = plan.overload_clients;
    overload_config.rate = plan.overload_rate;
    overload_config.requests_per_client = plan.overload_requests / plan.overload_clients.max(1);
    overload_config.seed = config.seed.wrapping_add(1);
    let overload_outcome = run_loadgen(&overload_config)?;
    stop.store(true, Ordering::SeqCst);
    let _ = monitor.join();
    report.phase_overload = overload_outcome.report.clone();
    report.peak_queue_depth = peak.load(Ordering::SeqCst);
    if report.peak_queue_depth > plan.queue_capacity {
        report.violations.push(SoakViolation {
            invariant: "bounded-queue".to_string(),
            detail: format!(
                "queue depth reached {} against a capacity of {}",
                report.peak_queue_depth, plan.queue_capacity
            ),
        });
    }
    if report.phase_overload.rejected == 0 {
        report.violations.push(SoakViolation {
            invariant: "overload-sheds".to_string(),
            detail: "2x overload produced zero rejections; admission control \
                     is not engaging"
                .to_string(),
        });
    } else if report.phase_overload.mean_retry_after_ms <= 0.0 {
        report.violations.push(SoakViolation {
            invariant: "overload-sheds".to_string(),
            detail: "rejections carried no retry_after hint".to_string(),
        });
    }
    if report.phase_overload.unanswered > 0 {
        report.violations.push(SoakViolation {
            invariant: "accounting".to_string(),
            detail: format!(
                "{} overload submissions got neither a rejection nor a result",
                report.phase_overload.unanswered
            ),
        });
    }

    // Graceful drain: the wire shutdown must end in exit code 9.
    send_shutdown(&addr);
    let status = child
        .wait()
        .map_err(|e| BenchError::Io(format!("cannot wait for serve child: {e}")))?;
    report.server_exit_code = status.code();
    if status.code() != Some(9) {
        report.violations.push(SoakViolation {
            invariant: "graceful-drain".to_string(),
            detail: format!(
                "expected exit code 9 after a graceful drain, got {:?}",
                status.code()
            ),
        });
    }

    // And the journal written across both lives still replays.
    if let Err(e) = Journal::replay(&journal, &Telemetry::off()) {
        report.violations.push(SoakViolation {
            invariant: "journal-resumable".to_string(),
            detail: format!("journal replay after the drain failed: {e}"),
        });
    }

    let _ = std::fs::remove_dir_all(&scratch);
    Ok(report)
}

// ---------------------------------------------------------------------------
// Sharded soak: kill one of N shards behind `critic router` mid-load.
// ---------------------------------------------------------------------------

/// One sharded-soak invocation's parameters (`critic soak --shards N`).
#[derive(Debug, Clone)]
pub struct ShardedSoakConfig {
    /// Approximate seconds of pre-kill load (the kill lands mid-way).
    pub seconds: u64,
    /// Concurrent loadgen clients.
    pub clients: usize,
    /// Open-loop submissions per second per client.
    pub rate: f64,
    /// Shard fleet size behind the router.
    pub shards: u32,
    /// Shrink everything for CI smoke and tests.
    pub smoke: bool,
    /// Seed for the loadgen mix.
    pub seed: u64,
    /// The `critic` binary to spawn the router (and, transitively, the
    /// shards) from; defaults to the current executable.
    pub binary: Option<PathBuf>,
    /// Failover p99 ceiling, milliseconds: the pre-kill load phase spans
    /// the kill, so its p99 *is* the failover p99.
    pub max_p99_ms: Option<f64>,
}

impl Default for ShardedSoakConfig {
    fn default() -> ShardedSoakConfig {
        ShardedSoakConfig {
            seconds: 30,
            clients: 6,
            rate: 4.0,
            shards: 3,
            smoke: false,
            seed: 0,
            binary: None,
            max_p99_ms: None,
        }
    }
}

/// The sharded-soak report; violations turn into exit code 13.
#[derive(Debug, Clone, Default, Serialize)]
pub struct ShardedSoakReport {
    /// Every broken invariant (empty = pass).
    pub violations: Vec<SoakViolation>,
    /// Which shard was `SIGKILL`ed.
    pub killed_shard: Option<u32>,
    /// `done` replies clients observed strictly before the kill.
    pub acked_before_kill: u64,
    /// Of those, distinct (app, scheme) cells found across the shard
    /// journals afterwards.
    pub acked_preserved: u64,
    /// Artifacts the killed shard pulled from peers on restart (the
    /// disk-warm gate: must be > 0).
    pub fetched_artifacts: u64,
    /// Profiles + baselines built from scratch during the warm phase,
    /// summed over the fleet (the zero-re-simulation gate: must be 0).
    pub resimulated: u64,
    /// Router-counted shard restarts (must be ≥ 1).
    pub restarts: u64,
    /// Router-counted in-flight redispatches after the kill.
    pub redispatched: u64,
    /// p99 of the phase spanning the kill, milliseconds.
    pub failover_p99_ms: f64,
    /// (app, scheme) cells whose warm-phase metrics differed from the
    /// single-process oracle run (must be 0).
    pub oracle_mismatches: u64,
    /// Cells compared against the oracle.
    pub oracle_compared: u64,
    /// The router's exit code after the graceful drain (must be 9).
    pub router_exit_code: Option<i32>,
    /// Load phase spanning the kill.
    pub phase_load: LoadgenReport,
    /// Post-restore warm phase (replays the pre-kill acked mix).
    pub phase_warm: LoadgenReport,
    /// The single-process oracle run of the same mix.
    pub phase_single: LoadgenReport,
}

impl ShardedSoakReport {
    /// Did every invariant hold?
    pub fn ok(&self) -> bool {
        self.violations.is_empty()
    }
}

/// Spawns a long-lived `critic` child (router or single oracle serve) and
/// returns it with the address from its banner.
fn spawn_banner_child(binary: &std::path::Path, args: &[String]) -> Result<Server, BenchError> {
    let mut cmd = Command::new(binary);
    cmd.args(args);
    cmd.stdin(Stdio::null());
    cmd.stdout(Stdio::piped());
    cmd.stderr(Stdio::null());
    let mut child = cmd
        .spawn()
        .map_err(|e| BenchError::Io(format!("cannot spawn child: {e}")))?;
    let stdout = child
        .stdout
        .take()
        .ok_or_else(|| BenchError::Io("child has no stdout".to_string()))?;
    let mut reader = BufReader::new(stdout);
    let mut line = String::new();
    let addr = loop {
        line.clear();
        let n = reader
            .read_line(&mut line)
            .map_err(|e| BenchError::Io(format!("cannot read child banner: {e}")))?;
        if n == 0 {
            let _ = child.kill();
            let _ = child.wait();
            return Err(BenchError::Io("child exited before its banner".to_string()));
        }
        if let Some(rest) = line.trim().strip_prefix("listening on ") {
            break rest.to_string();
        }
    };
    thread::spawn(move || {
        let mut sink = String::new();
        while matches!(reader.read_line(&mut sink), Ok(n) if n > 0) {
            sink.clear();
        }
    });
    Ok(Server { child, addr })
}

/// No-lost-ack across a fleet: every distinct (app, scheme) among `acked`
/// must be present in the union of the shard journals.
fn check_acked_against_journals(
    journals: &[PathBuf],
    acked: &[AckedCell],
    violations: &mut Vec<SoakViolation>,
) -> u64 {
    let keys: BTreeSet<(String, String)> = acked
        .iter()
        .map(|a| (a.app.clone(), a.scheme.clone()))
        .collect();
    let mut present: BTreeSet<(String, String)> = BTreeSet::new();
    for journal in journals {
        if !journal.exists() {
            continue;
        }
        match Journal::replay(journal, &Telemetry::off()) {
            Ok(replayed) => {
                for record in &replayed.records {
                    present.insert((record.app.clone(), record.scheme.clone()));
                }
            }
            Err(e) => violations.push(SoakViolation {
                invariant: "journal-resumable".to_string(),
                detail: format!("{} replay failed: {e}", journal.display()),
            }),
        }
    }
    let mut preserved = 0u64;
    for key in &keys {
        if present.contains(key) {
            preserved += 1;
        } else {
            violations.push(SoakViolation {
                invariant: "no-lost-ack".to_string(),
                detail: format!(
                    "cell {}:{} was acknowledged to a client but is missing \
                     from every shard journal",
                    key.0, key.1
                ),
            });
        }
    }
    preserved
}

/// Sum of persistent-store saves over every live shard — the fleet's
/// from-scratch build counter. (`profiles_built` would over-count: the
/// in-memory memo counts disk-warm loads as closure runs, so a freshly
/// restarted shard serving from disk would look like it re-simulated.
/// A save only happens on a genuine from-scratch build.)
fn fleet_builds(stats: &crate::router::RouterStats) -> u64 {
    stats
        .shards
        .iter()
        .filter_map(|row| row.addr.as_deref())
        .filter_map(|addr| fetch_stats(addr).ok())
        .map(|s| s.disk_saves)
        .sum()
}

/// Runs the kill-one-of-N sharded soak: load through the router →
/// `SIGKILL` one shard mid-load → router reroutes and restarts it with
/// peer rebuild → audit no-lost-ack across shard journals, disk-warm via
/// `fetched_artifacts`, zero re-simulation on a warm replay, bit-identical
/// metrics against a single-process oracle, and a graceful fleet drain.
///
/// # Errors
///
/// Harness failures are [`BenchError::Io`]; invariant violations go into
/// the report for the caller to turn into exit code 13.
pub fn run_sharded_soak(config: &ShardedSoakConfig) -> Result<ShardedSoakReport, BenchError> {
    let binary = match &config.binary {
        Some(path) => path.clone(),
        None => std::env::current_exe()
            .map_err(|e| BenchError::Io(format!("cannot locate own binary: {e}")))?,
    };
    let seconds = config.seconds.max(4);
    let trace_len = if config.smoke { 2_000 } else { 4_000 };
    let workers = if config.smoke { 2 } else { 4 };
    let admission_rate = ((config.clients as f64 * config.rate) as u64).max(4) * 2;
    let scratch = std::env::temp_dir().join(format!("critic_shard_soak_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&scratch);
    std::fs::create_dir_all(&scratch)
        .map_err(|e| BenchError::Io(format!("cannot create {}: {e}", scratch.display())))?;
    let journal_dir = scratch.join("journals");
    let store_dir = scratch.join("stores");

    let mut report = ShardedSoakReport::default();

    // Boot the fleet.
    let router_args: Vec<String> = [
        "router",
        "--port",
        "0",
        "--shards",
        &config.shards.to_string(),
        "--heartbeat-ms",
        "50",
        "--trace-len",
        &trace_len.to_string(),
        "--workers",
        &workers.to_string(),
        "--queue",
        "64",
        "--rate",
        &admission_rate.to_string(),
        "--burst",
        &admission_rate.to_string(),
        "--stats",
    ]
    .into_iter()
    .map(String::from)
    .chain([
        "--journal-dir".to_string(),
        journal_dir.to_string_lossy().into_owned(),
        "--store-dir".to_string(),
        store_dir.to_string_lossy().into_owned(),
    ])
    .collect();
    let router = spawn_banner_child(&binary, &router_args)?;
    let mut router_child = router.child;
    let router_addr = router.addr;

    // Phase 1: load through the router, one shard SIGKILLed mid-way.
    let mut load_config = LoadgenConfig::new(&router_addr);
    load_config.clients = config.clients;
    load_config.requests_per_client = ((seconds as f64 * config.rate).ceil() as usize).max(4);
    load_config.rate = config.rate;
    load_config.seed = config.seed;
    load_config.retries = 3;
    load_config.drain_timeout = Duration::from_secs(seconds.max(10) * 2);
    let kill_after = Duration::from_secs(seconds / 2);
    let phase_start = std::time::Instant::now();
    let killed: Arc<std::sync::Mutex<Option<(u32, u64)>>> = Arc::new(std::sync::Mutex::new(None));
    let load_outcome = {
        let killed = Arc::clone(&killed);
        let router_addr = router_addr.clone();
        thread::scope(|scope| {
            let load_config = &load_config;
            let loadgen = scope.spawn(move || run_loadgen(load_config));
            thread::sleep(kill_after);
            if let Ok(stats) = crate::router::fetch_router_stats(&router_addr) {
                if let Some(row) = stats.shards.iter().find(|r| r.up && r.pid.is_some()) {
                    let pid = row.pid.unwrap_or_default();
                    // std::process cannot signal an arbitrary pid; /bin/kill
                    // delivers the SIGKILL the soak is about.
                    let delivered = Command::new("/bin/kill")
                        .args(["-9", &pid.to_string()])
                        .status()
                        .map(|s| s.success())
                        .unwrap_or(false);
                    if delivered {
                        *killed
                            .lock()
                            .unwrap_or_else(std::sync::PoisonError::into_inner) =
                            Some((row.shard, phase_start.elapsed().as_millis() as u64));
                    }
                }
            }
            loadgen.join()
        })
        .map_err(|_| BenchError::Io("loadgen thread panicked".to_string()))?
        .unwrap_or_default()
    };
    let killed = killed
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner)
        .take();
    report.phase_load = load_outcome.report.clone();
    report.failover_p99_ms = report.phase_load.p99_ms;
    let Some((killed_shard, kill_offset_ms)) = killed else {
        report.violations.push(SoakViolation {
            invariant: "kill-mid-load".to_string(),
            detail: "could not SIGKILL a shard mid-load".to_string(),
        });
        send_shutdown(&router_addr);
        let _ = router_child.wait();
        let _ = std::fs::remove_dir_all(&scratch);
        return Ok(report);
    };
    report.killed_shard = Some(killed_shard);

    // Only acks that landed comfortably before the kill are known to have
    // completed while every shard was up; the 250 ms margin absorbs the
    // clock skew between the soak's phase timer and loadgen's epoch.
    let acked_before_kill: Vec<AckedCell> = load_outcome
        .acked
        .iter()
        .filter(|a| a.acked_at_ms + 250 < kill_offset_ms)
        .cloned()
        .collect();
    report.acked_before_kill = acked_before_kill.len() as u64;
    if report.acked_before_kill == 0 {
        report.violations.push(SoakViolation {
            invariant: "kill-mid-load".to_string(),
            detail: "the SIGKILL landed before any cell was acknowledged; \
                     the no-lost-ack check would be vacuous"
                .to_string(),
        });
    }
    if report.phase_load.unanswered > 0 {
        report.violations.push(SoakViolation {
            invariant: "accounting".to_string(),
            detail: format!(
                "{} load-phase submissions got neither a rejection nor a result \
                 across the kill",
                report.phase_load.unanswered
            ),
        });
    }

    // No-lost-ack across the union of shard journals: the kill must not
    // have eaten anything a client saw acknowledged.
    let journals: Vec<PathBuf> = (0..config.shards)
        .map(|s| journal_dir.join(format!("shard-{s}.jsonl")))
        .collect();
    report.acked_preserved =
        check_acked_against_journals(&journals, &acked_before_kill, &mut report.violations);

    // Wait for the router to restore the killed shard (backoff restart +
    // peer rebuild both happen before its banner).
    let restore_deadline = std::time::Instant::now() + Duration::from_secs(60);
    let mut fleet = None;
    while std::time::Instant::now() < restore_deadline {
        if let Ok(stats) = crate::router::fetch_router_stats(&router_addr) {
            if stats.shards.iter().all(|r| r.up) && stats.restarts >= 1 {
                fleet = Some(stats);
                break;
            }
        }
        thread::sleep(Duration::from_millis(50));
    }
    let Some(fleet) = fleet else {
        report.violations.push(SoakViolation {
            invariant: "shard-restart".to_string(),
            detail: "the killed shard did not come back up within 60 s".to_string(),
        });
        send_shutdown(&router_addr);
        let _ = router_child.wait();
        let _ = std::fs::remove_dir_all(&scratch);
        return Ok(report);
    };
    report.restarts = fleet.restarts;
    report.redispatched = fleet.redispatched;

    // Disk-warm gate: the restarted shard must have pulled artifacts from
    // its peers, not come back cold.
    let killed_addr = fleet
        .shards
        .iter()
        .find(|r| r.shard == killed_shard)
        .and_then(|r| r.addr.clone());
    match killed_addr.as_deref().map(fetch_stats) {
        Some(Ok(stats)) => {
            report.fetched_artifacts = stats.fetched_artifacts;
            if stats.fetched_artifacts == 0 {
                report.violations.push(SoakViolation {
                    invariant: "peer-rebuild".to_string(),
                    detail: "the restarted shard fetched zero artifacts from \
                             its peers"
                        .to_string(),
                });
            }
        }
        _ => report.violations.push(SoakViolation {
            invariant: "peer-rebuild".to_string(),
            detail: "cannot fetch stats from the restarted shard".to_string(),
        }),
    }

    // Warm replay of exactly the pre-kill acked mix: the fleet must serve
    // it all from disk — zero profiles or baselines built from scratch.
    let mut pairs: Vec<(String, String)> = acked_before_kill
        .iter()
        .map(|a| (a.app.clone(), a.scheme.clone()))
        .collect::<BTreeSet<_>>()
        .into_iter()
        .collect();
    pairs.sort();
    let builds_before = fleet_builds(&fleet);
    let mut warm_config = load_config.clone();
    warm_config.pairs = pairs.clone();
    warm_config.requests_per_client = (pairs.len() * 2).clamp(4, 64);
    warm_config.seed = config.seed.wrapping_add(1);
    let warm_outcome = run_loadgen(&warm_config)?;
    report.phase_warm = warm_outcome.report.clone();
    if report.phase_warm.unanswered > 0 {
        report.violations.push(SoakViolation {
            invariant: "accounting".to_string(),
            detail: format!(
                "{} warm-phase submissions got neither a rejection nor a result",
                report.phase_warm.unanswered
            ),
        });
    }
    let builds_after = match crate::router::fetch_router_stats(&router_addr) {
        Ok(stats) => fleet_builds(&stats),
        Err(_) => builds_before,
    };
    report.resimulated = builds_after.saturating_sub(builds_before);
    if report.resimulated > 0 {
        report.violations.push(SoakViolation {
            invariant: "no-resimulation".to_string(),
            detail: format!(
                "{} profiles/baselines were rebuilt from scratch while \
                 replaying cells journaled Ok before the kill",
                report.resimulated
            ),
        });
    }

    // Bit-identical oracle: a fresh single-process server running the same
    // mix must produce exactly the same metrics per (app, scheme).
    let oracle_args: Vec<String> = [
        "serve",
        "--port",
        "0",
        "--trace-len",
        &trace_len.to_string(),
        "--workers",
        &workers.to_string(),
        "--queue",
        "64",
        "--rate",
        &admission_rate.to_string(),
        "--burst",
        &admission_rate.to_string(),
    ]
    .into_iter()
    .map(String::from)
    .chain([
        "--journal".to_string(),
        scratch.join("oracle.jsonl").to_string_lossy().into_owned(),
        "--store-dir".to_string(),
        scratch.join("oracle-store").to_string_lossy().into_owned(),
    ])
    .collect();
    let oracle = spawn_banner_child(&binary, &oracle_args)?;
    let mut oracle_child = oracle.child;
    let mut oracle_config = warm_config.clone();
    oracle_config.addrs = vec![oracle.addr.clone()];
    let oracle_outcome = run_loadgen(&oracle_config)?;
    report.phase_single = oracle_outcome.report.clone();
    let mut sharded_metrics = std::collections::HashMap::new();
    for cell in warm_outcome
        .acked
        .iter()
        .filter(|a| a.degraded == 0 && a.metrics.is_some())
    {
        sharded_metrics.insert(
            (cell.app.clone(), cell.scheme.clone()),
            cell.metrics.clone(),
        );
    }
    for cell in oracle_outcome
        .acked
        .iter()
        .filter(|a| a.degraded == 0 && a.metrics.is_some())
    {
        let key = (cell.app.clone(), cell.scheme.clone());
        if let Some(sharded) = sharded_metrics.get(&key) {
            report.oracle_compared += 1;
            if *sharded != cell.metrics {
                report.oracle_mismatches += 1;
                report.violations.push(SoakViolation {
                    invariant: "bit-identical".to_string(),
                    detail: format!(
                        "cell {}:{} differs between the sharded fleet and a \
                         single-process run of the same mix",
                        key.0, key.1
                    ),
                });
            }
        }
    }
    if report.oracle_compared == 0 {
        report.violations.push(SoakViolation {
            invariant: "bit-identical".to_string(),
            detail: "no cell could be compared against the single-process \
                     oracle"
                .to_string(),
        });
    }
    send_shutdown(&oracle.addr);
    let _ = oracle_child.wait();

    // Failover p99 gate, when asked for.
    if let Some(ceiling) = config.max_p99_ms {
        if report.failover_p99_ms > ceiling {
            report.violations.push(SoakViolation {
                invariant: "failover-p99".to_string(),
                detail: format!(
                    "p99 across the kill was {:.1} ms against a {ceiling:.1} ms \
                     ceiling",
                    report.failover_p99_ms
                ),
            });
        }
    }

    // Graceful fleet drain: shards checkpoint and exit 9, then the router
    // exits 9.
    send_shutdown(&router_addr);
    let status = router_child
        .wait()
        .map_err(|e| BenchError::Io(format!("cannot wait for router child: {e}")))?;
    report.router_exit_code = status.code();
    if status.code() != Some(9) {
        report.violations.push(SoakViolation {
            invariant: "graceful-drain".to_string(),
            detail: format!(
                "expected router exit code 9 after a graceful drain, got {:?}",
                status.code()
            ),
        });
    }

    let _ = std::fs::remove_dir_all(&scratch);
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plan_scales_overload_to_double_the_admission_rate() {
        let config = SoakConfig {
            clients: 8,
            rate: 4.0,
            ..SoakConfig::default()
        };
        let plan = plan(&config);
        assert_eq!(plan.admission_rate, 64);
        let total_overload = plan.overload_rate * plan.overload_clients as f64;
        assert!(
            (total_overload - 2.0 * plan.admission_rate as f64).abs() < 1e-6,
            "overload must be 2x the token rate, got {total_overload}"
        );
        assert!(plan.requests_per_client >= 2);
    }

    #[test]
    fn acked_audit_flags_missing_cells() {
        let dir = std::env::temp_dir().join(format!("critic_soak_audit_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).expect("scratch");
        let journal = dir.join("j.jsonl");
        std::fs::write(&journal, "").expect("touch");
        let acked = vec![AckedCell {
            id: 1,
            app: "Acrobat".into(),
            scheme: "critic".into(),
            status: critic_core::campaign::CellStatus::Ok,
            acked_at_ms: 0,
            degraded: 0,
            metrics: None,
        }];
        let mut violations = Vec::new();
        let preserved = check_acked_against_journal(&journal, &acked, &mut violations);
        assert_eq!(preserved, 0);
        assert_eq!(violations.len(), 1);
        assert_eq!(violations[0].invariant, "no-lost-ack");
        let _ = std::fs::remove_dir_all(&dir);
    }
}
