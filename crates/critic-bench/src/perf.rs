//! The perf-regression harness behind `critic bench` and the
//! `perf_regression` Criterion suite.
//!
//! Two measurements, chosen to bracket the hot paths this workspace
//! optimises:
//!
//! * **single-cell latency** — one app, cold: generate, profile, simulate
//!   baseline and the CritIC scheme. Covers the simulator's scratch-buffer
//!   reuse and the single-pass fanout computation.
//! * **cold vs warm campaign** — the same full grid run twice against one
//!   [`ArtifactStore`]: the first (cold) run populates the store, the
//!   second (warm) run is served worlds, profiles, and baseline
//!   simulations from it. The ratio is the store's leverage; a warm run
//!   slower than cold is a memoization regression.
//!
//! [`run_perf_bench`] packages both into a serialisable [`BenchReport`]
//! that the CLI writes as `BENCH_*.json` and CI gates on.

use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use critic_core::campaign::{
    default_schemes, run_campaign_with_store, CampaignSpec, CampaignSummary, CellMetrics, Scheme,
};
use critic_core::design::{DesignPoint, Software};
use critic_core::disk::DiskStoreStats;
use critic_core::runner::Workbench;
use critic_core::store::{ArtifactStore, StoreStats};
use critic_core::RunError;
use critic_energy::EnergyModel;
use critic_obs::{CycleLedger, Telemetry};
use critic_pipeline::{SimScratch, Simulator};
use critic_workloads::suite::Suite;
use critic_workloads::{DynInsn, Trace, DEFAULT_LOOKAHEAD, DEFAULT_STREAM_WINDOW};
use serde::Serialize;

/// Why a bench measurement could not produce a number.
#[derive(Debug)]
pub enum BenchError {
    /// The pipeline itself failed.
    Run(RunError),
    /// The grid ran but some cells failed; a perf number over a
    /// half-failed grid is meaningless, so the harness refuses to report
    /// one. Carries the campaign's rendered summary.
    FailedCells(String),
    /// The probe cell's cycle ledger did not partition the run — the
    /// observability invariant the bench-smoke CI job gates on.
    LedgerViolation(String),
    /// The batched cold campaign and the scalar reference pipeline
    /// disagreed on a cell's metrics. The speedup number is meaningless if
    /// the fast path computes something different, so the harness refuses
    /// to report one.
    Divergence(String),
    /// Harness infrastructure failed: an unusable scratch directory or
    /// store, an unspawnable drill child.
    Io(String),
}

impl fmt::Display for BenchError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BenchError::Run(e) => write!(f, "{e}"),
            BenchError::FailedCells(summary) => {
                write!(f, "bench grid had failing cells:\n{summary}")
            }
            BenchError::LedgerViolation(msg) => write!(f, "{msg}"),
            BenchError::Divergence(msg) => write!(f, "{msg}"),
            BenchError::Io(msg) => write!(f, "{msg}"),
        }
    }
}

impl std::error::Error for BenchError {}

impl From<RunError> for BenchError {
    fn from(e: RunError) -> Self {
        BenchError::Run(e)
    }
}

/// Grid parameters for one perf measurement.
#[derive(Debug, Clone, Copy, Serialize)]
pub struct BenchSetup {
    /// Apps in the campaign grid (taken from the Mobile suite in order).
    pub apps: usize,
    /// Schemes in the campaign grid (taken from `critic`, `opp16`,
    /// `hoist` in order).
    pub schemes: usize,
    /// Dynamic instructions per trace.
    pub trace_len: usize,
    /// Schemes in the cold-path sensitivity grid (taken from
    /// [`sensitivity_grid`] in order).
    pub sensitivity_schemes: usize,
    /// Cold/warm pairs measured; the report keeps the best of each.
    pub reps: usize,
    /// Dynamic instructions in the streaming-vs-materialized probe trace.
    /// Deliberately much longer than `trace_len`: the point of the probe
    /// is that streaming peak memory stays flat while this grows.
    pub stream_trace_len: usize,
    /// Streaming window (instructions per chunk) the probe runs with.
    pub stream_window: usize,
}

impl BenchSetup {
    /// The full measurement the committed `BENCH_*.json` files record.
    pub fn full() -> BenchSetup {
        BenchSetup {
            apps: 4,
            schemes: 3,
            trace_len: 40_000,
            sensitivity_schemes: 18,
            reps: 3,
            stream_trace_len: 400_000,
            stream_window: DEFAULT_STREAM_WINDOW,
        }
    }

    /// A scaled-down grid for CI smoke runs: same shape, small enough to
    /// finish in seconds.
    pub fn smoke() -> BenchSetup {
        BenchSetup {
            apps: 2,
            schemes: 2,
            trace_len: 10_000,
            sensitivity_schemes: 6,
            reps: 1,
            stream_trace_len: 100_000,
            stream_window: 1_024,
        }
    }
}

/// One measured bench run, serialised to `BENCH_*.json`.
#[derive(Debug, Clone, Serialize)]
pub struct BenchReport {
    /// The grid that was measured.
    pub setup: BenchSetup,
    /// One cold cell end-to-end: generate, profile, baseline + CritIC runs.
    pub single_cell_millis: f64,
    /// Batched-versus-scalar cold-path measurement over the sensitivity
    /// grid — the `cold_speedup` inside is what `critic bench
    /// --min-cold-speedup` and CI gate on.
    pub cold_path: ColdPathReport,
    /// Full-grid campaign against an empty store (best of `reps`).
    pub cold_campaign_millis: f64,
    /// The same campaign re-run against the populated store (best of
    /// `reps`).
    pub warm_campaign_millis: f64,
    /// `cold_campaign_millis / warm_campaign_millis`.
    pub warm_speedup: f64,
    /// The warm campaign re-measured with telemetry enabled (best of
    /// `reps`), against its own freshly warmed store.
    pub warm_telemetry_campaign_millis: f64,
    /// `(warm_telemetry - warm) / warm`: the fractional cost of enabling
    /// telemetry on the warm path, measured in-process so both sides see
    /// the same machine state. The observability layer's budget is <5%.
    pub telemetry_overhead_frac: f64,
    /// Full-grid campaign against an empty *persistent* store (best of
    /// `reps`): the cold half of the restart measurement.
    pub restart_cold_campaign_millis: f64,
    /// The same campaign re-run against a **fresh in-memory store over the
    /// same directory** — the moral equivalent of a process restart: every
    /// profile and baseline must come off disk (best of `reps`).
    pub restart_warm_campaign_millis: f64,
    /// `restart_cold_campaign_millis / restart_warm_campaign_millis`: the
    /// durable tier's leverage across a restart.
    pub restart_warm_speedup: f64,
    /// Disk-tier counters after the restart-warm pass: hits must be
    /// non-zero or the persistent store did nothing.
    pub disk: DiskStoreStats,
    /// The streaming-vs-materialized probe: throughput and peak-memory
    /// comparison of the chunked trace pipeline against the fully
    /// materialized one, reported only after their results matched
    /// bit-for-bit.
    pub stream: StreamReport,
    /// The probe cell's baseline cycle ledger; recorded so the report
    /// itself witnesses the partition invariant (`sum == cycles`), which
    /// [`run_perf_bench`] enforces before reporting.
    pub ledger: CycleLedger,
    /// Store counters after the last cold/warm pair: how much was built
    /// versus served from cache.
    pub store: StoreStats,
}

/// Per-cell phase costs of the batched cold campaign, in milliseconds,
/// taken from one telemetry-instrumented pass (span totals divided by the
/// cell count). `other` is the wall clock the spans do not cover — trace
/// expansion, decode, and record assembly.
#[derive(Debug, Clone, Copy, Default, Serialize)]
pub struct ColdCellMillis {
    /// World construction (program, path, trace, fan-out, validation).
    pub world_build: f64,
    /// Criticality profile construction.
    pub profile: f64,
    /// Compiler passes.
    pub passes: f64,
    /// Simulation (baseline + scheme).
    pub sim: f64,
    /// Unspanned remainder of the instrumented wall clock.
    pub other: f64,
    /// Instrumented wall clock per cell.
    pub total: f64,
}

/// The cold-path measurement: one batched campaign versus the scalar
/// per-cell reference pipeline over the same sensitivity grid, at
/// bit-identical per-cell metrics.
#[derive(Debug, Clone, Copy, Serialize)]
pub struct ColdPathReport {
    /// Cells in the sensitivity grid (`apps × sensitivity_schemes`).
    pub cells: usize,
    /// Batched cold campaign against a fresh store (best of `reps`).
    pub batched_millis: f64,
    /// The scalar reference pipeline over the same grid (best of `reps`):
    /// per cell, a fresh workbench, a cloned variant, a fresh trace
    /// expansion, and two `run_reference` walks.
    pub scalar_millis: f64,
    /// `scalar_millis / batched_millis` — the number the CI gate holds.
    pub cold_speedup: f64,
    /// Scheme-side dynamic instructions simulated per second of batched
    /// cold wall clock (baseline walks, being store-shared, are excluded).
    pub insts_per_sec: f64,
    /// Per-cell phase breakdown of the batched cold path.
    pub cold_cell_millis: ColdCellMillis,
}

/// The streaming-vs-materialized probe measurement: one long-trace cell
/// run through both engines at bit-identical results, with wall clock and
/// peak resident bytes on each side.
#[derive(Debug, Clone, Copy, Serialize)]
pub struct StreamReport {
    /// Streaming window, in instructions per chunk.
    pub window: usize,
    /// Dynamic instructions in the probe trace.
    pub trace_len: usize,
    /// Scheme-side run through the materialized path (best of `reps`).
    pub materialized_millis: f64,
    /// The same run through the streaming front-end (best of `reps`).
    pub streamed_millis: f64,
    /// `trace_len / materialized seconds`.
    pub materialized_insts_per_sec: f64,
    /// `trace_len / streamed seconds`.
    pub streamed_insts_per_sec: f64,
    /// `streamed_insts_per_sec / materialized_insts_per_sec` — the
    /// acceptance bar is staying within 10% of the materialized path.
    pub throughput_ratio: f64,
    /// Peak bytes resident in the streaming run: simulator rings, pipeline
    /// queues, and the expansion ring, sampled at every window feed.
    pub peak_resident_bytes: u64,
    /// Final simulator ring capacity, in slots.
    pub ring_capacity: usize,
    /// Mid-run ring doublings (non-zero only when a CDP-dense region
    /// stretched the live span past the initial capacity).
    pub ring_grows: u32,
    /// The fixed O(window) ceiling [`stream_peak_ceiling`] computes —
    /// independent of `trace_len`, which is the whole point.
    pub peak_ceiling_bytes: u64,
    /// What the materialized path holds for the same trace
    /// ([`materialized_bytes_estimate`]): entries, decoded columns, and
    /// timestamp arrays, all O(trace).
    pub materialized_bytes_estimate: u64,
}

/// Bytes per instruction the materialized path keeps live: the expanded
/// [`DynInsn`] entries plus the decoded columns and timestamp arrays
/// (about 100 B/insn across the data-oriented simulator's vectors).
const MATERIALIZED_COLUMN_BYTES: usize = 100;

/// The fixed streaming-peak ceiling for a given window, in bytes. A
/// generous multiple of `window + lookahead`: the simulator ring starts at
/// `next_pow2(window + ROB + buffers)` slots of ~100 B and may double a
/// few times over CDP-dense spans, and the expansion ring adds
/// O(lookahead). 2 KiB per slot covers all of that with an order of
/// magnitude to spare while staying independent of the trace length — a
/// streaming run whose peak scales with the trace will cross this line
/// long before the acceptance trace ends.
pub fn stream_peak_ceiling(window: usize) -> u64 {
    (window + DEFAULT_LOOKAHEAD) as u64 * 2048
}

/// What the materialized path holds resident for a `trace_len` trace.
pub fn materialized_bytes_estimate(trace_len: usize) -> u64 {
    (trace_len * (std::mem::size_of::<DynInsn>() + MATERIALIZED_COLUMN_BYTES)) as u64
}

/// Runs the streaming-vs-materialized probe: one cell on the longest
/// trace in the setup, scheme-side simulation timed through both the
/// materialized data-oriented path and the chunked streaming front-end
/// (best of `reps` each), with the baseline and profile warmed untimed so
/// both sides measure only expansion + simulation.
///
/// # Errors
///
/// Propagates pipeline failures; any mismatch between the two paths'
/// results is [`BenchError::Divergence`] — the throughput and memory
/// numbers are only reported over bit-identical computations.
pub fn time_stream_path(setup: &BenchSetup) -> Result<StreamReport, BenchError> {
    let app = &Suite::Mobile.apps()[0];
    let trace_len = setup.stream_trace_len;
    let window = setup.stream_window;
    let point = DesignPoint::critic();
    let mut bench = Workbench::try_new(app, trace_len)?;
    // Untimed warmup: baseline run and profile build happen once here, so
    // the timed passes below pay only variant expansion + simulation.
    bench.try_run(&DesignPoint::baseline())?;
    bench.try_run(&point)?;

    let mut best_materialized = Duration::MAX;
    let mut materialized = None;
    bench.set_stream_window(None);
    for _ in 0..setup.reps.max(1) {
        let started = Instant::now();
        let run = bench.try_run(&point)?;
        best_materialized = best_materialized.min(started.elapsed());
        materialized = Some(run);
    }
    let mut best_streamed = Duration::MAX;
    let mut streamed = None;
    let mut stats = None;
    bench.set_stream_window(Some(window));
    for _ in 0..setup.reps.max(1) {
        let started = Instant::now();
        let run = bench.try_run(&point)?;
        best_streamed = best_streamed.min(started.elapsed());
        stats = bench.stream_stats();
        streamed = Some(run);
    }
    bench.set_stream_window(None);

    let materialized = materialized.expect("reps >= 1");
    let streamed = streamed.expect("reps >= 1");
    let stats = stats
        .ok_or_else(|| BenchError::Io("streamed bench run recorded no stream stats".to_string()))?;
    if materialized.sim != streamed.sim
        || materialized.dyn_insns != streamed.dyn_insns
        || materialized.thumb_dyn_frac != streamed.thumb_dyn_frac
    {
        return Err(BenchError::Divergence(format!(
            "streaming front-end diverged from the materialized path on \
             {}/{}: {} vs {} cycles over {} vs {} insns",
            app.name,
            point.label(),
            streamed.sim.cycles,
            materialized.sim.cycles,
            streamed.dyn_insns,
            materialized.dyn_insns,
        )));
    }

    let materialized_secs = best_materialized.as_secs_f64();
    let streamed_secs = best_streamed.as_secs_f64();
    let materialized_ips = streamed.dyn_insns as f64 / materialized_secs;
    let streamed_ips = streamed.dyn_insns as f64 / streamed_secs;
    Ok(StreamReport {
        window,
        trace_len,
        materialized_millis: materialized_secs * 1e3,
        streamed_millis: streamed_secs * 1e3,
        materialized_insts_per_sec: materialized_ips,
        streamed_insts_per_sec: streamed_ips,
        throughput_ratio: streamed_ips / materialized_ips,
        peak_resident_bytes: stats.peak_resident_bytes as u64,
        ring_capacity: stats.ring_capacity,
        ring_grows: stats.grows,
        peak_ceiling_bytes: stream_peak_ceiling(window),
        materialized_bytes_estimate: materialized_bytes_estimate(trace_len),
    })
}

/// The sensitivity sweep the cold-path measurement runs: the paper's
/// software schemes (Figs. 10 and 12 — the default campaign grid plus the
/// chain-length and profile-fraction sensitivity points) followed by the
/// Fig. 11 hardware points (software stays baseline, so these cells
/// exercise the store's hardware-keyed baseline sharing).
pub fn sensitivity_grid() -> Vec<Scheme> {
    let mut schemes = default_schemes();
    for n in [2, 3, 4] {
        schemes.push(Scheme::new(
            &format!("critic-len{n}"),
            DesignPoint::critic_exact_len(n),
        ));
    }
    for f in [0.25, 0.5] {
        schemes.push(Scheme::new(
            &format!("critic-pf{f}"),
            DesignPoint::critic_profile_fraction(f),
        ));
    }
    schemes.push(Scheme::new("hw-2xfd", DesignPoint::double_fd()));
    schemes.push(Scheme::new("hw-4xic", DesignPoint::quad_icache()));
    schemes.push(Scheme::new("hw-efetch", DesignPoint::efetch()));
    schemes.push(Scheme::new("hw-perfbr", DesignPoint::perfect_branch()));
    schemes.push(Scheme::new("hw-prio", DesignPoint::backend_prio()));
    schemes.push(Scheme::new("hw-all", DesignPoint::all_hw()));
    schemes
}

/// The sensitivity-grid campaign the cold-path measurement runs: silent,
/// single worker (the scalar reference loop is single-threaded, so the
/// comparison must be too).
pub fn sensitivity_campaign(setup: &BenchSetup) -> CampaignSpec {
    let apps = Suite::Mobile.apps().into_iter().take(setup.apps).collect();
    let schemes = sensitivity_grid()
        .into_iter()
        .take(setup.sensitivity_schemes)
        .collect();
    let mut spec = CampaignSpec::new(apps, schemes, setup.trace_len);
    spec.telemetry = Telemetry::off();
    spec.workers = 1;
    spec
}

/// Runs the scalar per-cell reference pipeline over `spec`'s grid and
/// returns its wall clock plus the per-cell metrics, in the campaign's
/// (app, scheme) record order. Every cell pays what a pre-batching
/// campaign cell paid: its own workbench (program generation, path,
/// baseline trace), a cloned variant binary, a fresh trace expansion and
/// fan-out, and two scalar [`Simulator::run_reference`] walks.
///
/// # Errors
///
/// Propagates any pipeline failure as [`BenchError::Run`].
pub fn time_cold_scalar(spec: &CampaignSpec) -> Result<(Duration, Vec<CellMetrics>), BenchError> {
    let energy = EnergyModel::default();
    let mut metrics = Vec::with_capacity(spec.apps.len() * spec.schemes.len());
    let started = Instant::now();
    for app in &spec.apps {
        for scheme in &spec.schemes {
            let mut bench = Workbench::try_new(app, spec.trace_len)?;
            let base_point = DesignPoint::baseline();
            let base_sim = Simulator::new(base_point.cpu_config(), base_point.mem_config())
                .run_reference(bench.baseline_trace(), bench.baseline_fanout())
                .0;
            let point = &scheme.point;
            let (sim, thumb_dyn_frac, dyn_insns) = if matches!(point.software, Software::Baseline) {
                // Hardware-only points replay the recorded baseline trace
                // under the altered configuration.
                let sim = Simulator::new(point.cpu_config(), point.mem_config())
                    .run_reference(bench.baseline_trace(), bench.baseline_fanout())
                    .0;
                let trace = bench.baseline_trace();
                (sim, trace.thumb_fraction(), trace.len())
            } else {
                let (program, _pass) = bench.try_variant(&point.software)?;
                let trace = Trace::expand(&program, &bench.path);
                let fanout = trace.compute_fanout();
                let sim = Simulator::new(point.cpu_config(), point.mem_config())
                    .run_reference(&trace, &fanout)
                    .0;
                (sim, trace.thumb_fraction(), trace.len())
            };
            metrics.push(CellMetrics {
                speedup: sim.speedup_over(&base_sim),
                cpu_energy_saving: energy
                    .evaluate(&sim)
                    .cpu_saving(&energy.evaluate(&base_sim)),
                thumb_dyn_frac,
                dyn_insns,
            });
        }
    }
    Ok((started.elapsed(), metrics))
}

/// Times one batched cold campaign over `spec` against a fresh store.
fn time_cold_batched(spec: &CampaignSpec) -> Result<(Duration, CampaignSummary), BenchError> {
    let store = Arc::new(ArtifactStore::new());
    let started = Instant::now();
    let summary = run_campaign_with_store(spec, &store)?;
    let elapsed = started.elapsed();
    if !summary.all_ok() {
        return Err(BenchError::FailedCells(summary.render()));
    }
    Ok((elapsed, summary))
}

/// Runs the cold-path measurement: `reps` batched cold campaigns and
/// `reps` scalar reference sweeps over the same sensitivity grid (keeping
/// the fastest of each), one record-by-record equality check between the
/// two pipelines' metrics, and one instrumented batched pass for the
/// per-cell phase breakdown.
///
/// The equality check is exact (`f64` bit equality through
/// [`CellMetrics`]'s `PartialEq`): both engines are required to be
/// bit-identical, so *any* difference fails the measurement with
/// [`BenchError::Divergence`] rather than reporting a speedup over a
/// different computation.
///
/// # Errors
///
/// Propagates pipeline and campaign failures; metric divergence between
/// the two pipelines is [`BenchError::Divergence`].
pub fn time_cold_path(setup: &BenchSetup) -> Result<ColdPathReport, BenchError> {
    let spec = sensitivity_campaign(setup);
    let mut best_batched = Duration::MAX;
    let mut batched_metrics: Vec<CellMetrics> = Vec::new();
    let mut batched_insns = 0usize;
    // The batched pass is ~3x shorter than the scalar one, so its best-of
    // minimum sees proportionally fewer chances to dodge machine noise;
    // two extra reps cost little and tighten it.
    for _ in 0..setup.reps.max(1) + 2 {
        let (elapsed, summary) = time_cold_batched(&spec)?;
        best_batched = best_batched.min(elapsed);
        batched_metrics = summary
            .records
            .iter()
            .map(|r| r.metrics.clone().expect("all_ok summary has metrics"))
            .collect();
        batched_insns = batched_metrics.iter().map(|m| m.dyn_insns).sum();
    }
    let mut best_scalar = Duration::MAX;
    let mut scalar_metrics: Vec<CellMetrics> = Vec::new();
    for _ in 0..setup.reps.max(1) {
        let (elapsed, metrics) = time_cold_scalar(&spec)?;
        best_scalar = best_scalar.min(elapsed);
        scalar_metrics = metrics;
    }
    if batched_metrics != scalar_metrics {
        let detail = batched_metrics
            .iter()
            .zip(&scalar_metrics)
            .position(|(b, s)| b != s)
            .map(|i| format!("first divergent cell index {i}"))
            .unwrap_or_else(|| "cell counts differ".to_string());
        return Err(BenchError::Divergence(format!(
            "batched campaign and scalar reference disagree ({detail}: \
             {} batched vs {} scalar cells)",
            batched_metrics.len(),
            scalar_metrics.len()
        )));
    }

    // One instrumented pass for the phase breakdown (outside the timed
    // measurements, so the span cost never pollutes the speedup).
    let mut instrumented = spec.clone();
    instrumented.telemetry = Telemetry::enabled();
    let store = Arc::new(ArtifactStore::new());
    let started = Instant::now();
    let summary = run_campaign_with_store(&instrumented, &store)?;
    let instrumented_wall = started.elapsed().as_secs_f64() * 1e3;
    if !summary.all_ok() {
        return Err(BenchError::FailedCells(summary.render()));
    }
    let cells = summary.records.len().max(1);
    let snap = summary.telemetry.unwrap_or_default();
    let spanned = [&snap.world_build, &snap.profile, &snap.passes, &snap.sim]
        .iter()
        .map(|s| s.total_nanos as f64 / 1e6)
        .sum::<f64>();
    let per_cell = |nanos: u64| nanos as f64 / 1e6 / cells as f64;
    let cold_cell_millis = ColdCellMillis {
        world_build: per_cell(snap.world_build.total_nanos),
        profile: per_cell(snap.profile.total_nanos),
        passes: per_cell(snap.passes.total_nanos),
        sim: per_cell(snap.sim.total_nanos),
        other: (instrumented_wall - spanned).max(0.0) / cells as f64,
        total: instrumented_wall / cells as f64,
    };

    let batched_ms = best_batched.as_secs_f64() * 1e3;
    let scalar_ms = best_scalar.as_secs_f64() * 1e3;
    Ok(ColdPathReport {
        cells: batched_metrics.len(),
        batched_millis: batched_ms,
        scalar_millis: scalar_ms,
        cold_speedup: scalar_ms / batched_ms,
        insts_per_sec: batched_insns as f64 / best_batched.as_secs_f64(),
        cold_cell_millis,
    })
}

/// Distinguishes concurrently-running restart measurements' store dirs.
static STORE_DIR_COUNTER: AtomicU64 = AtomicU64::new(0);

/// The campaign grid a bench run measures.
pub fn bench_campaign(setup: &BenchSetup) -> CampaignSpec {
    let apps = Suite::Mobile.apps().into_iter().take(setup.apps).collect();
    let schemes = [
        Scheme::new("critic", DesignPoint::critic()),
        Scheme::new("opp16", DesignPoint::opp16()),
        Scheme::new("hoist", DesignPoint::hoist()),
    ]
    .into_iter()
    .take(setup.schemes)
    .collect();
    let mut spec = CampaignSpec::new(apps, schemes, setup.trace_len);
    // Perf numbers must not depend on the ambient CRITIC_TELEMETRY: the
    // cold/warm pair always runs silent; the telemetry pass opts in
    // explicitly.
    spec.telemetry = Telemetry::off();
    spec
}

/// Times one cold cell end-to-end: world generation, profiling, and the
/// baseline + CritIC simulations. Also re-simulates the baseline with the
/// cycle ledger (outside the timed window) and enforces the partition
/// invariant, returning the audited ledger alongside the latency.
///
/// # Errors
///
/// Propagates any pipeline failure as [`BenchError::Run`]; a ledger that
/// does not sum to the run's cycles is [`BenchError::LedgerViolation`].
pub fn time_single_cell(trace_len: usize) -> Result<(Duration, CycleLedger), BenchError> {
    let app = &Suite::Mobile.apps()[0];
    let started = Instant::now();
    let mut bench = Workbench::try_new(app, trace_len)?;
    let base = bench.try_run(&DesignPoint::baseline())?;
    let run = bench.try_run(&DesignPoint::critic())?;
    assert!(run.sim.speedup_over(&base.sim) > 0.0);
    let elapsed = started.elapsed();

    let point = DesignPoint::baseline();
    let mut scratch = SimScratch::new();
    let (audited, ledger) = Simulator::new(point.cpu_config(), point.mem_config()).run_with_ledger(
        bench.baseline_trace(),
        bench.baseline_fanout(),
        &mut scratch,
    );
    ledger
        .check(audited.cycles)
        .map_err(BenchError::LedgerViolation)?;
    if audited != base.sim {
        return Err(BenchError::LedgerViolation(format!(
            "ledger-audited baseline diverged from the plain run \
             ({} vs {} cycles)",
            audited.cycles, base.sim.cycles
        )));
    }
    Ok((elapsed, ledger))
}

/// Times a cold campaign and a warm re-run over one shared store.
///
/// # Errors
///
/// Returns [`BenchError::Run`] on campaign-level failures and
/// [`BenchError::FailedCells`] when any cell of either run failed.
pub fn time_cold_warm(spec: &CampaignSpec) -> Result<(Duration, Duration, StoreStats), BenchError> {
    let store = Arc::new(ArtifactStore::new());
    let started = Instant::now();
    let cold_summary = run_campaign_with_store(spec, &store)?;
    let cold = started.elapsed();
    let started = Instant::now();
    let warm_summary = run_campaign_with_store(spec, &store)?;
    let warm = started.elapsed();
    for summary in [&cold_summary, &warm_summary] {
        if !summary.all_ok() {
            return Err(BenchError::FailedCells(summary.render()));
        }
    }
    Ok((cold, warm, store.stats()))
}

/// Times a cold campaign against an empty persistent store, then — after
/// dropping every in-memory artifact — a restart-warm campaign against a
/// fresh store over the same directory. The second run can only be fast if
/// the *disk* tier serves it: this is the committed report's witness that
/// durability survives a process boundary.
///
/// # Errors
///
/// Returns [`BenchError::Io`] when the scratch store directory is
/// unusable, [`BenchError::Run`] on campaign-level failures, and
/// [`BenchError::FailedCells`] when any cell of either run failed.
pub fn time_restart_warm(
    spec: &CampaignSpec,
) -> Result<(Duration, Duration, DiskStoreStats), BenchError> {
    let dir = std::env::temp_dir().join(format!(
        "critic_bench_store_{}_{}",
        std::process::id(),
        STORE_DIR_COUNTER.fetch_add(1, Ordering::Relaxed)
    ));
    let open = |dir: &std::path::Path| -> Result<Arc<ArtifactStore>, BenchError> {
        ArtifactStore::persistent(dir, None, Telemetry::off())
            .map(Arc::new)
            .map_err(|e| BenchError::Io(e.to_string()))
    };
    let cold_store = open(&dir)?;
    let started = Instant::now();
    let cold_summary = run_campaign_with_store(spec, &cold_store)?;
    let cold = started.elapsed();
    drop(cold_store);

    let warm_store = open(&dir)?;
    let started = Instant::now();
    let warm_summary = run_campaign_with_store(spec, &warm_store)?;
    let warm = started.elapsed();
    let disk = warm_store.stats().disk.unwrap_or_default();
    let _ = std::fs::remove_dir_all(&dir);
    for summary in [&cold_summary, &warm_summary] {
        if !summary.all_ok() {
            return Err(BenchError::FailedCells(summary.render()));
        }
    }
    Ok((cold, warm, disk))
}

/// Times one warm campaign pass with telemetry enabled: the store is
/// pre-warmed by a silent cold run (untimed), then the timed pass records
/// spans on every cell. Comparing against the silent warm time from the
/// same process bounds the observability layer's overhead.
///
/// # Errors
///
/// Returns [`BenchError::Run`] on campaign-level failures and
/// [`BenchError::FailedCells`] when any cell failed.
pub fn time_warm_with_telemetry(spec: &CampaignSpec) -> Result<Duration, BenchError> {
    let store = Arc::new(ArtifactStore::new());
    let warmup = run_campaign_with_store(spec, &store)?;
    let mut instrumented = spec.clone();
    instrumented.telemetry = Telemetry::enabled();
    let started = Instant::now();
    let timed = run_campaign_with_store(&instrumented, &store)?;
    let elapsed = started.elapsed();
    for summary in [&warmup, &timed] {
        if !summary.all_ok() {
            return Err(BenchError::FailedCells(summary.render()));
        }
    }
    Ok(elapsed)
}

/// Runs the full measurement: the single-cell probe plus `reps` cold/warm
/// campaign pairs (keeping the fastest of each, standard practice for
/// wall-clock benchmarks on noisy machines).
///
/// # Errors
///
/// Propagates any pipeline or campaign failure as a [`BenchError`].
pub fn run_perf_bench(setup: &BenchSetup) -> Result<BenchReport, BenchError> {
    let (single, ledger) = time_single_cell(setup.trace_len)?;
    let cold_path = time_cold_path(setup)?;
    let stream = time_stream_path(setup)?;
    let spec = bench_campaign(setup);
    let mut best_cold = Duration::MAX;
    let mut best_warm = Duration::MAX;
    let mut best_warm_telemetry = Duration::MAX;
    let mut best_restart_cold = Duration::MAX;
    let mut best_restart_warm = Duration::MAX;
    let mut last_stats = StoreStats::default();
    let mut last_disk = DiskStoreStats::default();
    for _ in 0..setup.reps.max(1) {
        let (cold, warm, stats) = time_cold_warm(&spec)?;
        best_cold = best_cold.min(cold);
        best_warm = best_warm.min(warm);
        best_warm_telemetry = best_warm_telemetry.min(time_warm_with_telemetry(&spec)?);
        let (restart_cold, restart_warm, disk) = time_restart_warm(&spec)?;
        best_restart_cold = best_restart_cold.min(restart_cold);
        best_restart_warm = best_restart_warm.min(restart_warm);
        last_stats = stats;
        last_disk = disk;
    }
    let cold_ms = best_cold.as_secs_f64() * 1e3;
    let warm_ms = best_warm.as_secs_f64() * 1e3;
    let warm_telemetry_ms = best_warm_telemetry.as_secs_f64() * 1e3;
    let restart_cold_ms = best_restart_cold.as_secs_f64() * 1e3;
    let restart_warm_ms = best_restart_warm.as_secs_f64() * 1e3;
    Ok(BenchReport {
        setup: *setup,
        single_cell_millis: single.as_secs_f64() * 1e3,
        cold_path,
        cold_campaign_millis: cold_ms,
        warm_campaign_millis: warm_ms,
        warm_speedup: cold_ms / warm_ms,
        warm_telemetry_campaign_millis: warm_telemetry_ms,
        telemetry_overhead_frac: (warm_telemetry_ms - warm_ms) / warm_ms,
        restart_cold_campaign_millis: restart_cold_ms,
        restart_warm_campaign_millis: restart_warm_ms,
        restart_warm_speedup: restart_cold_ms / restart_warm_ms,
        disk: last_disk,
        stream,
        ledger,
        store: last_stats,
    })
}

/// Parameters of the service-mode bench (`critic bench --service`).
#[derive(Debug, Clone, Copy, Serialize)]
pub struct ServiceBenchSetup {
    /// Dynamic instructions per cell.
    pub trace_len: usize,
    /// Worker threads in the in-process server.
    pub workers: usize,
    /// Submissions per client in the 8- and 64-client phases.
    pub requests_per_client: usize,
    /// Open-loop submissions per second per client in the measured phases.
    pub rate: f64,
}

impl ServiceBenchSetup {
    /// The committed `BENCH_pr7.json` measurement.
    pub fn full() -> ServiceBenchSetup {
        ServiceBenchSetup {
            trace_len: 8_000,
            workers: 4,
            requests_per_client: 8,
            rate: 8.0,
        }
    }

    /// Scaled down for CI smoke and tests.
    pub fn smoke() -> ServiceBenchSetup {
        ServiceBenchSetup {
            trace_len: 2_000,
            workers: 2,
            requests_per_client: 3,
            rate: 16.0,
        }
    }
}

/// One measured loadgen phase of the service bench.
#[derive(Debug, Clone, Serialize)]
pub struct ServicePhase {
    /// Concurrent clients.
    pub clients: usize,
    /// The phase's full loadgen report (latency percentiles included).
    pub report: crate::loadgen::LoadgenReport,
}

/// The service-mode bench report committed as `BENCH_pr7.json`.
#[derive(Debug, Clone, Serialize)]
pub struct ServiceBenchReport {
    /// The parameters measured.
    pub setup: ServiceBenchSetup,
    /// 8 concurrent clients at the nominal rate.
    pub clients_8: ServicePhase,
    /// 64 concurrent clients at the nominal rate.
    pub clients_64: ServicePhase,
    /// A deliberate 2× overload burst: rejections with retry hints are the
    /// *expected* outcome here, and their absence is the regression.
    pub overload: ServicePhase,
}

/// Runs one loadgen phase against an in-process server on `addr`.
fn service_phase(
    addr: &str,
    clients: usize,
    requests_per_client: usize,
    rate: f64,
    seed: u64,
) -> Result<ServicePhase, BenchError> {
    let mut config = crate::loadgen::LoadgenConfig::new(addr);
    config.clients = clients;
    config.requests_per_client = requests_per_client;
    config.rate = rate;
    config.seed = seed;
    let outcome = crate::loadgen::run_loadgen(&config)?;
    Ok(ServicePhase {
        clients,
        report: outcome.report,
    })
}

/// Measures the campaign service end to end, in process: an ephemeral-port
/// server over [`crate::serve::serve_on`], then 8-client, 64-client, and
/// 2× overload loadgen phases against it.
///
/// # Errors
///
/// Returns [`BenchError::Io`] when the listener cannot bind or a phase's
/// client mix is unusable.
pub fn run_service_bench(setup: &ServiceBenchSetup) -> Result<ServiceBenchReport, BenchError> {
    use critic_core::service::{CampaignService, ServiceConfig};
    use std::sync::atomic::{AtomicBool, Ordering};

    let capacity = 64;
    let rate = ((64.0 * setup.rate) as u64).max(8);
    let config = ServiceConfig {
        workers: setup.workers,
        queue_capacity: capacity,
        degrade_watermarks: [8, 24, 48],
        admission_rate: rate,
        admission_burst: rate,
        client_window: 32,
        breaker_threshold: 0,
        telemetry: Telemetry::off(),
        ..ServiceConfig::new(setup.trace_len)
    };
    let service = CampaignService::open(config).map_err(BenchError::Run)?;
    let listener = std::net::TcpListener::bind(("127.0.0.1", 0))
        .map_err(|e| BenchError::Io(format!("cannot bind service bench listener: {e}")))?;
    let addr = listener
        .local_addr()
        .map_err(|e| BenchError::Io(e.to_string()))?
        .to_string();
    let shutdown = Arc::new(AtomicBool::new(false));
    let server = {
        let service = service.clone();
        let shutdown = Arc::clone(&shutdown);
        std::thread::spawn(move || {
            crate::serve::serve_on(
                listener,
                &service,
                &shutdown,
                &crate::serve::ShardContext::default(),
            )
        })
    };

    let clients_8 = service_phase(&addr, 8, setup.requests_per_client, setup.rate, 1)?;
    let clients_64 = service_phase(&addr, 64, setup.requests_per_client, setup.rate, 2)?;
    // Overload: 64 clients pushing 2x the token rate between them.
    let overload_rate = (rate as f64 * 2.0) / 64.0;
    let overload = service_phase(
        &addr,
        64,
        setup.requests_per_client,
        overload_rate.max(setup.rate * 2.0),
        3,
    )?;

    shutdown.store(true, Ordering::SeqCst);
    let _ = server.join();
    Ok(ServiceBenchReport {
        setup: *setup,
        clients_8,
        clients_64,
        overload,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_bench_produces_a_sane_report() {
        let report = run_perf_bench(&BenchSetup::smoke()).expect("bench runs");
        assert!(report.single_cell_millis > 0.0);
        // The cold-path measurement only reports after its internal
        // batched-vs-scalar metric equality check passed.
        assert_eq!(report.cold_path.cells, 2 * 6);
        assert!(report.cold_path.batched_millis > 0.0);
        assert!(report.cold_path.scalar_millis > 0.0);
        assert!(report.cold_path.cold_speedup > 0.0);
        assert!(report.cold_path.insts_per_sec > 0.0);
        assert!(report.cold_path.cold_cell_millis.total > 0.0);
        assert!(report.cold_path.cold_cell_millis.sim > 0.0);
        assert!(report.cold_campaign_millis > 0.0);
        assert!(report.warm_campaign_millis > 0.0);
        assert!(report.warm_speedup > 0.0);
        assert!(report.store.hits > 0, "warm run must hit the store");
        assert!(report.restart_cold_campaign_millis > 0.0);
        assert!(report.restart_warm_campaign_millis > 0.0);
        assert!(report.restart_warm_speedup > 0.0);
        assert!(
            report.disk.disk_hits > 0,
            "the restart-warm run must be served from disk: {:?}",
            report.disk
        );
        assert_eq!(
            report.disk.saves, 0,
            "a fully warmed disk store rebuilds nothing: {:?}",
            report.disk
        );
        // The stream probe only reports after bit-identity held, and its
        // peak must sit under the trace-length-independent ceiling while
        // the materialized footprint for the same trace sits well above.
        assert_eq!(report.stream.trace_len, 100_000);
        assert!(report.stream.peak_resident_bytes > 0);
        assert!(
            report.stream.peak_resident_bytes <= report.stream.peak_ceiling_bytes,
            "streaming peak {} exceeds the O(window) ceiling {}",
            report.stream.peak_resident_bytes,
            report.stream.peak_ceiling_bytes
        );
        assert!(
            report.stream.materialized_bytes_estimate > report.stream.peak_ceiling_bytes,
            "the probe trace must be long enough that materializing it \
             costs more than the whole streaming ceiling"
        );
        assert!(report.stream.throughput_ratio > 0.0);
        assert!(report.stream.streamed_insts_per_sec > 0.0);
        // The audited probe ledger is non-degenerate and already verified
        // against the run's cycle count inside run_perf_bench.
        assert!(report.ledger.total() > 0);
        assert!(report.ledger.commit > 0);
        // The overhead measurement is a wall-clock delta on a debug build
        // of a tiny grid, so only sanity is asserted here; the committed
        // release-mode BENCH report and CI hold the real <5% budget.
        assert!(report.warm_telemetry_campaign_millis > 0.0);
        assert!(report.telemetry_overhead_frac.is_finite());
        assert!(
            report.telemetry_overhead_frac < 1.0,
            "telemetry must not double the warm path even in debug: {:.3}",
            report.telemetry_overhead_frac
        );
        let json = serde_json::to_string_pretty(&report).expect("serialises");
        assert!(json.contains("warm_speedup"), "{json}");
        assert!(json.contains("telemetry_overhead_frac"), "{json}");
        assert!(json.contains("cold_speedup"), "{json}");
        assert!(json.contains("insts_per_sec"), "{json}");
        assert!(json.contains("cold_cell_millis"), "{json}");
        assert!(json.contains("peak_resident_bytes"), "{json}");
        assert!(json.contains("throughput_ratio"), "{json}");
    }

    #[test]
    fn stream_probe_reports_bounded_memory_across_windows() {
        // Three windows over the same trace: the probe itself enforces
        // bit-identity (it errors on divergence), so what is asserted here
        // is the memory shape — peak under the per-window ceiling, and a
        // bigger window allowed a bigger footprint.
        let mut setup = BenchSetup::smoke();
        setup.stream_trace_len = 30_000;
        for window in [256, 1_024, 30_000] {
            setup.stream_window = window;
            let report = time_stream_path(&setup).expect("stream probe runs");
            assert_eq!(report.window, window);
            assert!(
                report.peak_resident_bytes <= report.peak_ceiling_bytes,
                "window {window}: peak {} over ceiling {}",
                report.peak_resident_bytes,
                report.peak_ceiling_bytes
            );
        }
    }

    #[test]
    fn scalar_reference_and_batched_campaign_agree_exactly() {
        let setup = BenchSetup {
            apps: 2,
            schemes: 2,
            trace_len: 4_000,
            // 14 reaches past the software schemes into the hardware
            // points, so both cell kinds are differenced.
            sensitivity_schemes: 14,
            reps: 1,
            stream_trace_len: 20_000,
            stream_window: 512,
        };
        // time_cold_path fails with BenchError::Divergence on any metric
        // mismatch, so a clean return IS the equality assertion — over a
        // grid slice that includes software and hardware schemes.
        let report = time_cold_path(&setup).expect("pipelines agree");
        assert_eq!(report.cells, 28);
    }

    #[test]
    fn smoke_service_bench_measures_all_three_phases() {
        let report = run_service_bench(&ServiceBenchSetup::smoke()).expect("service bench runs");
        for phase in [&report.clients_8, &report.clients_64] {
            assert!(
                phase.report.done > 0,
                "phase with {} clients completed nothing: {:?}",
                phase.clients,
                phase.report
            );
            assert_eq!(
                phase.report.unanswered, 0,
                "every submission must terminate: {:?}",
                phase.report
            );
            assert!(phase.report.p50_ms > 0.0);
            assert!(phase.report.p99_ms >= phase.report.p50_ms);
        }
        // The overload phase must have answered everything it admitted.
        assert_eq!(report.overload.report.unanswered, 0);
        let json = serde_json::to_string_pretty(&report).expect("serialises");
        assert!(json.contains("p99_ms"), "{json}");
        assert!(json.contains("overload"), "{json}");
    }

    #[test]
    fn single_cell_probe_audits_the_ledger() {
        let (elapsed, ledger) = time_single_cell(8_000).expect("probe runs");
        assert!(elapsed.as_nanos() > 0);
        assert!(ledger.stall_for_i() + ledger.stall_for_rd() > 0);
        assert!(ledger.commit > 0);
    }
}
