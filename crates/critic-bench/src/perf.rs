//! The perf-regression harness behind `critic bench` and the
//! `perf_regression` Criterion suite.
//!
//! Two measurements, chosen to bracket the hot paths this workspace
//! optimises:
//!
//! * **single-cell latency** — one app, cold: generate, profile, simulate
//!   baseline and the CritIC scheme. Covers the simulator's scratch-buffer
//!   reuse and the single-pass fanout computation.
//! * **cold vs warm campaign** — the same full grid run twice against one
//!   [`ArtifactStore`]: the first (cold) run populates the store, the
//!   second (warm) run is served worlds, profiles, and baseline
//!   simulations from it. The ratio is the store's leverage; a warm run
//!   slower than cold is a memoization regression.
//!
//! [`run_perf_bench`] packages both into a serialisable [`BenchReport`]
//! that the CLI writes as `BENCH_*.json` and CI gates on.

use std::fmt;
use std::sync::Arc;
use std::time::{Duration, Instant};

use critic_core::campaign::{run_campaign_with_store, CampaignSpec, Scheme};
use critic_core::design::DesignPoint;
use critic_core::runner::Workbench;
use critic_core::store::{ArtifactStore, StoreStats};
use critic_core::RunError;
use critic_workloads::suite::Suite;
use serde::Serialize;

/// Why a bench measurement could not produce a number.
#[derive(Debug)]
pub enum BenchError {
    /// The pipeline itself failed.
    Run(RunError),
    /// The grid ran but some cells failed; a perf number over a
    /// half-failed grid is meaningless, so the harness refuses to report
    /// one. Carries the campaign's rendered summary.
    FailedCells(String),
}

impl fmt::Display for BenchError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BenchError::Run(e) => write!(f, "{e}"),
            BenchError::FailedCells(summary) => {
                write!(f, "bench grid had failing cells:\n{summary}")
            }
        }
    }
}

impl std::error::Error for BenchError {}

impl From<RunError> for BenchError {
    fn from(e: RunError) -> Self {
        BenchError::Run(e)
    }
}

/// Grid parameters for one perf measurement.
#[derive(Debug, Clone, Copy, Serialize)]
pub struct BenchSetup {
    /// Apps in the campaign grid (taken from the Mobile suite in order).
    pub apps: usize,
    /// Schemes in the campaign grid (taken from `critic`, `opp16`,
    /// `hoist` in order).
    pub schemes: usize,
    /// Dynamic instructions per trace.
    pub trace_len: usize,
    /// Cold/warm pairs measured; the report keeps the best of each.
    pub reps: usize,
}

impl BenchSetup {
    /// The full measurement the committed `BENCH_*.json` files record.
    pub fn full() -> BenchSetup {
        BenchSetup {
            apps: 4,
            schemes: 3,
            trace_len: 40_000,
            reps: 3,
        }
    }

    /// A scaled-down grid for CI smoke runs: same shape, small enough to
    /// finish in seconds.
    pub fn smoke() -> BenchSetup {
        BenchSetup {
            apps: 2,
            schemes: 2,
            trace_len: 10_000,
            reps: 1,
        }
    }
}

/// One measured bench run, serialised to `BENCH_*.json`.
#[derive(Debug, Clone, Serialize)]
pub struct BenchReport {
    /// The grid that was measured.
    pub setup: BenchSetup,
    /// One cold cell end-to-end: generate, profile, baseline + CritIC runs.
    pub single_cell_millis: f64,
    /// Full-grid campaign against an empty store (best of `reps`).
    pub cold_campaign_millis: f64,
    /// The same campaign re-run against the populated store (best of
    /// `reps`).
    pub warm_campaign_millis: f64,
    /// `cold_campaign_millis / warm_campaign_millis`.
    pub warm_speedup: f64,
    /// Store counters after the last cold/warm pair: how much was built
    /// versus served from cache.
    pub store: StoreStats,
}

/// The campaign grid a bench run measures.
pub fn bench_campaign(setup: &BenchSetup) -> CampaignSpec {
    let apps = Suite::Mobile.apps().into_iter().take(setup.apps).collect();
    let schemes = [
        Scheme::new("critic", DesignPoint::critic()),
        Scheme::new("opp16", DesignPoint::opp16()),
        Scheme::new("hoist", DesignPoint::hoist()),
    ]
    .into_iter()
    .take(setup.schemes)
    .collect();
    CampaignSpec::new(apps, schemes, setup.trace_len)
}

/// Times one cold cell end-to-end: world generation, profiling, and the
/// baseline + CritIC simulations.
///
/// # Errors
///
/// Propagates any pipeline failure as [`BenchError::Run`].
pub fn time_single_cell(trace_len: usize) -> Result<Duration, BenchError> {
    let app = &Suite::Mobile.apps()[0];
    let started = Instant::now();
    let mut bench = Workbench::try_new(app, trace_len)?;
    let base = bench.try_run(&DesignPoint::baseline())?;
    let run = bench.try_run(&DesignPoint::critic())?;
    assert!(run.sim.speedup_over(&base.sim) > 0.0);
    Ok(started.elapsed())
}

/// Times a cold campaign and a warm re-run over one shared store.
///
/// # Errors
///
/// Returns [`BenchError::Run`] on campaign-level failures and
/// [`BenchError::FailedCells`] when any cell of either run failed.
pub fn time_cold_warm(spec: &CampaignSpec) -> Result<(Duration, Duration, StoreStats), BenchError> {
    let store = Arc::new(ArtifactStore::new());
    let started = Instant::now();
    let cold_summary = run_campaign_with_store(spec, &store)?;
    let cold = started.elapsed();
    let started = Instant::now();
    let warm_summary = run_campaign_with_store(spec, &store)?;
    let warm = started.elapsed();
    for summary in [&cold_summary, &warm_summary] {
        if !summary.all_ok() {
            return Err(BenchError::FailedCells(summary.render()));
        }
    }
    Ok((cold, warm, store.stats()))
}

/// Runs the full measurement: the single-cell probe plus `reps` cold/warm
/// campaign pairs (keeping the fastest of each, standard practice for
/// wall-clock benchmarks on noisy machines).
///
/// # Errors
///
/// Propagates any pipeline or campaign failure as a [`BenchError`].
pub fn run_perf_bench(setup: &BenchSetup) -> Result<BenchReport, BenchError> {
    let single = time_single_cell(setup.trace_len)?;
    let spec = bench_campaign(setup);
    let mut best_cold = Duration::MAX;
    let mut best_warm = Duration::MAX;
    let mut last_stats = StoreStats::default();
    for _ in 0..setup.reps.max(1) {
        let (cold, warm, stats) = time_cold_warm(&spec)?;
        best_cold = best_cold.min(cold);
        best_warm = best_warm.min(warm);
        last_stats = stats;
    }
    let cold_ms = best_cold.as_secs_f64() * 1e3;
    let warm_ms = best_warm.as_secs_f64() * 1e3;
    Ok(BenchReport {
        setup: *setup,
        single_cell_millis: single.as_secs_f64() * 1e3,
        cold_campaign_millis: cold_ms,
        warm_campaign_millis: warm_ms,
        warm_speedup: cold_ms / warm_ms,
        store: last_stats,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_bench_produces_a_sane_report() {
        let report = run_perf_bench(&BenchSetup::smoke()).expect("bench runs");
        assert!(report.single_cell_millis > 0.0);
        assert!(report.cold_campaign_millis > 0.0);
        assert!(report.warm_campaign_millis > 0.0);
        assert!(report.warm_speedup > 0.0);
        assert!(report.store.hits > 0, "warm run must hit the store");
        let json = serde_json::to_string_pretty(&report).expect("serialises");
        assert!(json.contains("warm_speedup"), "{json}");
    }
}
