//! The perf-regression harness behind `critic bench` and the
//! `perf_regression` Criterion suite.
//!
//! Two measurements, chosen to bracket the hot paths this workspace
//! optimises:
//!
//! * **single-cell latency** — one app, cold: generate, profile, simulate
//!   baseline and the CritIC scheme. Covers the simulator's scratch-buffer
//!   reuse and the single-pass fanout computation.
//! * **cold vs warm campaign** — the same full grid run twice against one
//!   [`ArtifactStore`]: the first (cold) run populates the store, the
//!   second (warm) run is served worlds, profiles, and baseline
//!   simulations from it. The ratio is the store's leverage; a warm run
//!   slower than cold is a memoization regression.
//!
//! [`run_perf_bench`] packages both into a serialisable [`BenchReport`]
//! that the CLI writes as `BENCH_*.json` and CI gates on.

use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use critic_core::campaign::{run_campaign_with_store, CampaignSpec, Scheme};
use critic_core::design::DesignPoint;
use critic_core::disk::DiskStoreStats;
use critic_core::runner::Workbench;
use critic_core::store::{ArtifactStore, StoreStats};
use critic_core::RunError;
use critic_obs::{CycleLedger, Telemetry};
use critic_pipeline::{SimScratch, Simulator};
use critic_workloads::suite::Suite;
use serde::Serialize;

/// Why a bench measurement could not produce a number.
#[derive(Debug)]
pub enum BenchError {
    /// The pipeline itself failed.
    Run(RunError),
    /// The grid ran but some cells failed; a perf number over a
    /// half-failed grid is meaningless, so the harness refuses to report
    /// one. Carries the campaign's rendered summary.
    FailedCells(String),
    /// The probe cell's cycle ledger did not partition the run — the
    /// observability invariant the bench-smoke CI job gates on.
    LedgerViolation(String),
    /// Harness infrastructure failed: an unusable scratch directory or
    /// store, an unspawnable drill child.
    Io(String),
}

impl fmt::Display for BenchError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BenchError::Run(e) => write!(f, "{e}"),
            BenchError::FailedCells(summary) => {
                write!(f, "bench grid had failing cells:\n{summary}")
            }
            BenchError::LedgerViolation(msg) => write!(f, "{msg}"),
            BenchError::Io(msg) => write!(f, "{msg}"),
        }
    }
}

impl std::error::Error for BenchError {}

impl From<RunError> for BenchError {
    fn from(e: RunError) -> Self {
        BenchError::Run(e)
    }
}

/// Grid parameters for one perf measurement.
#[derive(Debug, Clone, Copy, Serialize)]
pub struct BenchSetup {
    /// Apps in the campaign grid (taken from the Mobile suite in order).
    pub apps: usize,
    /// Schemes in the campaign grid (taken from `critic`, `opp16`,
    /// `hoist` in order).
    pub schemes: usize,
    /// Dynamic instructions per trace.
    pub trace_len: usize,
    /// Cold/warm pairs measured; the report keeps the best of each.
    pub reps: usize,
}

impl BenchSetup {
    /// The full measurement the committed `BENCH_*.json` files record.
    pub fn full() -> BenchSetup {
        BenchSetup {
            apps: 4,
            schemes: 3,
            trace_len: 40_000,
            reps: 3,
        }
    }

    /// A scaled-down grid for CI smoke runs: same shape, small enough to
    /// finish in seconds.
    pub fn smoke() -> BenchSetup {
        BenchSetup {
            apps: 2,
            schemes: 2,
            trace_len: 10_000,
            reps: 1,
        }
    }
}

/// One measured bench run, serialised to `BENCH_*.json`.
#[derive(Debug, Clone, Serialize)]
pub struct BenchReport {
    /// The grid that was measured.
    pub setup: BenchSetup,
    /// One cold cell end-to-end: generate, profile, baseline + CritIC runs.
    pub single_cell_millis: f64,
    /// Full-grid campaign against an empty store (best of `reps`).
    pub cold_campaign_millis: f64,
    /// The same campaign re-run against the populated store (best of
    /// `reps`).
    pub warm_campaign_millis: f64,
    /// `cold_campaign_millis / warm_campaign_millis`.
    pub warm_speedup: f64,
    /// The warm campaign re-measured with telemetry enabled (best of
    /// `reps`), against its own freshly warmed store.
    pub warm_telemetry_campaign_millis: f64,
    /// `(warm_telemetry - warm) / warm`: the fractional cost of enabling
    /// telemetry on the warm path, measured in-process so both sides see
    /// the same machine state. The observability layer's budget is <5%.
    pub telemetry_overhead_frac: f64,
    /// Full-grid campaign against an empty *persistent* store (best of
    /// `reps`): the cold half of the restart measurement.
    pub restart_cold_campaign_millis: f64,
    /// The same campaign re-run against a **fresh in-memory store over the
    /// same directory** — the moral equivalent of a process restart: every
    /// profile and baseline must come off disk (best of `reps`).
    pub restart_warm_campaign_millis: f64,
    /// `restart_cold_campaign_millis / restart_warm_campaign_millis`: the
    /// durable tier's leverage across a restart.
    pub restart_warm_speedup: f64,
    /// Disk-tier counters after the restart-warm pass: hits must be
    /// non-zero or the persistent store did nothing.
    pub disk: DiskStoreStats,
    /// The probe cell's baseline cycle ledger; recorded so the report
    /// itself witnesses the partition invariant (`sum == cycles`), which
    /// [`run_perf_bench`] enforces before reporting.
    pub ledger: CycleLedger,
    /// Store counters after the last cold/warm pair: how much was built
    /// versus served from cache.
    pub store: StoreStats,
}

/// Distinguishes concurrently-running restart measurements' store dirs.
static STORE_DIR_COUNTER: AtomicU64 = AtomicU64::new(0);

/// The campaign grid a bench run measures.
pub fn bench_campaign(setup: &BenchSetup) -> CampaignSpec {
    let apps = Suite::Mobile.apps().into_iter().take(setup.apps).collect();
    let schemes = [
        Scheme::new("critic", DesignPoint::critic()),
        Scheme::new("opp16", DesignPoint::opp16()),
        Scheme::new("hoist", DesignPoint::hoist()),
    ]
    .into_iter()
    .take(setup.schemes)
    .collect();
    let mut spec = CampaignSpec::new(apps, schemes, setup.trace_len);
    // Perf numbers must not depend on the ambient CRITIC_TELEMETRY: the
    // cold/warm pair always runs silent; the telemetry pass opts in
    // explicitly.
    spec.telemetry = Telemetry::off();
    spec
}

/// Times one cold cell end-to-end: world generation, profiling, and the
/// baseline + CritIC simulations. Also re-simulates the baseline with the
/// cycle ledger (outside the timed window) and enforces the partition
/// invariant, returning the audited ledger alongside the latency.
///
/// # Errors
///
/// Propagates any pipeline failure as [`BenchError::Run`]; a ledger that
/// does not sum to the run's cycles is [`BenchError::LedgerViolation`].
pub fn time_single_cell(trace_len: usize) -> Result<(Duration, CycleLedger), BenchError> {
    let app = &Suite::Mobile.apps()[0];
    let started = Instant::now();
    let mut bench = Workbench::try_new(app, trace_len)?;
    let base = bench.try_run(&DesignPoint::baseline())?;
    let run = bench.try_run(&DesignPoint::critic())?;
    assert!(run.sim.speedup_over(&base.sim) > 0.0);
    let elapsed = started.elapsed();

    let point = DesignPoint::baseline();
    let mut scratch = SimScratch::new();
    let (audited, ledger) = Simulator::new(point.cpu_config(), point.mem_config()).run_with_ledger(
        bench.baseline_trace(),
        bench.baseline_fanout(),
        &mut scratch,
    );
    ledger
        .check(audited.cycles)
        .map_err(BenchError::LedgerViolation)?;
    if audited != base.sim {
        return Err(BenchError::LedgerViolation(format!(
            "ledger-audited baseline diverged from the plain run \
             ({} vs {} cycles)",
            audited.cycles, base.sim.cycles
        )));
    }
    Ok((elapsed, ledger))
}

/// Times a cold campaign and a warm re-run over one shared store.
///
/// # Errors
///
/// Returns [`BenchError::Run`] on campaign-level failures and
/// [`BenchError::FailedCells`] when any cell of either run failed.
pub fn time_cold_warm(spec: &CampaignSpec) -> Result<(Duration, Duration, StoreStats), BenchError> {
    let store = Arc::new(ArtifactStore::new());
    let started = Instant::now();
    let cold_summary = run_campaign_with_store(spec, &store)?;
    let cold = started.elapsed();
    let started = Instant::now();
    let warm_summary = run_campaign_with_store(spec, &store)?;
    let warm = started.elapsed();
    for summary in [&cold_summary, &warm_summary] {
        if !summary.all_ok() {
            return Err(BenchError::FailedCells(summary.render()));
        }
    }
    Ok((cold, warm, store.stats()))
}

/// Times a cold campaign against an empty persistent store, then — after
/// dropping every in-memory artifact — a restart-warm campaign against a
/// fresh store over the same directory. The second run can only be fast if
/// the *disk* tier serves it: this is the committed report's witness that
/// durability survives a process boundary.
///
/// # Errors
///
/// Returns [`BenchError::Io`] when the scratch store directory is
/// unusable, [`BenchError::Run`] on campaign-level failures, and
/// [`BenchError::FailedCells`] when any cell of either run failed.
pub fn time_restart_warm(
    spec: &CampaignSpec,
) -> Result<(Duration, Duration, DiskStoreStats), BenchError> {
    let dir = std::env::temp_dir().join(format!(
        "critic_bench_store_{}_{}",
        std::process::id(),
        STORE_DIR_COUNTER.fetch_add(1, Ordering::Relaxed)
    ));
    let open = |dir: &std::path::Path| -> Result<Arc<ArtifactStore>, BenchError> {
        ArtifactStore::persistent(dir, None, Telemetry::off())
            .map(Arc::new)
            .map_err(|e| BenchError::Io(e.to_string()))
    };
    let cold_store = open(&dir)?;
    let started = Instant::now();
    let cold_summary = run_campaign_with_store(spec, &cold_store)?;
    let cold = started.elapsed();
    drop(cold_store);

    let warm_store = open(&dir)?;
    let started = Instant::now();
    let warm_summary = run_campaign_with_store(spec, &warm_store)?;
    let warm = started.elapsed();
    let disk = warm_store.stats().disk.unwrap_or_default();
    let _ = std::fs::remove_dir_all(&dir);
    for summary in [&cold_summary, &warm_summary] {
        if !summary.all_ok() {
            return Err(BenchError::FailedCells(summary.render()));
        }
    }
    Ok((cold, warm, disk))
}

/// Times one warm campaign pass with telemetry enabled: the store is
/// pre-warmed by a silent cold run (untimed), then the timed pass records
/// spans on every cell. Comparing against the silent warm time from the
/// same process bounds the observability layer's overhead.
///
/// # Errors
///
/// Returns [`BenchError::Run`] on campaign-level failures and
/// [`BenchError::FailedCells`] when any cell failed.
pub fn time_warm_with_telemetry(spec: &CampaignSpec) -> Result<Duration, BenchError> {
    let store = Arc::new(ArtifactStore::new());
    let warmup = run_campaign_with_store(spec, &store)?;
    let mut instrumented = spec.clone();
    instrumented.telemetry = Telemetry::enabled();
    let started = Instant::now();
    let timed = run_campaign_with_store(&instrumented, &store)?;
    let elapsed = started.elapsed();
    for summary in [&warmup, &timed] {
        if !summary.all_ok() {
            return Err(BenchError::FailedCells(summary.render()));
        }
    }
    Ok(elapsed)
}

/// Runs the full measurement: the single-cell probe plus `reps` cold/warm
/// campaign pairs (keeping the fastest of each, standard practice for
/// wall-clock benchmarks on noisy machines).
///
/// # Errors
///
/// Propagates any pipeline or campaign failure as a [`BenchError`].
pub fn run_perf_bench(setup: &BenchSetup) -> Result<BenchReport, BenchError> {
    let (single, ledger) = time_single_cell(setup.trace_len)?;
    let spec = bench_campaign(setup);
    let mut best_cold = Duration::MAX;
    let mut best_warm = Duration::MAX;
    let mut best_warm_telemetry = Duration::MAX;
    let mut best_restart_cold = Duration::MAX;
    let mut best_restart_warm = Duration::MAX;
    let mut last_stats = StoreStats::default();
    let mut last_disk = DiskStoreStats::default();
    for _ in 0..setup.reps.max(1) {
        let (cold, warm, stats) = time_cold_warm(&spec)?;
        best_cold = best_cold.min(cold);
        best_warm = best_warm.min(warm);
        best_warm_telemetry = best_warm_telemetry.min(time_warm_with_telemetry(&spec)?);
        let (restart_cold, restart_warm, disk) = time_restart_warm(&spec)?;
        best_restart_cold = best_restart_cold.min(restart_cold);
        best_restart_warm = best_restart_warm.min(restart_warm);
        last_stats = stats;
        last_disk = disk;
    }
    let cold_ms = best_cold.as_secs_f64() * 1e3;
    let warm_ms = best_warm.as_secs_f64() * 1e3;
    let warm_telemetry_ms = best_warm_telemetry.as_secs_f64() * 1e3;
    let restart_cold_ms = best_restart_cold.as_secs_f64() * 1e3;
    let restart_warm_ms = best_restart_warm.as_secs_f64() * 1e3;
    Ok(BenchReport {
        setup: *setup,
        single_cell_millis: single.as_secs_f64() * 1e3,
        cold_campaign_millis: cold_ms,
        warm_campaign_millis: warm_ms,
        warm_speedup: cold_ms / warm_ms,
        warm_telemetry_campaign_millis: warm_telemetry_ms,
        telemetry_overhead_frac: (warm_telemetry_ms - warm_ms) / warm_ms,
        restart_cold_campaign_millis: restart_cold_ms,
        restart_warm_campaign_millis: restart_warm_ms,
        restart_warm_speedup: restart_cold_ms / restart_warm_ms,
        disk: last_disk,
        ledger,
        store: last_stats,
    })
}

/// Parameters of the service-mode bench (`critic bench --service`).
#[derive(Debug, Clone, Copy, Serialize)]
pub struct ServiceBenchSetup {
    /// Dynamic instructions per cell.
    pub trace_len: usize,
    /// Worker threads in the in-process server.
    pub workers: usize,
    /// Submissions per client in the 8- and 64-client phases.
    pub requests_per_client: usize,
    /// Open-loop submissions per second per client in the measured phases.
    pub rate: f64,
}

impl ServiceBenchSetup {
    /// The committed `BENCH_pr7.json` measurement.
    pub fn full() -> ServiceBenchSetup {
        ServiceBenchSetup {
            trace_len: 8_000,
            workers: 4,
            requests_per_client: 8,
            rate: 8.0,
        }
    }

    /// Scaled down for CI smoke and tests.
    pub fn smoke() -> ServiceBenchSetup {
        ServiceBenchSetup {
            trace_len: 2_000,
            workers: 2,
            requests_per_client: 3,
            rate: 16.0,
        }
    }
}

/// One measured loadgen phase of the service bench.
#[derive(Debug, Clone, Serialize)]
pub struct ServicePhase {
    /// Concurrent clients.
    pub clients: usize,
    /// The phase's full loadgen report (latency percentiles included).
    pub report: crate::loadgen::LoadgenReport,
}

/// The service-mode bench report committed as `BENCH_pr7.json`.
#[derive(Debug, Clone, Serialize)]
pub struct ServiceBenchReport {
    /// The parameters measured.
    pub setup: ServiceBenchSetup,
    /// 8 concurrent clients at the nominal rate.
    pub clients_8: ServicePhase,
    /// 64 concurrent clients at the nominal rate.
    pub clients_64: ServicePhase,
    /// A deliberate 2× overload burst: rejections with retry hints are the
    /// *expected* outcome here, and their absence is the regression.
    pub overload: ServicePhase,
}

/// Runs one loadgen phase against an in-process server on `addr`.
fn service_phase(
    addr: &str,
    clients: usize,
    requests_per_client: usize,
    rate: f64,
    seed: u64,
) -> Result<ServicePhase, BenchError> {
    let mut config = crate::loadgen::LoadgenConfig::new(addr);
    config.clients = clients;
    config.requests_per_client = requests_per_client;
    config.rate = rate;
    config.seed = seed;
    let outcome = crate::loadgen::run_loadgen(&config)?;
    Ok(ServicePhase {
        clients,
        report: outcome.report,
    })
}

/// Measures the campaign service end to end, in process: an ephemeral-port
/// server over [`crate::serve::serve_on`], then 8-client, 64-client, and
/// 2× overload loadgen phases against it.
///
/// # Errors
///
/// Returns [`BenchError::Io`] when the listener cannot bind or a phase's
/// client mix is unusable.
pub fn run_service_bench(setup: &ServiceBenchSetup) -> Result<ServiceBenchReport, BenchError> {
    use critic_core::service::{CampaignService, ServiceConfig};
    use std::sync::atomic::{AtomicBool, Ordering};

    let capacity = 64;
    let rate = ((64.0 * setup.rate) as u64).max(8);
    let config = ServiceConfig {
        workers: setup.workers,
        queue_capacity: capacity,
        degrade_watermarks: [8, 24, 48],
        admission_rate: rate,
        admission_burst: rate,
        client_window: 32,
        breaker_threshold: 0,
        telemetry: Telemetry::off(),
        ..ServiceConfig::new(setup.trace_len)
    };
    let service = CampaignService::open(config).map_err(BenchError::Run)?;
    let listener = std::net::TcpListener::bind(("127.0.0.1", 0))
        .map_err(|e| BenchError::Io(format!("cannot bind service bench listener: {e}")))?;
    let addr = listener
        .local_addr()
        .map_err(|e| BenchError::Io(e.to_string()))?
        .to_string();
    let shutdown = Arc::new(AtomicBool::new(false));
    let server = {
        let service = service.clone();
        let shutdown = Arc::clone(&shutdown);
        std::thread::spawn(move || crate::serve::serve_on(listener, &service, &shutdown))
    };

    let clients_8 = service_phase(&addr, 8, setup.requests_per_client, setup.rate, 1)?;
    let clients_64 = service_phase(&addr, 64, setup.requests_per_client, setup.rate, 2)?;
    // Overload: 64 clients pushing 2x the token rate between them.
    let overload_rate = (rate as f64 * 2.0) / 64.0;
    let overload = service_phase(
        &addr,
        64,
        setup.requests_per_client,
        overload_rate.max(setup.rate * 2.0),
        3,
    )?;

    shutdown.store(true, Ordering::SeqCst);
    let _ = server.join();
    Ok(ServiceBenchReport {
        setup: *setup,
        clients_8,
        clients_64,
        overload,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_bench_produces_a_sane_report() {
        let report = run_perf_bench(&BenchSetup::smoke()).expect("bench runs");
        assert!(report.single_cell_millis > 0.0);
        assert!(report.cold_campaign_millis > 0.0);
        assert!(report.warm_campaign_millis > 0.0);
        assert!(report.warm_speedup > 0.0);
        assert!(report.store.hits > 0, "warm run must hit the store");
        assert!(report.restart_cold_campaign_millis > 0.0);
        assert!(report.restart_warm_campaign_millis > 0.0);
        assert!(report.restart_warm_speedup > 0.0);
        assert!(
            report.disk.disk_hits > 0,
            "the restart-warm run must be served from disk: {:?}",
            report.disk
        );
        assert_eq!(
            report.disk.saves, 0,
            "a fully warmed disk store rebuilds nothing: {:?}",
            report.disk
        );
        // The audited probe ledger is non-degenerate and already verified
        // against the run's cycle count inside run_perf_bench.
        assert!(report.ledger.total() > 0);
        assert!(report.ledger.commit > 0);
        // The overhead measurement is a wall-clock delta on a debug build
        // of a tiny grid, so only sanity is asserted here; the committed
        // release-mode BENCH report and CI hold the real <5% budget.
        assert!(report.warm_telemetry_campaign_millis > 0.0);
        assert!(report.telemetry_overhead_frac.is_finite());
        assert!(
            report.telemetry_overhead_frac < 1.0,
            "telemetry must not double the warm path even in debug: {:.3}",
            report.telemetry_overhead_frac
        );
        let json = serde_json::to_string_pretty(&report).expect("serialises");
        assert!(json.contains("warm_speedup"), "{json}");
        assert!(json.contains("telemetry_overhead_frac"), "{json}");
    }

    #[test]
    fn smoke_service_bench_measures_all_three_phases() {
        let report = run_service_bench(&ServiceBenchSetup::smoke()).expect("service bench runs");
        for phase in [&report.clients_8, &report.clients_64] {
            assert!(
                phase.report.done > 0,
                "phase with {} clients completed nothing: {:?}",
                phase.clients,
                phase.report
            );
            assert_eq!(
                phase.report.unanswered, 0,
                "every submission must terminate: {:?}",
                phase.report
            );
            assert!(phase.report.p50_ms > 0.0);
            assert!(phase.report.p99_ms >= phase.report.p50_ms);
        }
        // The overload phase must have answered everything it admitted.
        assert_eq!(report.overload.report.unanswered, 0);
        let json = serde_json::to_string_pretty(&report).expect("serialises");
        assert!(json.contains("p99_ms"), "{json}");
        assert!(json.contains("overload"), "{json}");
    }

    #[test]
    fn single_cell_probe_audits_the_ledger() {
        let (elapsed, ledger) = time_single_cell(8_000).expect("probe runs");
        assert!(elapsed.as_nanos() > 0);
        assert!(ledger.stall_for_i() + ledger.stall_for_rd() > 0);
        assert!(ledger.commit > 0);
    }
}
