//! Regenerates Fig. 1 (single-instruction criticality optimizations and the
//! critical-gap histogram) as a measured benchmark.

use criterion::{criterion_group, criterion_main, Criterion};
use critic_bench::{BENCH_APPS, BENCH_TRACE_LEN};
use critic_core::experiments;

fn fig1(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig1");
    group.sample_size(10);
    group.bench_function("fig1a_prefetch_and_prioritize", |b| {
        b.iter(|| experiments::fig1a(BENCH_TRACE_LEN, BENCH_APPS))
    });
    group.bench_function("fig1b_gap_histogram", |b| {
        b.iter(|| experiments::fig1b(BENCH_TRACE_LEN, BENCH_APPS))
    });
    group.finish();
}

criterion_group!(benches, fig1);
criterion_main!(benches);
