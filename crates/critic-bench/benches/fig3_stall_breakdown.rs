//! Regenerates Fig. 3 (critical-instruction stage profile and the
//! F.StallForI / F.StallForR+D split).

use criterion::{criterion_group, criterion_main, Criterion};
use critic_bench::{BENCH_APPS, BENCH_TRACE_LEN};
use critic_core::experiments;

fn fig3(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig3");
    group.sample_size(10);
    group.bench_function("fig3_stage_profile", |b| {
        b.iter(|| experiments::fig3(BENCH_TRACE_LEN, BENCH_APPS))
    });
    group.finish();
}

criterion_group!(benches, fig3);
criterion_main!(benches);
