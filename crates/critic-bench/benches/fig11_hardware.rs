//! Regenerates Fig. 11 (hardware fetch mechanisms vs and with CritIC).

use criterion::{criterion_group, criterion_main, Criterion};
use critic_bench::{BENCH_APPS, BENCH_TRACE_LEN};
use critic_core::experiments;

fn fig11(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig11");
    group.sample_size(10);
    group.bench_function("fig11_hardware_mechanisms", |b| {
        b.iter(|| experiments::fig11(BENCH_TRACE_LEN, BENCH_APPS))
    });
    group.finish();
}

criterion_group!(benches, fig11);
criterion_main!(benches);
