//! Regenerates Fig. 10 (design-space speedups, fetch-stall savings, and
//! energy gains).

use criterion::{criterion_group, criterion_main, Criterion};
use critic_bench::{BENCH_APPS, BENCH_TRACE_LEN};
use critic_core::experiments;

fn fig10(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig10");
    group.sample_size(10);
    group.bench_function("fig10_design_space", |b| {
        b.iter(|| experiments::fig10(BENCH_TRACE_LEN, BENCH_APPS))
    });
    group.finish();
}

criterion_group!(benches, fig10);
criterion_main!(benches);
