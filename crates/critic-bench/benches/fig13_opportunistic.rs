//! Regenerates Fig. 13 (OPP16 / Compress / CritIC / OPP16+CritIC).

use criterion::{criterion_group, criterion_main, Criterion};
use critic_bench::{BENCH_APPS, BENCH_TRACE_LEN};
use critic_core::experiments;

fn fig13(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig13");
    group.sample_size(10);
    group.bench_function("fig13_conversion_schemes", |b| {
        b.iter(|| experiments::fig13(BENCH_TRACE_LEN, BENCH_APPS))
    });
    group.finish();
}

criterion_group!(benches, fig13);
criterion_main!(benches);
