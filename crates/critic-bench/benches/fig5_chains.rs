//! Regenerates Fig. 5 (IC length/spread and unique-CritIC convertibility).

use criterion::{criterion_group, criterion_main, Criterion};
use critic_bench::{BENCH_APPS, BENCH_TRACE_LEN};
use critic_core::experiments;

fn fig5(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig5");
    group.sample_size(10);
    group.bench_function("fig5a_ic_shapes", |b| {
        b.iter(|| experiments::fig5a(BENCH_TRACE_LEN, BENCH_APPS))
    });
    group.bench_function("fig5b_unique_critics", |b| {
        b.iter(|| experiments::fig5b(BENCH_TRACE_LEN, BENCH_APPS))
    });
    group.finish();
}

criterion_group!(benches, fig5);
criterion_main!(benches);
