//! Regenerates Fig. 12 (sensitivity to CritIC length and to profiling
//! coverage).

use criterion::{criterion_group, criterion_main, Criterion};
use critic_bench::{BENCH_APPS, BENCH_TRACE_LEN};
use critic_core::experiments;

fn fig12(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig12");
    group.sample_size(10);
    group.bench_function("fig12a_chain_length", |b| {
        b.iter(|| experiments::fig12a(BENCH_TRACE_LEN, BENCH_APPS, &[3, 5, 7]))
    });
    group.bench_function("fig12b_profile_coverage", |b| {
        b.iter(|| experiments::fig12b(BENCH_TRACE_LEN, BENCH_APPS, &[0.33, 0.72, 1.0]))
    });
    group.finish();
}

criterion_group!(benches, fig12);
criterion_main!(benches);
