//! Regenerates Fig. 8 (approach-1 branch-pair switching on stock hardware,
//! folded into the Fig. 10 row set).

use criterion::{criterion_group, criterion_main, Criterion};
use critic_bench::{BENCH_APPS, BENCH_TRACE_LEN};
use critic_core::experiments;

fn fig8(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig8");
    group.sample_size(10);
    group.bench_function("fig8_branch_pair_switch", |b| {
        b.iter(|| experiments::fig10(BENCH_TRACE_LEN, BENCH_APPS))
    });
    group.finish();
}

criterion_group!(benches, fig8);
criterion_main!(benches);
