//! Perf-regression probes for the artifact store and the simulator hot
//! loop: single-cell latency, and a cold vs warm campaign over one shared
//! store. The `critic bench` subcommand measures the same pair and gates
//! CI on it; this Criterion target exists so the numbers also show up in
//! ordinary `cargo bench` sweeps.

use std::sync::Arc;

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use critic_bench::perf::{
    bench_campaign, sensitivity_campaign, time_cold_scalar, time_single_cell, BenchSetup,
};
use critic_core::{run_campaign_with_store, ArtifactStore};

fn perf_regression(c: &mut Criterion) {
    let setup = BenchSetup::smoke();
    let spec = bench_campaign(&setup);

    let mut group = c.benchmark_group("perf_regression");
    group.sample_size(5);
    group.bench_function("single_cell", |b| {
        b.iter(|| time_single_cell(setup.trace_len).expect("cell runs"))
    });
    group.bench_function("campaign_cold", |b| {
        b.iter(|| {
            let store = Arc::new(ArtifactStore::new());
            black_box(run_campaign_with_store(&spec, &store).expect("cold campaign"))
        })
    });
    // One priming run, then every iteration is served from the warm store.
    let store = Arc::new(ArtifactStore::new());
    run_campaign_with_store(&spec, &store).expect("priming campaign");
    group.bench_function("campaign_warm", |b| {
        b.iter(|| black_box(run_campaign_with_store(&spec, &store).expect("warm campaign")))
    });
    group.finish();
}

/// The cold path's two pipelines over the same sensitivity grid, as a
/// Criterion comparison group: `batched` is the lockstep multi-scheme
/// campaign (`critic bench`'s `cold_path.batched_millis`), `scalar` is the
/// per-cell reference pipeline it is gated against. Their ratio here
/// should track the committed report's `cold_speedup`.
fn cold_path(c: &mut Criterion) {
    let setup = BenchSetup::smoke();
    let spec = sensitivity_campaign(&setup);

    let mut group = c.benchmark_group("cold_path");
    group.sample_size(10);
    group.bench_function("batched", |b| {
        b.iter(|| {
            let store = Arc::new(ArtifactStore::new());
            black_box(run_campaign_with_store(&spec, &store).expect("batched campaign"))
        })
    });
    group.bench_function("scalar", |b| {
        b.iter(|| black_box(time_cold_scalar(&spec).expect("scalar sweep")))
    });
    group.finish();
}

criterion_group!(benches, perf_regression, cold_path);
criterion_main!(benches);
