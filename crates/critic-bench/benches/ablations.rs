//! Ablations of DESIGN.md §5: the IC criticality metric, the fanout
//! threshold, and the all-or-nothing Thumb rule.

use criterion::{criterion_group, criterion_main, Criterion};
use critic_bench::BENCH_TRACE_LEN;
use critic_core::design::DesignPoint;
use critic_core::runner::Workbench;
use critic_profiler::{Profiler, ProfilerConfig};
use critic_workloads::suite::Suite;

/// Sweeps the chain average-fanout threshold and reports coverage.
fn threshold_sweep() -> Vec<(f64, f64)> {
    let app = &Suite::Mobile.apps()[0];
    let bench = Workbench::new(app, BENCH_TRACE_LEN);
    [4.0, 6.0, 8.0, 12.0, 16.0]
        .iter()
        .map(|&threshold| {
            let profile = Profiler::new(ProfilerConfig {
                chain_avg_threshold: threshold,
                profile_fraction: 1.0,
                ..Default::default()
            })
            .build_profile(&bench.program, bench.baseline_trace());
            (threshold, profile.dynamic_coverage)
        })
        .collect()
}

/// Compares the CDP switch against the branch-pair switch.
fn switch_mechanism() -> (f64, f64) {
    let app = &Suite::Mobile.apps()[0];
    let mut bench = Workbench::new(app, BENCH_TRACE_LEN);
    let base = bench.run(&DesignPoint::baseline());
    let cdp = bench.run(&DesignPoint::critic());
    let branch = bench.run(&DesignPoint::critic_branch_switch());
    (
        cdp.sim.speedup_over(&base.sim),
        branch.sim.speedup_over(&base.sim),
    )
}

fn ablations(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablations");
    group.sample_size(10);
    group.bench_function("threshold_sweep", |b| b.iter(threshold_sweep));
    group.bench_function("switch_mechanism", |b| b.iter(switch_mechanism));
    group.finish();
}

criterion_group!(benches, ablations);
criterion_main!(benches);
