//! Streaming front-end for the data-oriented cycle loop: bounded memory,
//! bit-identical results.
//!
//! [`Simulator::run_streamed`] consumes a [`TraceStream`] window-at-a-time
//! instead of a materialized [`critic_workloads::Trace`] + `DecodedTrace`
//! pair. Decoded columns and per-instruction timestamp tables live in
//! power-of-two *rings* sized to the live span of the pipeline — the range
//! between the oldest un-committed instruction and the fetch frontier plus
//! one stream window — so peak memory is O(window + look-ahead + ROB),
//! independent of the trace length.
//!
//! # Why the results are bit-identical
//!
//! * **Columns**: every entry is decoded by the same `decode_entry` the
//!   materialized `DecodedTrace` uses, and the stream's entries and
//!   fanout values are themselves bit-identical to the materialized
//!   expansion (asserted by `critic-workloads`' own differential tests).
//! * **Ring reads**: the cycle loop only ever indexes instructions in the
//!   live span — ROB entries, fetch-queue entries, and the fetch frontier
//!   are all ≥ the eviction floor — except dependence lookups in the
//!   wakeup scan, which may point arbitrarily far back. For those,
//!   `done_of` substitutes `0` for any dependence older than the floor:
//!   an evicted dependence is *committed*, so its true completion time is
//!   ≤ `now` at every subsequent read, and substituting `0` changes
//!   neither the `UNSET` classification (evicted instructions always have
//!   a completion time) nor the `max` over the dependence set when that
//!   max is in the future (a future completion can only come from a live,
//!   in-ring dependence). The wakeup schedule is therefore cycle-exact.
//! * **Eviction floor**: advanced only at feed time, to the ROB head (or
//!   the dispatch frontier when the ROB is empty, i.e. everything older
//!   has committed). Slots are only overwritten during a feed, and the
//!   capacity check guarantees the overwritten index is below the floor
//!   just computed, so no live slot is ever clobbered.
//!
//! The format-switch CDP pseudo-instructions never enter the ROB, so the
//! distance between the ROB head and the fetch frontier is *not* bounded
//! by the ROB capacity alone; the rings grow by doubling (re-placing the
//! live span under the new mask) in the rare case a CDP-dense region
//! stretches the span past the initial capacity.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use critic_mem::MemSystem;
use critic_obs::{CycleClass, CycleLedger};
use critic_workloads::TraceStream;

use crate::bpu::Bpu;
use crate::crit::CritTable;
use crate::sim::{
    decode_entry, fill, insert_sorted, FuUse, IndexRing, Simulator, SupplyStall, BR_CALL, BR_COND,
    BR_RET, F_BRANCH, F_CALL, F_CDP, F_LOAD, F_MEM, F_SEQ, F_TAKEN, K_FLOAT_DIV, K_INT_DIV, K_MEM,
    UNSET,
};
use crate::stats::{FetchStalls, SimResult, StageBreakdown};

/// Bytes per ring slot across every column and timestamp ring (used for
/// capacity-based accounting: `Vec` capacity × element size, summed).
const BYTES_PER_SLOT: usize = 1 + 4 + 1 + 1 + 12 + 8 + 8 + 8 + 1 // decoded columns
    + 4 // fanout
    + 8 + 4 + 8 + 8 + 8 + 8 + 8; // timestamp tables

/// Memory accounting for one streamed run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StreamRunStats {
    /// Peak bytes resident across the run: ring capacities, pipeline
    /// queues, and the stream's own expansion state (sampled at every
    /// feed, which is the only point the footprint can grow).
    pub peak_resident_bytes: usize,
    /// Final ring capacity in slots.
    pub ring_capacity: usize,
    /// How many times the rings doubled mid-run (0 unless a CDP-dense
    /// region stretched the live span past the initial capacity).
    pub grows: u32,
}

/// Reusable working memory for [`Simulator::run_streamed`]: the ring
/// counterpart of [`crate::SimScratch`]. Keep one per worker and reuse it
/// across runs; rings are recycled, never reallocated once warm.
#[derive(Debug, Default)]
pub struct StreamScratch {
    // Decoded columns, ring-indexed by `i & mask`.
    kind: Vec<u8>,
    lat: Vec<u32>,
    flags: Vec<u8>,
    bytes: Vec<u8>,
    deps: Vec<[u32; 3]>,
    pc: Vec<u64>,
    mem_addr: Vec<u64>,
    target: Vec<u64>,
    br_class: Vec<u8>,
    fanout: Vec<u32>,
    // Timestamp tables, ring-indexed. `done_at` is *unshifted* here (slot
    // `i & mask` holds insn `i`); the sentinel and eviction substitution
    // live in [`done_of`].
    fetched_at: Vec<u64>,
    supply_stall: Vec<u32>,
    blocked_at_fetch: Vec<u64>,
    blocked_at_decode: Vec<u64>,
    decoded_at: Vec<u64>,
    issued_at: Vec<u64>,
    done_at: Vec<u64>,
    // Pipeline queues — identical to `SimScratch`.
    waiting: Vec<u32>,
    wake: BinaryHeap<Reverse<(u64, u32)>>,
    ready_pool: Vec<u32>,
    rob: IndexRing,
    ready: Vec<u32>,
    int_div_free: Vec<u64>,
    float_div_free: Vec<u64>,
    models: Option<(MemSystem, Bpu, CritTable)>,
}

impl StreamScratch {
    /// Empty scratch; rings grow on first use and are then recycled.
    pub fn new() -> StreamScratch {
        StreamScratch::default()
    }

    /// Ensures every ring holds at least `cap` slots (power of two),
    /// preserving the live span `[lo, hi)` under the new mask.
    fn ensure_capacity(&mut self, cap: usize, lo: usize, hi: usize) {
        let cap = cap.next_power_of_two();
        if self.kind.len() >= cap {
            return;
        }
        let old_mask = self.kind.len().wrapping_sub(1);
        regrow(&mut self.kind, old_mask, cap, lo, hi);
        regrow(&mut self.lat, old_mask, cap, lo, hi);
        regrow(&mut self.flags, old_mask, cap, lo, hi);
        regrow(&mut self.bytes, old_mask, cap, lo, hi);
        regrow(&mut self.deps, old_mask, cap, lo, hi);
        regrow(&mut self.pc, old_mask, cap, lo, hi);
        regrow(&mut self.mem_addr, old_mask, cap, lo, hi);
        regrow(&mut self.target, old_mask, cap, lo, hi);
        regrow(&mut self.br_class, old_mask, cap, lo, hi);
        regrow(&mut self.fanout, old_mask, cap, lo, hi);
        regrow(&mut self.fetched_at, old_mask, cap, lo, hi);
        regrow(&mut self.supply_stall, old_mask, cap, lo, hi);
        regrow(&mut self.blocked_at_fetch, old_mask, cap, lo, hi);
        regrow(&mut self.blocked_at_decode, old_mask, cap, lo, hi);
        regrow(&mut self.decoded_at, old_mask, cap, lo, hi);
        regrow(&mut self.issued_at, old_mask, cap, lo, hi);
        regrow(&mut self.done_at, old_mask, cap, lo, hi);
    }

    /// Bytes resident in the rings and pipeline queues.
    fn resident_bytes(&self) -> usize {
        self.kind.capacity() * BYTES_PER_SLOT
            + (self.waiting.capacity() + self.ready_pool.capacity() + self.ready.capacity()) * 4
            + self.wake.capacity() * 16
            + self.rob.resident_bytes()
            + (self.int_div_free.capacity() + self.float_div_free.capacity()) * 8
    }
}

/// Copies the live ring span `[lo, hi)` into a freshly-sized ring.
fn regrow<T: Copy + Default>(
    v: &mut Vec<T>,
    old_mask: usize,
    new_cap: usize,
    lo: usize,
    hi: usize,
) {
    let mut next = vec![T::default(); new_cap];
    if !v.is_empty() {
        let new_mask = new_cap - 1;
        for i in lo..hi {
            next[i & new_mask] = v[i & old_mask];
        }
    }
    *v = next;
}

/// Completion-time lookup through the ring for a *shifted* dependence
/// index (`0` = always-done sentinel, insn `i` = slot `i + 1`), with the
/// eviction substitution documented in the module header.
#[inline]
fn done_of(done_at: &[u64], mask: usize, evict_floor: usize, d: u32) -> u64 {
    if d == 0 {
        return 0;
    }
    let i = (d - 1) as usize;
    if i < evict_floor {
        0
    } else {
        done_at[i & mask]
    }
}

impl Simulator {
    /// Runs a [`TraceStream`] to completion with bounded memory, returning
    /// the timing result, the per-cycle ledger, and the run's memory
    /// accounting. Results are bit-identical to decoding the materialized
    /// trace and calling [`Simulator::run_decoded`] (asserted by this
    /// module's differential tests and the repo-level battery).
    ///
    /// The stream supplies both entries and their exact direct fanout, so
    /// no caller-side `compute_fanout` pass (or trace materialization) is
    /// needed. Cone fanout is not consumed here — open sim-bound streams
    /// with [`critic_workloads::StreamConfig::cone_window`] `= None` to
    /// skip that work.
    ///
    /// # Panics
    ///
    /// Panics if the stream has already emitted entries (the run must see
    /// the whole trace).
    pub fn run_streamed(
        &self,
        stream: &mut TraceStream<'_>,
        scratch: &mut StreamScratch,
    ) -> (SimResult, CycleLedger, StreamRunStats) {
        assert_eq!(stream.emitted(), 0, "run_streamed requires a fresh stream");
        let cfg = self.cpu_config();
        let (mut mem, mut bpu, mut crit_table) = match scratch.models.take() {
            Some((mut mem, mut bpu, mut crit_table)) => {
                mem.reset_to(self.mem_config());
                bpu.reset_to(cfg.bpu_entries, cfg.bpu_history_bits, cfg.ras_depth);
                crit_table.reset_to(cfg.bpu_entries, cfg.crit_threshold);
                (mem, bpu, crit_table)
            }
            None => (
                MemSystem::new(self.mem_config()),
                Bpu::new(cfg.bpu_entries, cfg.bpu_history_bits, cfg.ras_depth),
                CritTable::new(cfg.bpu_entries, cfg.crit_threshold),
            ),
        };

        let n = stream.total_len();
        let width = cfg.width;
        let rob_cap = cfg.rob_entries;
        let iq_cap = cfg.iq_entries;
        let prioritize = cfg.prioritize_critical;
        let crit_threshold = cfg.crit_threshold;
        let redirect_penalty = u64::from(cfg.redirect_penalty);
        let cdp_stall = u64::from(cfg.cdp_bubble.saturating_sub(1));
        let pool = &cfg.fu;
        let fetch_buffer = cfg.fetch_buffer;
        let insn_cap = cfg.fetch_width * 2;
        let feed_ahead = insn_cap as usize;
        let taken_resume = 1 + u64::from(cfg.taken_bubble);
        let icache_hit = 2u64; // L1I hit latency from MemConfig geometry

        // Initial ring capacity: the steady-state live span (one stream
        // window ahead of fetch, the fetch buffer, the ROB) plus headroom
        // for the ROB-invisible CDPs interleaved in it. A window larger
        // than the trace contributes at most the trace.
        scratch.ensure_capacity(
            (stream.window().min(n) + fetch_buffer + rob_cap + feed_ahead + 64).next_power_of_two(),
            0,
            0,
        );
        scratch.waiting.clear();
        scratch.wake.clear();
        scratch.ready_pool.clear();
        scratch.rob.reset(rob_cap);
        scratch.ready.clear();
        fill(&mut scratch.int_div_free, cfg.fu.int_div as usize, 0);
        fill(&mut scratch.float_div_free, cfg.fu.float_div as usize, 0);
        let mut stats = StreamRunStats {
            peak_resident_bytes: 0,
            ring_capacity: scratch.kind.len(),
            grows: 0,
        };

        let mut mask = scratch.kind.len() - 1;
        // Entries decoded into the rings so far (absolute).
        let mut filled = 0usize;
        // Ring indices below this are committed and may be overwritten.
        let mut evict_floor = 0usize;

        let mut blocked_cum = 0u64;
        let mut iq_len = 0usize;
        let mut fetch_idx = 0usize;
        let mut fq_head = 0usize;
        let mut current_line: Option<u64> = None;
        let mut fetch_resume_at = 0u64;
        let mut resume_reason = SupplyStall::None;
        let mut fetch_blocked_on: Option<u32> = None;
        let mut pending_supply = 0u32;
        let mut dispatch_block_until = 0u64;

        let mut now = 0u64;
        let mut head_since = 0u64;
        let mut ledger = CycleLedger::new();
        let mut stage_all = StageBreakdown::default();
        let mut stage_critical = StageBreakdown::default();
        let mut committed = 0u64;
        let mut cdp_switches = 0u64;
        let mut thumb_fetched = 0u64;

        let hard_cap = (n as u64).saturating_mul(1000).max(1_000_000);

        while fetch_idx < n || fq_head < fetch_idx || !scratch.rob.is_empty() {
            // ---- feed ----
            // Keep the decode frontier one fetch group ahead of fetch.
            // This is the only point slots are overwritten or the
            // footprint can change, so the floor advance, the capacity
            // check, and the peak sample all live here.
            let feed_target = n.min(fetch_idx + feed_ahead);
            if filled < feed_target {
                evict_floor =
                    evict_floor.max(scratch.rob.front().unwrap_or(fq_head as u32) as usize);
                while filled < feed_target {
                    let Some(w) = stream.next_window() else {
                        unreachable!("stream ended at {filled} before its total_len {n}");
                    };
                    let need = filled + w.entries.len() - evict_floor;
                    if need > scratch.kind.len() {
                        // Mid-window growth: re-place the live span.
                        // (Borrow note: `w` borrows `stream`, not
                        // `scratch`, so the rings are free to move.)
                        scratch.ensure_capacity(need, evict_floor, filled);
                        mask = scratch.kind.len() - 1;
                        stats.grows += 1;
                        stats.ring_capacity = scratch.kind.len();
                    }
                    for (k, e) in w.entries.iter().enumerate() {
                        let d = decode_entry(e);
                        let s = filled & mask;
                        scratch.kind[s] = d.kind;
                        scratch.lat[s] = d.lat;
                        scratch.flags[s] = d.flags;
                        scratch.bytes[s] = d.bytes;
                        scratch.deps[s] = d.deps;
                        scratch.pc[s] = d.pc;
                        scratch.mem_addr[s] = d.mem_addr;
                        scratch.target[s] = d.target;
                        scratch.br_class[s] = d.br_class;
                        scratch.fanout[s] = w.fanout[k];
                        filled += 1;
                    }
                }
                let resident = scratch.resident_bytes() + stream.resident_bytes();
                stats.peak_resident_bytes = stats.peak_resident_bytes.max(resident);
            }
            let StreamScratch {
                kind: kind_r,
                lat: lat_r,
                flags: flags_r,
                bytes: bytes_r,
                deps: deps_r,
                pc: pc_r,
                mem_addr: addr_r,
                target: target_r,
                br_class: br_class_r,
                fanout: fanout_r,
                fetched_at,
                supply_stall,
                blocked_at_fetch,
                blocked_at_decode,
                decoded_at,
                issued_at,
                done_at,
                waiting,
                wake,
                ready_pool,
                rob,
                ready,
                int_div_free,
                float_div_free,
                ..
            } = scratch;

            // ---- commit ----
            let mut commits = 0;
            while commits < width {
                let Some(head) = rob.front() else { break };
                let hi = head as usize;
                let done = done_at[hi & mask];
                if done > now {
                    break;
                }
                rob.pop_front();
                commits += 1;
                committed += 1;
                let flags = flags_r[hi & mask];
                let buffer_total = decoded_at[hi & mask]
                    .saturating_sub(fetched_at[hi & mask])
                    .saturating_sub(1);
                let buffer_blocked =
                    (blocked_at_decode[hi & mask] - blocked_at_fetch[hi & mask]).min(buffer_total);
                let buffer = buffer_total - buffer_blocked;
                let issue_wait = issued_at[hi & mask].saturating_sub(decoded_at[hi & mask]);
                let execute = done.saturating_sub(issued_at[hi & mask]);
                let commit_wait = now.saturating_sub(done.max(head_since)) + buffer_blocked;
                head_since = now;
                stage_all.add(
                    u64::from(supply_stall[hi & mask]),
                    buffer,
                    1,
                    issue_wait,
                    execute,
                    commit_wait,
                );
                if fanout_r[hi & mask] >= crit_threshold {
                    stage_critical.add(
                        u64::from(supply_stall[hi & mask]),
                        buffer,
                        1,
                        issue_wait,
                        execute,
                        commit_wait,
                    );
                }
                crit_table.train(pc_r[hi & mask], fanout_r[hi & mask]);
                if flags & F_LOAD != 0 {
                    mem.train_load_criticality(pc_r[hi & mask], fanout_r[hi & mask]);
                }
                if flags & F_CALL != 0 {
                    mem.observe_call(target_r[hi & mask], now);
                }
            }

            // ---- issue ----
            let mut any_issued = false;
            if iq_len > 0 {
                if !waiting.is_empty() {
                    waiting.retain(|&i| {
                        let d = deps_r[i as usize & mask];
                        let ra = done_of(done_at, mask, evict_floor, d[0])
                            .max(done_of(done_at, mask, evict_floor, d[1]))
                            .max(done_of(done_at, mask, evict_floor, d[2]));
                        if ra == UNSET {
                            return true;
                        }
                        if ra <= now {
                            insert_sorted(ready_pool, i);
                        } else {
                            wake.push(Reverse((ra, i)));
                        }
                        false
                    });
                }
                while let Some(&Reverse((ra, i))) = wake.peek() {
                    if ra > now {
                        break;
                    }
                    wake.pop();
                    insert_sorted(ready_pool, i);
                }
                let selection: &[u32] = if prioritize {
                    ready.clear();
                    ready.extend_from_slice(ready_pool);
                    ready.sort_by_key(|&i| !crit_table.is_critical(pc_r[i as usize & mask]));
                    ready
                } else {
                    ready_pool
                };
                let mut issued_count = 0u32;
                let mut used = FuUse::default();
                for &i in selection {
                    if issued_count >= width {
                        break;
                    }
                    let hi = i as usize;
                    let kind = kind_r[hi & mask];
                    if !used.try_take(kind, pool, now, int_div_free, float_div_free) {
                        continue;
                    }
                    let latency = if kind == K_MEM {
                        let addr = addr_r[hi & mask];
                        if flags_r[hi & mask] & F_LOAD != 0 {
                            let lat = mem.data_access(addr, now);
                            mem.observe_load(pc_r[hi & mask], addr, now);
                            lat
                        } else {
                            let _ = mem.data_access(addr, now);
                            u64::from(lat_r[hi & mask])
                        }
                    } else {
                        u64::from(lat_r[hi & mask])
                    };
                    issued_at[hi & mask] = now;
                    let done = now + latency;
                    done_at[hi & mask] = done;
                    if kind == K_INT_DIV {
                        if let Some(free) = int_div_free.iter_mut().find(|f| **f <= now) {
                            *free = done;
                        }
                    } else if kind == K_FLOAT_DIV {
                        if let Some(free) = float_div_free.iter_mut().find(|f| **f <= now) {
                            *free = done;
                        }
                    }
                    if fetch_blocked_on == Some(i) {
                        fetch_blocked_on = None;
                        fetch_resume_at = done + redirect_penalty;
                        resume_reason = SupplyStall::Branch;
                    }
                    any_issued = true;
                    issued_count += 1;
                }
                if any_issued {
                    ready_pool.retain(|&i| issued_at[i as usize & mask] == UNSET);
                    iq_len -= issued_count as usize;
                }
            }

            // ---- dispatch (decode + rename) ----
            let fq_was = fq_head;
            let mut dispatched_this_cycle = 0u32;
            let mut backend_blocked = false;
            if now >= dispatch_block_until {
                let mut dispatched = 0;
                while dispatched < width && fq_head < fetch_idx {
                    let hi = fq_head;
                    if now < fetched_at[hi & mask] + 1 {
                        break; // still in the decode pipe
                    }
                    if flags_r[hi & mask] & F_CDP != 0 {
                        fq_head += 1;
                        decoded_at[hi & mask] = now;
                        blocked_at_decode[hi & mask] = blocked_cum;
                        done_at[hi & mask] = now;
                        cdp_switches += 1;
                        dispatch_block_until = now + cdp_stall;
                        continue;
                    }
                    if rob.len() >= rob_cap || iq_len >= iq_cap {
                        backend_blocked = dispatched == 0;
                        break;
                    }
                    fq_head += 1;
                    decoded_at[hi & mask] = now;
                    blocked_at_decode[hi & mask] = blocked_cum;
                    issued_at[hi & mask] = UNSET;
                    done_at[hi & mask] = UNSET;
                    rob.push_back(hi as u32);
                    waiting.push(hi as u32);
                    iq_len += 1;
                    dispatched += 1;
                }
                dispatched_this_cycle = dispatched;
            }
            if backend_blocked {
                blocked_cum += 1;
            }

            // ---- fetch ----
            let fetch_was = fetch_idx;
            let fetch_stall: Option<CycleClass> = if fetch_idx < n {
                if fetch_blocked_on.is_some() {
                    pending_supply += 1;
                    Some(CycleClass::FetchStallBranch)
                } else if now < fetch_resume_at {
                    pending_supply += 1;
                    match resume_reason {
                        SupplyStall::ICacheMiss => Some(CycleClass::FetchStallICache),
                        SupplyStall::Branch => Some(CycleClass::FetchStallBranch),
                        SupplyStall::None => None,
                    }
                } else {
                    let mut stall: Option<CycleClass> = None;
                    let mut bytes = cfg.fetch_bytes_per_cycle;
                    let mut delivered = 0u32;
                    while delivered < insn_cap && fetch_idx < n {
                        if fetch_idx - fq_head >= fetch_buffer {
                            if delivered == 0 && dispatched_this_cycle == 0 {
                                stall = Some(CycleClass::FetchStallBackpressure);
                            }
                            break;
                        }
                        let idx = fetch_idx;
                        let pc = pc_r[idx & mask];
                        let insn_bytes = bytes_r[idx & mask];
                        let flags = flags_r[idx & mask];
                        let line = pc & !63;
                        if current_line != Some(line) {
                            let latency = mem.ifetch(pc, now);
                            current_line = Some(line);
                            if latency > icache_hit {
                                fetch_resume_at = now + latency;
                                resume_reason = SupplyStall::ICacheMiss;
                                if delivered == 0 {
                                    stall = Some(CycleClass::FetchStallICache);
                                    pending_supply += 1;
                                }
                                break;
                            }
                        }
                        if u64::from(insn_bytes) > bytes {
                            break; // per-cycle fetch bandwidth exhausted
                        }
                        bytes -= u64::from(insn_bytes);
                        fetched_at[idx & mask] = now;
                        blocked_at_fetch[idx & mask] = blocked_cum;
                        supply_stall[idx & mask] = pending_supply;
                        if insn_bytes == 2 {
                            thumb_fetched += 1;
                        }
                        fetch_idx += 1;
                        delivered += 1;

                        if flags & F_BRANCH == 0 {
                            continue;
                        }
                        let taken = flags & F_TAKEN != 0;
                        if cfg.perfect_branch {
                            if taken {
                                current_line = None; // discontinuity, no bubble
                            }
                            continue;
                        }
                        let correct = match br_class_r[idx & mask] {
                            BR_COND => bpu.predict_conditional(pc, taken),
                            BR_CALL => {
                                bpu.push_return(pc + u64::from(insn_bytes));
                                true
                            }
                            BR_RET => bpu.predict_return(target_r[idx & mask]),
                            _ => true,
                        };
                        if !correct {
                            fetch_blocked_on = Some(idx as u32);
                            current_line = None;
                            break;
                        }
                        if taken {
                            if flags & F_SEQ != 0 {
                                break;
                            }
                            fetch_resume_at = now + taken_resume;
                            resume_reason = SupplyStall::Branch;
                            current_line = None;
                            break;
                        }
                    }
                    if delivered > 0 {
                        pending_supply = 0;
                    }
                    stall
                }
            } else {
                None
            };

            // ---- ledger: classify this cycle, exactly once ----
            let class = if let Some(stall) = fetch_stall {
                stall
            } else if commits > 0 {
                CycleClass::Commit
            } else if let Some(head) = rob.front() {
                let hi = head as usize;
                if issued_at[hi & mask] != UNSET {
                    if flags_r[hi & mask] & F_MEM != 0 {
                        CycleClass::Mem
                    } else {
                        CycleClass::Execute
                    }
                } else {
                    CycleClass::Issue
                }
            } else if fq_head < fetch_idx || dispatched_this_cycle > 0 {
                CycleClass::Decode
            } else {
                CycleClass::SquashIdle
            };
            ledger.charge(class);

            // ---- idle-window skip ----
            if commits == 0
                && !any_issued
                && dispatched_this_cycle == 0
                && fq_head == fq_was
                && fetch_idx == fetch_was
                && ready_pool.is_empty()
            {
                let mut next = UNSET;
                if let Some(head) = rob.front() {
                    let done = done_at[head as usize & mask];
                    if done != UNSET {
                        next = next.min(done);
                    }
                }
                if let Some(&Reverse((ra, _))) = wake.peek() {
                    next = next.min(ra);
                }
                if fetch_idx < n && fetch_blocked_on.is_none() && fetch_resume_at > now {
                    next = next.min(fetch_resume_at);
                }
                if now < dispatch_block_until {
                    next = next.min(dispatch_block_until);
                }
                if fq_head < fetch_idx
                    && rob.len() < rob_cap
                    && iq_len < iq_cap
                    && now >= dispatch_block_until
                {
                    next = next.min(fetched_at[fq_head & mask] + 1);
                }
                if next != UNSET && next > now + 1 {
                    let skipped = next - now - 1;
                    ledger.charge_many(class, skipped);
                    if fetch_idx < n && (fetch_blocked_on.is_some() || now + 1 < fetch_resume_at) {
                        pending_supply += skipped as u32;
                    }
                    if backend_blocked {
                        blocked_cum += skipped;
                    }
                    now += skipped;
                }
            }

            now += 1;
            if now > hard_cap {
                panic!("simulation exceeded the cycle cap: deadlock in the pipeline model");
            }
        }

        debug_assert!(
            ledger.check(now).is_ok(),
            "cycle ledger must partition the run: {:?}",
            ledger.check(now)
        );
        let fetch_stalls = FetchStalls {
            icache: ledger.fetch_stall_icache,
            branch: ledger.fetch_stall_branch,
            backpressure: ledger.fetch_stall_backpressure,
        };
        let result = SimResult {
            cycles: now,
            committed,
            cdp_switches,
            fetch_stalls,
            stage_all,
            stage_critical,
            bpu: bpu.stats(),
            mem: mem.stats(),
            thumb_fetched,
        };
        scratch.models = Some((mem, bpu, crit_table));
        (result, ledger, stats)
    }
}

#[cfg(test)]
mod tests {
    use critic_mem::MemConfig;
    use critic_workloads::{
        ExecutionPath, GenParams, Program, ProgramGenerator, StreamConfig, Trace, TraceStream,
    };

    use super::*;
    use crate::config::CpuConfig;
    use crate::sim::{DecodedTrace, SimScratch};

    fn workload(seed: u64, len: usize) -> (Program, ExecutionPath) {
        let mut p = GenParams::mobile(seed);
        p.num_functions = 20;
        let program = ProgramGenerator::new(p).generate();
        let path = ExecutionPath::generate(&program, seed ^ 0xBEEF, len);
        (program, path)
    }

    fn materialized(
        sim: &Simulator,
        program: &Program,
        path: &ExecutionPath,
    ) -> (SimResult, CycleLedger) {
        let trace = Trace::expand(program, path);
        let fanout = trace.compute_fanout();
        let mut decoded = DecodedTrace::new();
        decoded.decode_into(&trace);
        let mut scratch = SimScratch::new();
        sim.run_decoded(&decoded, &fanout, &mut scratch)
    }

    fn stream_cfg(window: usize) -> StreamConfig {
        StreamConfig {
            window,
            lookahead: critic_workloads::DEFAULT_LOOKAHEAD,
            cone_window: None,
        }
    }

    #[test]
    fn streamed_run_is_bit_identical_across_window_sizes() {
        let (program, path) = workload(7, 12_000);
        let sim = Simulator::new(CpuConfig::google_tablet(), MemConfig::google_tablet());
        let want = materialized(&sim, &program, &path);
        let mut scratch = StreamScratch::new();
        for window in [1, 63, 4096, usize::MAX / 2] {
            let mut stream = TraceStream::new(&program, &path, stream_cfg(window));
            let (result, ledger, _) = sim.run_streamed(&mut stream, &mut scratch);
            assert_eq!((result, ledger), want, "window={window}");
        }
    }

    #[test]
    fn streamed_run_matches_under_contended_configs() {
        let (program, path) = workload(11, 9_000);
        // Small structures force back-pressure, ring wrap, and CDP stalls;
        // the prioritized + imperfect-branch config exercises the critical
        // table and the branch-blocked fetch path.
        let mut cpu = CpuConfig::google_tablet();
        cpu.rob_entries = 16;
        cpu.iq_entries = 8;
        cpu.fetch_buffer = 6;
        cpu.prioritize_critical = true;
        cpu.cdp_bubble = 2;
        let sim = Simulator::new(cpu, MemConfig::google_tablet());
        let want = materialized(&sim, &program, &path);
        let mut scratch = StreamScratch::new();
        let mut stream = TraceStream::new(&program, &path, stream_cfg(256));
        let (result, ledger, _) = sim.run_streamed(&mut stream, &mut scratch);
        assert_eq!((result, ledger), want);
    }

    #[test]
    fn scratch_reuse_is_deterministic() {
        let (program, path) = workload(3, 6_000);
        let sim = Simulator::new(CpuConfig::google_tablet(), MemConfig::google_tablet());
        let mut scratch = StreamScratch::new();
        let mut first = None;
        for _ in 0..3 {
            let mut stream = TraceStream::new(&program, &path, stream_cfg(512));
            let out = sim.run_streamed(&mut stream, &mut scratch);
            match &first {
                None => first = Some(out),
                Some(want) => assert_eq!(&out, want),
            }
        }
    }

    #[test]
    fn peak_memory_is_bounded_by_window_not_trace() {
        let (program, path) = workload(5, 60_000);
        let sim = Simulator::new(CpuConfig::google_tablet(), MemConfig::google_tablet());
        let mut scratch = StreamScratch::new();
        let mut stream = TraceStream::new(&program, &path, stream_cfg(1024));
        let (result, _, stats) = sim.run_streamed(&mut stream, &mut scratch);
        assert!(result.cycles > 0);
        // The materialized path keeps the whole trace + decode + fanout +
        // timestamp tables resident: ≥ 100 bytes per dynamic instruction.
        let materialized_floor = 60_000 * 100;
        assert!(
            stats.peak_resident_bytes * 4 < materialized_floor,
            "peak {} not O(window) vs materialized floor {}",
            stats.peak_resident_bytes,
            materialized_floor
        );
    }
}
