//! The scalar reference pipeline — the pre-data-oriented cycle loop,
//! preserved verbatim as a differential oracle.
//!
//! [`run_reference`] walks the raw [`DynInsn`] records with `VecDeque`
//! queues and per-entry dependence iterators, exactly as the original
//! `Simulator::run` did before the struct-of-arrays rewrite in
//! [`crate::sim`]. It exists for two reasons:
//!
//! 1. **Correctness gate.** The data-oriented core must be *bit-identical*
//!    to this path — every `SimResult` field and every `CycleLedger`
//!    bucket. The property suite diffs randomized cores and traces through
//!    both loops, and the golden fixtures pin the outputs of both.
//! 2. **Speedup accounting.** `critic bench` measures the cold campaign
//!    against this scalar path to report (and CI-gate) the real speedup of
//!    the decoded core + lockstep batching, on the same machine in the
//!    same process.
//!
//! It is deliberately *not* optimized; do not "fix" its performance.

use std::collections::VecDeque;

use critic_isa::{FuKind, Opcode};
use critic_mem::{MemConfig, MemSystem};
use critic_obs::{CycleClass, CycleLedger};
use critic_workloads::{DynInsn, Trace};

use crate::bpu::Bpu;
use crate::config::CpuConfig;
use crate::crit::CritTable;
use crate::stats::{FetchStalls, SimResult, StageBreakdown};

/// Why the fetch stage is currently unable to supply instructions.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum SupplyStall {
    None,
    ICacheMiss,
    Branch,
}

const UNSET: u64 = u64::MAX;

/// Reusable per-run working memory for the cycle loop.
///
/// One `run` allocates seven per-instruction timestamp tables plus the
/// fetch/issue/reorder queues; across a campaign the simulator runs
/// thousands of times on same-length traces, so callers on the hot path
/// keep one `SimScratch` per worker and pass it to
/// [`Simulator::run_with_scratch`] — every table is then recycled
/// (cleared and refilled, never reallocated once warm).
#[derive(Debug, Default)]
struct ReferenceScratch {
    fetched_at: Vec<u64>,
    supply_stall: Vec<u32>,
    blocked_at_fetch: Vec<u64>,
    blocked_at_decode: Vec<u64>,
    decoded_at: Vec<u64>,
    issued_at: Vec<u64>,
    done_at: Vec<u64>,
    fetch_queue: VecDeque<u32>,
    iq: Vec<u32>,
    rob: VecDeque<u32>,
    ready: Vec<u32>,
    issued_set: Vec<u32>,
    int_div_free: Vec<u64>,
    float_div_free: Vec<u64>,
}

impl ReferenceScratch {
    /// Empty scratch; buffers grow on first use and are then recycled.
    fn new() -> ReferenceScratch {
        ReferenceScratch::default()
    }

    /// Re-initializes every table for an `n`-instruction run.
    fn reset(&mut self, n: usize, cfg: &CpuConfig) {
        fill(&mut self.fetched_at, n, UNSET);
        fill(&mut self.supply_stall, n, 0);
        fill(&mut self.blocked_at_fetch, n, 0);
        fill(&mut self.blocked_at_decode, n, 0);
        fill(&mut self.decoded_at, n, UNSET);
        fill(&mut self.issued_at, n, UNSET);
        fill(&mut self.done_at, n, UNSET);
        self.fetch_queue.clear();
        self.iq.clear();
        self.rob.clear();
        self.ready.clear();
        self.issued_set.clear();
        fill(&mut self.int_div_free, cfg.fu.int_div as usize, 0);
        fill(&mut self.float_div_free, cfg.fu.float_div as usize, 0);
    }
}

/// `clear` + `resize`: refills in place, reallocating only to grow.
fn fill<T: Clone>(v: &mut Vec<T>, n: usize, value: T) {
    v.clear();
    v.resize(n, value);
}

/// Runs `trace` through the preserved scalar loop and returns the result
/// and cycle ledger. Allocates its own working memory per call — this is
/// the "fresh `SimScratch` per cell" behaviour of the original path, which
/// is part of what the bench measures against.
///
/// # Panics
///
/// Panics if `fanout.len() != trace.len()`.
pub fn run_reference(
    cpu: &CpuConfig,
    mem_config: &MemConfig,
    trace: &Trace,
    fanout: &[u32],
) -> (SimResult, CycleLedger) {
    let scratch = &mut ReferenceScratch::new();
    {
        assert_eq!(
            trace.len(),
            fanout.len(),
            "fanout slice must match the trace"
        );
        let cfg = cpu;
        let mut mem = MemSystem::new(mem_config);
        let mut bpu = Bpu::new(cfg.bpu_entries, cfg.bpu_history_bits, cfg.ras_depth);
        let mut crit_table = CritTable::new(cfg.bpu_entries, cfg.crit_threshold);

        let n = trace.len();
        let entries = &trace.entries;
        scratch.reset(n, cfg);
        // Destructure for disjoint borrows across the stage loops.
        let ReferenceScratch {
            fetched_at,
            supply_stall,
            blocked_at_fetch,
            blocked_at_decode,
            decoded_at,
            issued_at,
            done_at,
            fetch_queue,
            iq,
            rob,
            ready,
            issued_set,
            int_div_free,
            float_div_free,
        } = scratch;
        // Cumulative count of backend-blocked cycles, sampled at fetch time;
        // lets commit attribute each instruction's buffer time between
        // "genuine fetch residency" and "ROB back-pressure".
        let mut blocked_cum = 0u64;

        let mut fetch_idx = 0usize;
        let mut current_line: Option<u64> = None;
        let mut fetch_resume_at = 0u64;
        let mut resume_reason = SupplyStall::None;
        let mut fetch_blocked_on: Option<u32> = None;
        let mut pending_supply = 0u32;
        let mut dispatch_block_until = 0u64;

        let mut now = 0u64;
        let mut head_since = 0u64;
        let mut ledger = CycleLedger::new();
        let mut stage_all = StageBreakdown::default();
        let mut stage_critical = StageBreakdown::default();
        let mut committed = 0u64;
        let mut cdp_switches = 0u64;
        let mut thumb_fetched = 0u64;

        let hard_cap = (n as u64).saturating_mul(1000).max(1_000_000);

        while fetch_idx < n || !fetch_queue.is_empty() || !rob.is_empty() {
            // ---- commit ----
            let mut commits = 0;
            while commits < cfg.width {
                let Some(&head) = rob.front() else { break };
                let hi = head as usize;
                if done_at[hi] > now {
                    break;
                }
                rob.pop_front();
                commits += 1;
                committed += 1;
                let e = &entries[hi];
                // Aggregate stage residencies. Fetch-buffer time that passed
                // while dispatch was blocked on a full ROB/IQ is *backend*
                // back-pressure, not fetch-stage time — gem5 charges it to
                // rename-blocked-on-ROB, the paper to "ROB queue
                // residencies" — so it lands in the commit bucket.
                let buffer_total = decoded_at[hi]
                    .saturating_sub(fetched_at[hi])
                    .saturating_sub(1);
                let buffer_blocked =
                    (blocked_at_decode[hi] - blocked_at_fetch[hi]).min(buffer_total);
                let buffer = buffer_total - buffer_blocked;
                let issue_wait = issued_at[hi].saturating_sub(decoded_at[hi]);
                let execute = done_at[hi].saturating_sub(issued_at[hi]);
                // Head-blocking time plus backend-blocked buffer time: the
                // ROB bucket charges culprits and back-pressure, not every
                // instruction queued behind them.
                let commit_wait = now.saturating_sub(done_at[hi].max(head_since)) + buffer_blocked;
                head_since = now;
                stage_all.add(
                    u64::from(supply_stall[hi]),
                    buffer,
                    1,
                    issue_wait,
                    execute,
                    commit_wait,
                );
                if fanout[hi] >= cfg.crit_threshold {
                    stage_critical.add(
                        u64::from(supply_stall[hi]),
                        buffer,
                        1,
                        issue_wait,
                        execute,
                        commit_wait,
                    );
                }
                // Criticality training (predictor-table hardware, Sec. II-A).
                crit_table.train(e.pc, fanout[hi]);
                if e.is_load() {
                    mem.train_load_criticality(e.pc, fanout[hi]);
                }
                // EFetch hook: observe committed calls.
                if e.op == Opcode::Bl {
                    if let Some(outcome) = e.branch {
                        mem.observe_call(outcome.target_pc, now);
                    }
                }
            }

            // ---- issue ----
            if !iq.is_empty() {
                ready.clear();
                ready.extend(iq.iter().copied().filter(|&i| {
                    entries[i as usize]
                        .deps_iter()
                        .all(|d| done_at[d as usize] != UNSET && done_at[d as usize] <= now)
                }));
                if cfg.prioritize_critical {
                    // Critical-first, stable within each class (program order).
                    ready.sort_by_key(|&i| !crit_table.is_critical(entries[i as usize].pc));
                }
                let mut issued_count = 0u32;
                let mut used = FuUse::default();
                issued_set.clear();
                for &i in ready.iter() {
                    if issued_count >= cfg.width {
                        break;
                    }
                    let e = &entries[i as usize];
                    let mut kind = e.fu_kind();
                    if kind == FuKind::Branch {
                        if let Some(outcome) = e.branch {
                            if outcome.target_pc == e.pc + u64::from(e.bytes) {
                                // Statically-sequential switch branches fold
                                // to ALU no-ops; they never contend for the
                                // single branch port.
                                kind = FuKind::IntAlu;
                            }
                        }
                    }
                    if !used.try_take(kind, &cfg.fu, now, int_div_free, float_div_free) {
                        continue;
                    }
                    // Latency.
                    let latency = match kind {
                        FuKind::Mem => {
                            let addr = e.mem_addr.unwrap_or(0);
                            if e.is_load() {
                                let lat = mem.data_access(addr, now);
                                mem.observe_load(e.pc, addr, now);
                                lat
                            } else {
                                // Stores retire through the store buffer at
                                // L1 speed; the access is still performed
                                // for traffic/energy accounting.
                                let _ = mem.data_access(addr, now);
                                u64::from(Opcode::Str.exec_latency())
                            }
                        }
                        _ => u64::from(e.op.exec_latency()),
                    };
                    issued_at[i as usize] = now;
                    let done = now + latency;
                    done_at[i as usize] = done;
                    // Occupy unpipelined units.
                    match kind {
                        FuKind::IntDiv => {
                            if let Some(free) = int_div_free.iter_mut().find(|f| **f <= now) {
                                *free = done;
                            }
                        }
                        FuKind::FloatDiv => {
                            if let Some(free) = float_div_free.iter_mut().find(|f| **f <= now) {
                                *free = done;
                            }
                        }
                        _ => {}
                    }
                    // Resolve a blocking mispredicted branch.
                    if fetch_blocked_on == Some(i) {
                        fetch_blocked_on = None;
                        fetch_resume_at = done + u64::from(cfg.redirect_penalty);
                        resume_reason = SupplyStall::Branch;
                    }
                    issued_set.push(i);
                    issued_count += 1;
                }
                if !issued_set.is_empty() {
                    iq.retain(|i| !issued_set.contains(i));
                }
            }

            // ---- dispatch (decode + rename) ----
            let mut dispatched_this_cycle = 0u32;
            let mut backend_blocked = false;
            if now >= dispatch_block_until {
                let mut dispatched = 0;
                while dispatched < cfg.width {
                    let Some(&head) = fetch_queue.front() else {
                        break;
                    };
                    let hi = head as usize;
                    if now < fetched_at[hi] + 1 {
                        break; // still in the decode pipe
                    }
                    let e = &entries[hi];
                    if e.is_cdp() {
                        // The format switch is a decoder *prefix*: the mode
                        // flip closed timing at 160 ps in the paper's 45 nm
                        // synthesis, so it is absorbed by the pipelined
                        // decoder — it consumes fetch bytes and a fetch-queue
                        // entry but no dispatch slot, and never enters the
                        // ROB (Sec. IV-B). The paper's conservative +1 decode
                        // cycle is a latency (pipeline-fill) effect with no
                        // steady-state bandwidth cost.
                        fetch_queue.pop_front();
                        decoded_at[hi] = now;
                        blocked_at_decode[hi] = blocked_cum;
                        done_at[hi] = now;
                        cdp_switches += 1;
                        // The paper conservatively charges one extra decode
                        // cycle; a pipelined decoder hides it, so only the
                        // cycles *beyond* the first stall dispatch (the
                        // knob matters for the ablation sweep).
                        dispatch_block_until = now + u64::from(cfg.cdp_bubble.saturating_sub(1));
                        continue;
                    }
                    if rob.len() >= cfg.rob_entries || iq.len() >= cfg.iq_entries {
                        backend_blocked = dispatched == 0;
                        break;
                    }
                    fetch_queue.pop_front();
                    decoded_at[hi] = now;
                    blocked_at_decode[hi] = blocked_cum;
                    rob.push_back(head);
                    iq.push(head);
                    dispatched += 1;
                }
                dispatched_this_cycle = dispatched;
            }
            if backend_blocked {
                blocked_cum += 1;
            }

            // ---- fetch ----
            let fetch_stall: Option<CycleClass> = if fetch_idx < n {
                if fetch_blocked_on.is_some() {
                    pending_supply += 1;
                    Some(CycleClass::FetchStallBranch)
                } else if now < fetch_resume_at {
                    pending_supply += 1;
                    match resume_reason {
                        SupplyStall::ICacheMiss => Some(CycleClass::FetchStallICache),
                        SupplyStall::Branch => Some(CycleClass::FetchStallBranch),
                        SupplyStall::None => None,
                    }
                } else {
                    fetch_cycle(
                        cfg,
                        entries,
                        &mut fetch_idx,
                        now,
                        &mut mem,
                        &mut bpu,
                        fetch_queue,
                        fetched_at,
                        supply_stall,
                        &mut pending_supply,
                        &mut current_line,
                        &mut fetch_resume_at,
                        &mut resume_reason,
                        &mut fetch_blocked_on,
                        &mut thumb_fetched,
                        dispatched_this_cycle,
                        blocked_cum,
                        blocked_at_fetch,
                    )
                }
            } else {
                None
            };

            // ---- ledger: classify this cycle, exactly once ----
            // Fetch-side stalls first (attribution order documented in
            // `critic_obs::ledger`), then backend progress by what the ROB
            // head was doing, then front-end-only progress, then drain.
            let class = if let Some(stall) = fetch_stall {
                stall
            } else if commits > 0 {
                CycleClass::Commit
            } else if let Some(&head) = rob.front() {
                let hi = head as usize;
                if issued_at[hi] != UNSET {
                    if entries[hi].fu_kind() == FuKind::Mem {
                        CycleClass::Mem
                    } else {
                        CycleClass::Execute
                    }
                } else {
                    CycleClass::Issue
                }
            } else if !fetch_queue.is_empty() || dispatched_this_cycle > 0 {
                CycleClass::Decode
            } else {
                CycleClass::SquashIdle
            };
            ledger.charge(class);

            now += 1;
            if now > hard_cap {
                panic!("simulation exceeded the cycle cap: deadlock in the pipeline model");
            }
        }

        debug_assert!(
            ledger.check(now).is_ok(),
            "cycle ledger must partition the run: {:?}",
            ledger.check(now)
        );
        // The Fig. 3b stall taxonomy is a projection of the ledger — the
        // same audited partition feeds figures and EXPERIMENTS.md.
        let fetch_stalls = FetchStalls {
            icache: ledger.fetch_stall_icache,
            branch: ledger.fetch_stall_branch,
            backpressure: ledger.fetch_stall_backpressure,
        };
        let result = SimResult {
            cycles: now,
            committed,
            cdp_switches,
            fetch_stalls,
            stage_all,
            stage_critical,
            bpu: bpu.stats(),
            mem: mem.stats(),
            thumb_fetched,
        };
        (result, ledger)
    }
}

#[allow(clippy::too_many_arguments)]
fn fetch_cycle(
    cfg: &CpuConfig,
    entries: &[DynInsn],
    fetch_idx: &mut usize,
    now: u64,
    mem: &mut MemSystem,
    bpu: &mut Bpu,
    fetch_queue: &mut VecDeque<u32>,
    fetched_at: &mut [u64],
    supply_stall: &mut [u32],
    pending_supply: &mut u32,
    current_line: &mut Option<u64>,
    fetch_resume_at: &mut u64,
    resume_reason: &mut SupplyStall,
    fetch_blocked_on: &mut Option<u32>,
    thumb_fetched: &mut u64,
    dispatched_this_cycle: u32,
    blocked_cum: u64,
    blocked_at_fetch: &mut [u64],
) -> Option<CycleClass> {
    let mut stall: Option<CycleClass> = None;
    let icache_hit = 2u64; // L1I hit latency from MemConfig geometry
    let mut bytes = cfg.fetch_bytes_per_cycle;
    // Fetch is *byte*-limited: one 16-byte access per cycle delivers 4
    // ARM words or up to 8 Thumb half-words — this is exactly the
    // "nearly doubles the fetch bandwidth" effect the 16-bit format
    // buys (Sec. III-B). The instruction cap models the fetch buffer's
    // half-word-granular write ports.
    let insn_cap = cfg.fetch_width * 2;
    let mut delivered = 0u32;
    while delivered < insn_cap && *fetch_idx < entries.len() {
        if fetch_queue.len() >= cfg.fetch_buffer {
            // Count back-pressure only when the pipe is truly blocked:
            // buffer full *and* decode moved nothing this cycle. A full
            // buffer with decode draining at full width is steady-state
            // flow, not a stall.
            if delivered == 0 && dispatched_this_cycle == 0 {
                stall = Some(CycleClass::FetchStallBackpressure);
            }
            break;
        }
        let idx = *fetch_idx;
        let e = &entries[idx];
        let line = e.pc & !63;
        if *current_line != Some(line) {
            let latency = mem.ifetch(e.pc, now);
            // The line will be resident once the miss returns; remember
            // it so we do not re-access on resume.
            *current_line = Some(line);
            if latency > icache_hit {
                *fetch_resume_at = now + latency;
                *resume_reason = SupplyStall::ICacheMiss;
                if delivered == 0 {
                    stall = Some(CycleClass::FetchStallICache);
                    *pending_supply += 1;
                }
                break;
            }
        }
        if u64::from(e.bytes) > bytes {
            break; // per-cycle fetch bandwidth exhausted
        }
        bytes -= u64::from(e.bytes);
        fetched_at[idx] = now;
        blocked_at_fetch[idx] = blocked_cum;
        // Every instruction delivered in this cycle waited out the same
        // supply stall (they sat in the missed line / post-redirect
        // shadow together); the counter clears at end of cycle.
        supply_stall[idx] = *pending_supply;
        fetch_queue.push_back(idx as u32);
        if e.bytes == 2 {
            *thumb_fetched += 1;
        }
        *fetch_idx += 1;
        delivered += 1;

        let Some(outcome) = e.branch else { continue };
        if cfg.perfect_branch {
            if outcome.taken {
                *current_line = None; // discontinuity, but no bubble
            }
            continue;
        }
        let correct = match e.op {
            Opcode::B if e.predicated => bpu.predict_conditional(e.pc, outcome.taken),
            Opcode::B => true, // unconditional direct: BTB hit
            Opcode::Bl => {
                bpu.push_return(e.pc + u64::from(e.bytes));
                true
            }
            Opcode::Bx => bpu.predict_return(outcome.target_pc),
            _ => true,
        };
        if !correct {
            // Fetch stops until the branch resolves in execute.
            *fetch_blocked_on = Some(idx as u32);
            *current_line = None;
            break;
        }
        if outcome.taken {
            if outcome.target_pc == e.pc + u64::from(e.bytes) {
                // A branch to the very next instruction (the format
                // switch of Sec. IV-A): the "redirect" is sequential, so
                // the fetch group merely ends early — the branch still
                // costs its fetch bytes, a ROB slot, and a branch unit.
                break;
            }
            // Correctly-predicted taken branch: redirect bubble.
            *fetch_resume_at = now + 1 + u64::from(cfg.taken_bubble);
            *resume_reason = SupplyStall::Branch;
            *current_line = None;
            break;
        }
    }
    if delivered > 0 {
        *pending_supply = 0;
    }
    stall
}

/// Per-cycle functional-unit usage tracking.
#[derive(Debug, Default)]
struct FuUse {
    int_alu: u32,
    int_mult: u32,
    int_div: u32,
    mem: u32,
    branch: u32,
    float_add: u32,
    float_mul: u32,
    float_div: u32,
}

impl FuUse {
    fn try_take(
        &mut self,
        kind: FuKind,
        pool: &crate::config::FuPool,
        now: u64,
        int_div_free: &[u64],
        float_div_free: &[u64],
    ) -> bool {
        match kind {
            FuKind::IntAlu | FuKind::None => take(&mut self.int_alu, pool.int_alu),
            FuKind::IntMult => take(&mut self.int_mult, pool.int_mult),
            FuKind::IntDiv => {
                int_div_free.iter().any(|&f| f <= now) && take(&mut self.int_div, pool.int_div)
            }
            FuKind::Mem => take(&mut self.mem, pool.mem_ports),
            FuKind::Branch => take(&mut self.branch, pool.branch),
            FuKind::FloatAdd => take(&mut self.float_add, pool.float_add),
            FuKind::FloatMul => take(&mut self.float_mul, pool.float_mul),
            FuKind::FloatDiv => {
                float_div_free.iter().any(|&f| f <= now)
                    && take(&mut self.float_div, pool.float_div)
            }
        }
    }
}

fn take(used: &mut u32, cap: u32) -> bool {
    if *used < cap {
        *used += 1;
        true
    } else {
        false
    }
}
