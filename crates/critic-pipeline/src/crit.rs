//! The hardware criticality predictor table (paper Sec. II-A).
//!
//! "A table is maintained for those instructions exceeding the threshold
//! based on prior execution (similar to branch predictors), and upon an
//! instruction fetch, this table is looked up with the PC to find whether
//! that instruction is critical or not."
//!
//! The single-instruction baselines (critical-load prefetch, critical-first
//! issue) consult this table; the CritIC scheme itself deliberately does
//! *not* — it is software-profiled.

use serde::{Deserialize, Serialize};

/// PC-indexed saturating-counter table of observed fanout.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct CritTable {
    counters: Vec<u8>,
    mask: usize,
    threshold: u32,
}

impl CritTable {
    /// Builds a table with `entries` counters (power of two) and the given
    /// criticality fanout threshold.
    ///
    /// # Panics
    ///
    /// Panics if `entries` is not a power of two.
    pub fn new(entries: usize, threshold: u32) -> CritTable {
        assert!(
            entries.is_power_of_two(),
            "table entries must be a power of two"
        );
        CritTable {
            counters: vec![0; entries],
            mask: entries - 1,
            threshold,
        }
    }

    /// Re-initializes to the all-zero state [`CritTable::new`] produces,
    /// recycling the counter allocation when the size is unchanged.
    ///
    /// # Panics
    ///
    /// Panics if `entries` is not a power of two.
    pub fn reset_to(&mut self, entries: usize, threshold: u32) {
        if self.counters.len() == entries {
            self.counters.fill(0);
            self.threshold = threshold;
        } else {
            *self = CritTable::new(entries, threshold);
        }
    }

    fn index(&self, pc: u64) -> usize {
        ((pc >> 2) as usize) & self.mask
    }

    /// Trains the table with a committed instruction's observed ROB fanout.
    pub fn train(&mut self, pc: u64, fanout: u32) {
        let index = self.index(pc);
        let counter = &mut self.counters[index];
        let observed = fanout.min(127) as u8;
        if observed >= *counter {
            *counter = (*counter + (observed - *counter).div_ceil(2)).min(127);
        } else {
            *counter = counter.saturating_sub(1);
        }
    }

    /// Whether the table currently predicts `pc` critical.
    pub fn is_critical(&self, pc: u64) -> bool {
        u32::from(self.counters[self.index(pc)]) >= self.threshold
    }

    /// The configured threshold.
    pub fn threshold(&self) -> u32 {
        self.threshold
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_learns_high_fanout_pcs() {
        let mut table = CritTable::new(4096, 8);
        let pc = 0x4000;
        assert!(!table.is_critical(pc));
        for _ in 0..6 {
            table.train(pc, 12);
        }
        assert!(table.is_critical(pc));
    }

    #[test]
    fn table_forgets_with_decay() {
        let mut table = CritTable::new(4096, 8);
        let pc = 0x4000;
        for _ in 0..6 {
            table.train(pc, 12);
        }
        for _ in 0..64 {
            table.train(pc, 1);
        }
        assert!(!table.is_critical(pc));
    }

    #[test]
    fn different_pcs_do_not_interfere_in_a_large_table() {
        let mut table = CritTable::new(4096, 8);
        table.train(0x100, 100);
        table.train(0x100, 100);
        table.train(0x100, 100);
        assert!(table.is_critical(0x100));
        assert!(!table.is_critical(0x104));
    }

    #[test]
    fn aliasing_happens_in_a_tiny_table() {
        let mut table = CritTable::new(2, 8);
        for _ in 0..6 {
            table.train(0x0, 50);
        }
        // 0x0 and 0x8 collide in a 2-entry table indexed by pc >> 2.
        assert_eq!(table.is_critical(0x0), table.is_critical(0x8));
    }

    #[test]
    fn threshold_is_respected() {
        let table = CritTable::new(16, 8);
        assert_eq!(table.threshold(), 8);
    }
}
