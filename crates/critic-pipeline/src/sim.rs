//! The trace-driven cycle loop.
//!
//! Stage order within a cycle is commit → issue → dispatch → fetch, each
//! stage reading the state its predecessors left. The fetch stage follows
//! the committed path of the trace; control-flow costs (taken-branch
//! bubbles, misprediction stalls until resolution plus a redirect penalty)
//! and supply costs (i-cache misses) stall it, and a full fetch buffer
//! blocks it — producing the paper's two fetch-stall categories.
//!
//! Every cycle is classified exactly once at the end of the stage sequence
//! and charged to one [`CycleLedger`] bucket; the [`FetchStalls`] taxonomy
//! in the returned [`SimResult`] is *derived* from that partition, so the
//! stall counters cannot drift from (or double-count against) total
//! cycles. See [`critic_obs::ledger`] for the attribution order.
//!
//! # Data-oriented core
//!
//! The cycle loop never touches [`critic_workloads::DynInsn`] records:
//! a one-pass decode
//! ([`DecodedTrace`]) folds every per-instruction fact the stages consume
//! into flat struct-of-arrays columns — folded functional-unit kind,
//! execution latency, a flag byte (load/CDP/branch/taken/sequential-
//! target/call), padded dependence indices, pc, memory address, and branch
//! target — so the hot loops are tight array walks with no enum matching
//! or `Option` chasing. The decode is a pure function of the trace and is
//! *shareable*: the baseline decode is computed once per app and every
//! scheme variant copies the columns of its common prefix with the base
//! trace ([`DecodedTrace::decode_with_base`]) instead of re-deriving them,
//! which is the per-app "single shared trace decode" the batch runner
//! builds on. Pipeline queues are index structures, not `VecDeque`s: the
//! fetch queue is the contiguous index range `[fq_head, fetch_idx)` (fetch
//! delivers trace order, so no buffer is needed at all) and the ROB is a
//! power-of-two index ring (`IndexRing`).

use std::cell::RefCell;
use std::cmp::Reverse;
use std::collections::BinaryHeap;

use critic_isa::{FuKind, Opcode};
use critic_mem::{MemConfig, MemSystem};
use critic_obs::{CycleClass, CycleLedger};
use critic_workloads::{DynInsn, Trace, NO_DEP};

use crate::bpu::Bpu;
use crate::config::CpuConfig;
use crate::crit::CritTable;
use crate::stats::{FetchStalls, SimResult, StageBreakdown};

/// Why the fetch stage is currently unable to supply instructions.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum SupplyStall {
    None,
    ICacheMiss,
    Branch,
}

pub(crate) const UNSET: u64 = u64::MAX;

/// Which simulation engine a harness routes its runs through. Both engines
/// produce bit-identical [`SimResult`]s and [`CycleLedger`]s (asserted by
/// the differential suites); they differ only in speed.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub enum SimEngine {
    /// The data-oriented core: struct-of-arrays decode (shareable across
    /// schemes), recycled scratch and models, idle-window skipping.
    #[default]
    DataOriented,
    /// The preserved scalar loop ([`Simulator::run_reference`]): the
    /// differential oracle and the baseline `critic bench` measures the
    /// cold-campaign speedup against. Deliberately not optimized.
    Reference,
}

/// Flag bits of [`DecodedTrace::flags`].
pub(crate) const F_LOAD: u8 = 1 << 0;
pub(crate) const F_CDP: u8 = 1 << 1;
pub(crate) const F_MEM: u8 = 1 << 2;
pub(crate) const F_BRANCH: u8 = 1 << 3;
pub(crate) const F_TAKEN: u8 = 1 << 4;
/// Branch whose target is the next sequential pc (the Sec. IV-A format
/// switch): folds to an ALU op at issue, ends the fetch group without a
/// redirect bubble.
pub(crate) const F_SEQ: u8 = 1 << 5;
/// `Bl` with a recorded outcome: commit reports the call target to the
/// EFetch hook.
pub(crate) const F_CALL: u8 = 1 << 6;
/// Flag-setting compare (`Cmp`/`Cmn`/`Tst`/`Vcmp`): produces no
/// forwardable value, so it never accrues dataflow fan-out.
pub(crate) const F_CMP: u8 = 1 << 7;

/// Branch-prediction dispatch class of [`DecodedTrace::br_class`] (only
/// meaningful when `F_BRANCH` is set).
pub(crate) const BR_OTHER: u8 = 0;
pub(crate) const BR_COND: u8 = 1;
pub(crate) const BR_CALL: u8 = 2;
pub(crate) const BR_RET: u8 = 3;

fn fu_code(kind: FuKind) -> u8 {
    match kind {
        FuKind::IntAlu => 0,
        FuKind::IntMult => 1,
        FuKind::IntDiv => 2,
        FuKind::Mem => 3,
        FuKind::Branch => 4,
        FuKind::FloatAdd => 5,
        FuKind::FloatMul => 6,
        FuKind::FloatDiv => 7,
        FuKind::None => 8,
    }
}

/// One-pass struct-of-arrays decode of a trace: every per-instruction fact
/// the cycle loop consumes, precomputed into flat columns so the stage
/// loops are branch-light array walks.
///
/// A `DecodedTrace` is a pure function of its [`Trace`] — no configuration
/// leaks in — so one decode serves every simulator configuration of the
/// same trace, and the baseline decode of an app is shared across all of
/// its schemes' variant decodes through
/// [`DecodedTrace::decode_with_base`].
#[derive(Debug, Default, Clone)]
pub struct DecodedTrace {
    len: usize,
    /// Folded functional-unit kind (`fu_code`): statically-sequential
    /// switch branches already fold to `IntAlu` here, so issue never
    /// re-derives it.
    kind: Vec<u8>,
    /// Execution latency for non-load kinds (stores carry the store-buffer
    /// latency; loads resolve through the memory system at issue).
    lat: Vec<u32>,
    /// `F_*` flag bits.
    flags: Vec<u8>,
    /// Instruction size in bytes (2 = Thumb, 4 = ARM).
    bytes: Vec<u8>,
    /// Dependence indices *shifted by one* (`0` is the always-done
    /// sentinel, insn `i` is slot `i + 1`), so the ready check is three
    /// unconditional loads regardless of how many real deps exist — and
    /// the encoding is independent of the trace length, which is what
    /// makes prefix copying across differently-sized variants sound.
    deps: Vec<[u32; 3]>,
    /// Program counter.
    pc: Vec<u64>,
    /// Effective address for memory ops (0 otherwise).
    mem_addr: Vec<u64>,
    /// Branch target (0 when not a branch).
    target: Vec<u64>,
    /// Branch-prediction dispatch class (`BR_*`).
    br_class: Vec<u8>,
}

impl DecodedTrace {
    /// An empty decode; fill it with [`DecodedTrace::decode_into`].
    pub fn new() -> DecodedTrace {
        DecodedTrace::default()
    }

    /// The number of decoded instructions.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the decode is empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Decodes `trace` from scratch, recycling this decode's buffers.
    pub fn decode_into(&mut self, trace: &Trace) {
        self.clear();
        self.extend_from(trace, 0);
    }

    /// Decodes `trace` sharing work with an already-decoded base trace:
    /// the columns of the longest common entry prefix are copied from
    /// `base_decoded` (one memcpy per column) and only the divergent tail
    /// — where a scheme's transformed program departs from the baseline at
    /// its first hoisted/converted region — is decoded instruction by
    /// instruction. Returns the number of instructions served from the
    /// shared prefix.
    ///
    /// The dependence encoding is length-independent (see
    /// `DecodedTrace::deps`), so sharing is sound even though variants
    /// and base differ in length.
    pub fn decode_with_base(
        &mut self,
        trace: &Trace,
        base: &Trace,
        base_decoded: &DecodedTrace,
    ) -> usize {
        let shared = trace
            .entries
            .iter()
            .zip(&base.entries)
            .take(base_decoded.len)
            .take_while(|(a, b)| a == b)
            .count();
        self.clear();
        self.kind.extend_from_slice(&base_decoded.kind[..shared]);
        self.lat.extend_from_slice(&base_decoded.lat[..shared]);
        self.flags.extend_from_slice(&base_decoded.flags[..shared]);
        self.bytes.extend_from_slice(&base_decoded.bytes[..shared]);
        self.deps.extend_from_slice(&base_decoded.deps[..shared]);
        self.pc.extend_from_slice(&base_decoded.pc[..shared]);
        self.mem_addr
            .extend_from_slice(&base_decoded.mem_addr[..shared]);
        self.target
            .extend_from_slice(&base_decoded.target[..shared]);
        self.br_class
            .extend_from_slice(&base_decoded.br_class[..shared]);
        self.len = shared;
        self.extend_from(trace, shared);
        shared
    }

    /// Computes the per-instruction direct fan-out from the decoded
    /// columns, bit-identical to [`Trace::compute_fanout`] on the trace
    /// this decode came from: dependences point strictly backwards and
    /// the compare classification is a pure function of the opcode, so
    /// checking the producer's `F_CMP` flag here matches the reference's
    /// forward-filled `is_compare` table exactly. On the batched path
    /// this replaces a second walk over the multi-megabyte `DynInsn`
    /// records with a walk over two already-hot decoded columns.
    pub fn compute_fanout_into(&self, fanout: &mut Vec<u32>) {
        fanout.clear();
        fanout.resize(self.len, 0u32);
        for deps in &self.deps {
            for &d in deps {
                if d == 0 {
                    continue;
                }
                let dep = (d - 1) as usize;
                if self.flags[dep] & F_CMP == 0 {
                    fanout[dep] += 1;
                }
            }
        }
    }

    fn clear(&mut self) {
        self.len = 0;
        self.kind.clear();
        self.lat.clear();
        self.flags.clear();
        self.bytes.clear();
        self.deps.clear();
        self.pc.clear();
        self.mem_addr.clear();
        self.target.clear();
        self.br_class.clear();
    }

    /// Decodes `trace.entries[from..]`, appending to the columns.
    fn extend_from(&mut self, trace: &Trace, from: usize) {
        let n = trace.entries.len();
        self.kind.reserve(n - from);
        self.lat.reserve(n - from);
        self.flags.reserve(n - from);
        self.bytes.reserve(n - from);
        self.deps.reserve(n - from);
        self.pc.reserve(n - from);
        self.mem_addr.reserve(n - from);
        self.target.reserve(n - from);
        self.br_class.reserve(n - from);
        for e in &trace.entries[from..] {
            let d = decode_entry(e);
            self.kind.push(d.kind);
            self.lat.push(d.lat);
            self.flags.push(d.flags);
            self.bytes.push(d.bytes);
            self.deps.push(d.deps);
            self.pc.push(d.pc);
            self.mem_addr.push(d.mem_addr);
            self.target.push(d.target);
            self.br_class.push(d.br_class);
        }
        self.len = n;
    }
}

/// One instruction's decoded columns: the pure per-entry decode shared by
/// the materialized struct-of-arrays decode ([`DecodedTrace`]) and the
/// streaming ring decode ([`crate::stream_sim`]). Keeping the body in one
/// place is what makes the streamed columns identical to the materialized
/// ones by construction.
#[derive(Debug, Clone, Copy)]
pub(crate) struct DecodedInsn {
    pub(crate) kind: u8,
    pub(crate) lat: u32,
    pub(crate) flags: u8,
    pub(crate) bytes: u8,
    pub(crate) deps: [u32; 3],
    pub(crate) pc: u64,
    pub(crate) mem_addr: u64,
    pub(crate) target: u64,
    pub(crate) br_class: u8,
}

/// Decodes one dynamic instruction into its column values.
#[inline]
pub(crate) fn decode_entry(e: &DynInsn) -> DecodedInsn {
    let mut kind = e.op.fu_kind();
    let mut flags = 0u8;
    if e.op.is_load() {
        flags |= F_LOAD;
    }
    if e.is_cdp() {
        flags |= F_CDP;
    }
    if kind == FuKind::Mem {
        flags |= F_MEM;
    }
    if matches!(e.op, Opcode::Cmp | Opcode::Cmn | Opcode::Tst | Opcode::Vcmp) {
        flags |= F_CMP;
    }
    let mut target = 0u64;
    let mut br_class = BR_OTHER;
    if let Some(outcome) = e.branch {
        flags |= F_BRANCH;
        if outcome.taken {
            flags |= F_TAKEN;
        }
        if outcome.target_pc == e.pc + u64::from(e.bytes) {
            flags |= F_SEQ;
            if kind == FuKind::Branch {
                // Statically-sequential switch branches fold to
                // ALU no-ops; they never contend for the single
                // branch port.
                kind = FuKind::IntAlu;
            }
        }
        target = outcome.target_pc;
        br_class = match e.op {
            Opcode::B if e.predicated => BR_COND,
            Opcode::Bl => {
                flags |= F_CALL;
                BR_CALL
            }
            Opcode::Bx => BR_RET,
            _ => BR_OTHER,
        };
    }
    let lat = if kind == FuKind::Mem && !e.op.is_load() {
        // Stores retire through the store buffer at L1 speed.
        Opcode::Str.exec_latency()
    } else {
        e.op.exec_latency()
    };
    DecodedInsn {
        kind: fu_code(kind),
        lat,
        flags,
        bytes: e.bytes,
        deps: e.deps.map(|d| if d == NO_DEP { 0 } else { d + 1 }),
        pc: e.pc,
        mem_addr: e.mem_addr.unwrap_or(0),
        target,
        br_class,
    }
}

/// A fixed-capacity power-of-two index ring — the reorder buffer. Pushes
/// are guarded by the configured occupancy check before they happen, so
/// the ring itself never has to grow or wrap-check beyond the mask.
#[derive(Debug, Default)]
pub(crate) struct IndexRing {
    buf: Vec<u32>,
    head: usize,
    len: usize,
    mask: usize,
}

impl IndexRing {
    /// Clears the ring, sizing it to hold at least `cap` entries.
    pub(crate) fn reset(&mut self, cap: usize) {
        let cap = cap.max(1).next_power_of_two();
        if self.buf.len() != cap {
            self.buf = vec![0; cap];
        }
        self.head = 0;
        self.len = 0;
        self.mask = cap - 1;
    }

    #[inline]
    pub(crate) fn front(&self) -> Option<u32> {
        if self.len > 0 {
            Some(self.buf[self.head])
        } else {
            None
        }
    }

    #[inline]
    pub(crate) fn pop_front(&mut self) {
        self.head = (self.head + 1) & self.mask;
        self.len -= 1;
    }

    #[inline]
    pub(crate) fn push_back(&mut self, v: u32) {
        self.buf[(self.head + self.len) & self.mask] = v;
        self.len += 1;
    }

    #[inline]
    pub(crate) fn len(&self) -> usize {
        self.len
    }

    #[inline]
    pub(crate) fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Bytes held by the ring's backing storage.
    pub(crate) fn resident_bytes(&self) -> usize {
        self.buf.capacity() * std::mem::size_of::<u32>()
    }
}

/// Reusable per-run working memory for the cycle loop.
///
/// One `run` fills seven per-instruction timestamp tables plus the
/// issue/reorder queues and a decoded-trace column set; across a campaign
/// the simulator runs thousands of times on same-length traces, so callers
/// on the hot path keep one `SimScratch` per worker and pass it to
/// [`Simulator::run_with_scratch`] — every table is then recycled
/// (cleared and refilled, never reallocated once warm).
#[derive(Debug, Default)]
pub struct SimScratch {
    fetched_at: Vec<u64>,
    supply_stall: Vec<u32>,
    blocked_at_fetch: Vec<u64>,
    blocked_at_decode: Vec<u64>,
    decoded_at: Vec<u64>,
    issued_at: Vec<u64>,
    /// Completion times, *shifted by one*: slot 0 is the always-done
    /// sentinel the padded dependence encoding points at, insn `i` lives
    /// in slot `i + 1`.
    done_at: Vec<u64>,
    /// Issue-queue entries with at least one dependence still lacking a
    /// completion time; rescanned each cycle (`UNSET` propagates through
    /// the dependence `max` until every dep has issued).
    waiting: Vec<u32>,
    /// Issue-queue entries with a known future wakeup time, keyed by it:
    /// popped — never rescanned — when their cycle arrives.
    wake: BinaryHeap<Reverse<(u64, u32)>>,
    /// Issue-queue entries whose dependences have all completed, kept in
    /// program order (ascending index); entries persist here across cycles
    /// while blocked on functional units.
    ready_pool: Vec<u32>,
    rob: IndexRing,
    ready: Vec<u32>,
    int_div_free: Vec<u64>,
    float_div_free: Vec<u64>,
    /// Owned decode for the entry points that take a plain [`Trace`];
    /// `Option` so it can be moved out while the scratch is destructured.
    decoded: Option<DecodedTrace>,
    /// Recycled model state (memory hierarchy, branch predictor,
    /// criticality table): each run resets them in place to the cold state
    /// a fresh construction would produce, avoiding the ~1 MB of cache-line
    /// allocation a `MemSystem::new` performs per run.
    models: Option<(MemSystem, Bpu, CritTable)>,
}

impl SimScratch {
    /// Empty scratch; buffers grow on first use and are then recycled.
    pub fn new() -> SimScratch {
        SimScratch::default()
    }

    /// Re-initializes every table for an `n`-instruction run.
    ///
    /// The timestamp tables are *not* bulk-filled: every slot is written
    /// before it is read — fetch stamps `fetched_at`/`supply_stall`/
    /// `blocked_at_fetch`, dispatch stamps `decoded_at`/`blocked_at_decode`
    /// and seeds the `issued_at`/`done_at` slots with `UNSET` (dependences
    /// always point at earlier instructions, which dispatch strictly in
    /// order, so a dependence slot is seeded before any wakeup scan can
    /// read it). A warm scratch therefore pays no O(n) memset per run.
    fn reset(&mut self, n: usize, cfg: &CpuConfig) {
        grow(&mut self.fetched_at, n);
        grow(&mut self.supply_stall, n);
        grow(&mut self.blocked_at_fetch, n);
        grow(&mut self.blocked_at_decode, n);
        grow(&mut self.decoded_at, n);
        grow(&mut self.issued_at, n);
        grow(&mut self.done_at, n + 1);
        self.done_at[0] = 0;
        self.waiting.clear();
        self.wake.clear();
        self.ready_pool.clear();
        self.rob.reset(cfg.rob_entries);
        self.ready.clear();
        fill(&mut self.int_div_free, cfg.fu.int_div as usize, 0);
        fill(&mut self.float_div_free, cfg.fu.float_div as usize, 0);
    }
}

/// `clear` + `resize`: refills in place, reallocating only to grow.
pub(crate) fn fill<T: Clone>(v: &mut Vec<T>, n: usize, value: T) {
    v.clear();
    v.resize(n, value);
}

/// Sets a table's length without initializing its contents: stale values
/// from a previous run are deliberately left in place because every slot is
/// written before it is read (see [`SimScratch::reset`]).
fn grow<T: Default + Clone>(v: &mut Vec<T>, n: usize) {
    if v.len() < n {
        v.resize(n, T::default());
    } else {
        v.truncate(n);
    }
}

/// Inserts `i` into an ascending index list (the ready pool stays in
/// program order). The pool holds a handful of entries, so a binary search
/// plus shift beats any cleverer structure.
#[inline]
pub(crate) fn insert_sorted(pool: &mut Vec<u32>, i: u32) {
    let pos = pool.partition_point(|&x| x < i);
    pool.insert(pos, i);
}

thread_local! {
    /// Worker-owned scratch behind [`Simulator::run`]: every plain `run`
    /// call on a thread recycles the same tables instead of allocating a
    /// fresh `SimScratch` per call (the satellite audit found `figures`,
    /// the validation oracle path, and the store's baseline builder all
    /// paying that allocation).
    static THREAD_SCRATCH: RefCell<SimScratch> = RefCell::new(SimScratch::new());
}

/// Runs `f` with this thread's recycled [`SimScratch`] — the worker-owned
/// scratch used by [`Simulator::run`] and by call sites (store baseline
/// builds, figure regeneration) that have no natural scratch owner.
pub fn with_thread_scratch<R>(f: impl FnOnce(&mut SimScratch) -> R) -> R {
    THREAD_SCRATCH.with(|cell| match cell.try_borrow_mut() {
        Ok(mut scratch) => f(&mut scratch),
        // Re-entrant use (a caller already holds the thread scratch):
        // fall back to a fresh scratch rather than panicking.
        Err(_) => f(&mut SimScratch::new()),
    })
}

/// A configured simulator; call [`Simulator::run`] per trace.
#[derive(Debug, Clone)]
pub struct Simulator {
    cpu: CpuConfig,
    mem_config: MemConfig,
}

impl Simulator {
    /// Binds a core configuration and memory configuration.
    pub fn new(cpu: CpuConfig, mem_config: MemConfig) -> Simulator {
        Simulator { cpu, mem_config }
    }

    /// The core configuration.
    pub fn cpu_config(&self) -> &CpuConfig {
        &self.cpu
    }

    /// The memory configuration (crate-internal: the streaming front-end
    /// constructs its own model instances).
    pub(crate) fn mem_config(&self) -> &MemConfig {
        &self.mem_config
    }

    /// Runs the trace to completion and returns the timing result.
    ///
    /// `fanout` must be `trace.compute_fanout()` for the same trace; it
    /// feeds the criticality-table training (the paper trains from ROB
    /// observations — the true dynamic fanout is the converged version of
    /// that) and the critical-instruction stage aggregation of Fig. 3a.
    ///
    /// Working memory comes from the calling thread's recycled scratch
    /// ([`with_thread_scratch`]), so repeated `run` calls on one thread
    /// allocate nothing once warm.
    ///
    /// # Panics
    ///
    /// Panics if `fanout.len() != trace.len()`.
    pub fn run(&self, trace: &Trace, fanout: &[u32]) -> SimResult {
        with_thread_scratch(|scratch| self.run_with_scratch(trace, fanout, scratch))
    }

    /// [`Simulator::run`] with caller-owned working memory: behaviour and
    /// results are identical, but the per-instruction tables and pipeline
    /// queues are recycled from `scratch` instead of allocated per run.
    ///
    /// # Panics
    ///
    /// Panics if `fanout.len() != trace.len()`.
    pub fn run_with_scratch(
        &self,
        trace: &Trace,
        fanout: &[u32],
        scratch: &mut SimScratch,
    ) -> SimResult {
        self.run_with_ledger(trace, fanout, scratch).0
    }

    /// [`Simulator::run_with_scratch`] returning the per-cycle accounting
    /// ledger alongside the result. The ledger is maintained on every run
    /// (one bucket increment per cycle — it *is* the stall bookkeeping, not
    /// an extra layer); this entry point merely hands the partition back
    /// instead of reducing it to [`FetchStalls`].
    ///
    /// Invariant: `ledger.total() == result.cycles`, enforced by a debug
    /// assertion here and by the observability test suite.
    ///
    /// # Panics
    ///
    /// Panics if `fanout.len() != trace.len()`.
    pub fn run_with_ledger(
        &self,
        trace: &Trace,
        fanout: &[u32],
        scratch: &mut SimScratch,
    ) -> (SimResult, CycleLedger) {
        assert_eq!(
            trace.len(),
            fanout.len(),
            "fanout slice must match the trace"
        );
        // Move the owned decode out so the scratch can be destructured by
        // the core loop while the decode is borrowed.
        let mut decoded = scratch.decoded.take().unwrap_or_default();
        decoded.decode_into(trace);
        let out = self.run_decoded(&decoded, fanout, scratch);
        scratch.decoded = Some(decoded);
        out
    }

    /// Runs the preserved scalar loop (see [`crate::reference`]): the
    /// differential oracle the data-oriented core is diffed against, and
    /// the baseline `critic bench` measures speedup from. Not a hot path.
    pub fn run_reference(&self, trace: &Trace, fanout: &[u32]) -> (SimResult, CycleLedger) {
        crate::reference::run_reference(&self.cpu, &self.mem_config, trace, fanout)
    }

    /// The data-oriented core: runs an already-decoded trace. This is the
    /// batch entry point — the caller owns the decode and may share it (or
    /// its common prefix) across schemes and configurations.
    ///
    /// # Panics
    ///
    /// Panics if `fanout.len() != decoded.len()`.
    pub fn run_decoded(
        &self,
        decoded: &DecodedTrace,
        fanout: &[u32],
        scratch: &mut SimScratch,
    ) -> (SimResult, CycleLedger) {
        assert_eq!(
            decoded.len(),
            fanout.len(),
            "fanout slice must match the decoded trace"
        );
        let cfg = &self.cpu;
        let (mut mem, mut bpu, mut crit_table) = match scratch.models.take() {
            Some((mut mem, mut bpu, mut crit_table)) => {
                mem.reset_to(&self.mem_config);
                bpu.reset_to(cfg.bpu_entries, cfg.bpu_history_bits, cfg.ras_depth);
                crit_table.reset_to(cfg.bpu_entries, cfg.crit_threshold);
                (mem, bpu, crit_table)
            }
            None => (
                MemSystem::new(&self.mem_config),
                Bpu::new(cfg.bpu_entries, cfg.bpu_history_bits, cfg.ras_depth),
                CritTable::new(cfg.bpu_entries, cfg.crit_threshold),
            ),
        };

        let n = decoded.len();
        scratch.reset(n, cfg);
        // Destructure for disjoint borrows across the stage loops.
        let SimScratch {
            fetched_at,
            supply_stall,
            blocked_at_fetch,
            blocked_at_decode,
            decoded_at,
            issued_at,
            done_at,
            waiting,
            wake,
            ready_pool,
            rob,
            ready,
            int_div_free,
            float_div_free,
            ..
        } = scratch;
        // Hot columns and config, hoisted out of the cycle loop.
        let kind_col = &decoded.kind[..n];
        let lat_col = &decoded.lat[..n];
        let flags_col = &decoded.flags[..n];
        let deps_col = &decoded.deps[..n];
        let pc_col = &decoded.pc[..n];
        let addr_col = &decoded.mem_addr[..n];
        let width = cfg.width;
        let rob_cap = cfg.rob_entries;
        let iq_cap = cfg.iq_entries;
        let prioritize = cfg.prioritize_critical;
        let crit_threshold = cfg.crit_threshold;
        let redirect_penalty = u64::from(cfg.redirect_penalty);
        let cdp_stall = u64::from(cfg.cdp_bubble.saturating_sub(1));
        let pool = &cfg.fu;

        // Cumulative count of backend-blocked cycles, sampled at fetch time;
        // lets commit attribute each instruction's buffer time between
        // "genuine fetch residency" and "ROB back-pressure".
        let mut blocked_cum = 0u64;

        // Issue-queue occupancy: waiting + wake + ready_pool entries.
        let mut iq_len = 0usize;
        let mut fetch_idx = 0usize;
        // The fetch queue is the contiguous range [fq_head, fetch_idx):
        // fetch delivers trace order, so the "queue" is two counters.
        let mut fq_head = 0usize;
        let mut current_line: Option<u64> = None;
        let mut fetch_resume_at = 0u64;
        let mut resume_reason = SupplyStall::None;
        let mut fetch_blocked_on: Option<u32> = None;
        let mut pending_supply = 0u32;
        let mut dispatch_block_until = 0u64;

        let mut now = 0u64;
        let mut head_since = 0u64;
        let mut ledger = CycleLedger::new();
        let mut stage_all = StageBreakdown::default();
        let mut stage_critical = StageBreakdown::default();
        let mut committed = 0u64;
        let mut cdp_switches = 0u64;
        let mut thumb_fetched = 0u64;

        let hard_cap = (n as u64).saturating_mul(1000).max(1_000_000);

        while fetch_idx < n || fq_head < fetch_idx || !rob.is_empty() {
            // ---- commit ----
            let mut commits = 0;
            while commits < width {
                let Some(head) = rob.front() else { break };
                let hi = head as usize;
                let done = done_at[hi + 1];
                if done > now {
                    break;
                }
                rob.pop_front();
                commits += 1;
                committed += 1;
                let flags = flags_col[hi];
                // Aggregate stage residencies. Fetch-buffer time that passed
                // while dispatch was blocked on a full ROB/IQ is *backend*
                // back-pressure, not fetch-stage time — gem5 charges it to
                // rename-blocked-on-ROB, the paper to "ROB queue
                // residencies" — so it lands in the commit bucket.
                let buffer_total = decoded_at[hi]
                    .saturating_sub(fetched_at[hi])
                    .saturating_sub(1);
                let buffer_blocked =
                    (blocked_at_decode[hi] - blocked_at_fetch[hi]).min(buffer_total);
                let buffer = buffer_total - buffer_blocked;
                let issue_wait = issued_at[hi].saturating_sub(decoded_at[hi]);
                let execute = done.saturating_sub(issued_at[hi]);
                // Head-blocking time plus backend-blocked buffer time: the
                // ROB bucket charges culprits and back-pressure, not every
                // instruction queued behind them.
                let commit_wait = now.saturating_sub(done.max(head_since)) + buffer_blocked;
                head_since = now;
                stage_all.add(
                    u64::from(supply_stall[hi]),
                    buffer,
                    1,
                    issue_wait,
                    execute,
                    commit_wait,
                );
                if fanout[hi] >= crit_threshold {
                    stage_critical.add(
                        u64::from(supply_stall[hi]),
                        buffer,
                        1,
                        issue_wait,
                        execute,
                        commit_wait,
                    );
                }
                // Criticality training (predictor-table hardware, Sec. II-A).
                crit_table.train(pc_col[hi], fanout[hi]);
                if flags & F_LOAD != 0 {
                    mem.train_load_criticality(pc_col[hi], fanout[hi]);
                }
                // EFetch hook: observe committed calls.
                if flags & F_CALL != 0 {
                    mem.observe_call(decoded.target[hi], now);
                }
            }

            // ---- issue ----
            let mut any_issued = false;
            if iq_len > 0 {
                // Wakeup scoreboard: entries whose dependences have all
                // issued carry a fixed wakeup time (completion times are
                // written once), so they are scheduled into a time-keyed
                // heap exactly once and never rescanned. Only entries
                // still waiting on an *unissued* dependence — `UNSET`
                // propagates through the max — are rescanned per cycle.
                if !waiting.is_empty() {
                    waiting.retain(|&i| {
                        let d = deps_col[i as usize];
                        // Slot 0 is the always-done sentinel, so three
                        // unconditional loads replace the variable-length
                        // dependence walk.
                        let ra = done_at[d[0] as usize]
                            .max(done_at[d[1] as usize])
                            .max(done_at[d[2] as usize]);
                        if ra == UNSET {
                            return true;
                        }
                        if ra <= now {
                            insert_sorted(ready_pool, i);
                        } else {
                            wake.push(Reverse((ra, i)));
                        }
                        false
                    });
                }
                while let Some(&Reverse((ra, i))) = wake.peek() {
                    if ra > now {
                        break;
                    }
                    wake.pop();
                    insert_sorted(ready_pool, i);
                }
                // The pool is kept in ascending (program) order, matching
                // the per-cycle rebuild of the scalar path; prioritization
                // stable-sorts a scratch copy so the pool's canonical
                // order survives for later cycles.
                let selection: &[u32] = if prioritize {
                    ready.clear();
                    ready.extend_from_slice(ready_pool);
                    // Critical-first, stable within each class (program order).
                    ready.sort_by_key(|&i| !crit_table.is_critical(pc_col[i as usize]));
                    ready
                } else {
                    ready_pool
                };
                let mut issued_count = 0u32;
                let mut used = FuUse::default();
                for &i in selection {
                    if issued_count >= width {
                        break;
                    }
                    let hi = i as usize;
                    let kind = kind_col[hi];
                    if !used.try_take(kind, pool, now, int_div_free, float_div_free) {
                        continue;
                    }
                    // Latency.
                    let latency = if kind == K_MEM {
                        let addr = addr_col[hi];
                        if flags_col[hi] & F_LOAD != 0 {
                            let lat = mem.data_access(addr, now);
                            mem.observe_load(pc_col[hi], addr, now);
                            lat
                        } else {
                            // Stores retire through the store buffer at
                            // L1 speed; the access is still performed
                            // for traffic/energy accounting.
                            let _ = mem.data_access(addr, now);
                            u64::from(lat_col[hi])
                        }
                    } else {
                        u64::from(lat_col[hi])
                    };
                    issued_at[hi] = now;
                    let done = now + latency;
                    done_at[hi + 1] = done;
                    // Occupy unpipelined units.
                    if kind == K_INT_DIV {
                        if let Some(free) = int_div_free.iter_mut().find(|f| **f <= now) {
                            *free = done;
                        }
                    } else if kind == K_FLOAT_DIV {
                        if let Some(free) = float_div_free.iter_mut().find(|f| **f <= now) {
                            *free = done;
                        }
                    }
                    // Resolve a blocking mispredicted branch.
                    if fetch_blocked_on == Some(i) {
                        fetch_blocked_on = None;
                        fetch_resume_at = done + redirect_penalty;
                        resume_reason = SupplyStall::Branch;
                    }
                    any_issued = true;
                    issued_count += 1;
                }
                if any_issued {
                    // An entry issued this cycle iff its issue stamp is
                    // set: the pool only ever holds unissued entries.
                    ready_pool.retain(|&i| issued_at[i as usize] == UNSET);
                    iq_len -= issued_count as usize;
                }
            }

            // ---- dispatch (decode + rename) ----
            let fq_was = fq_head;
            let mut dispatched_this_cycle = 0u32;
            let mut backend_blocked = false;
            if now >= dispatch_block_until {
                let mut dispatched = 0;
                while dispatched < width && fq_head < fetch_idx {
                    let hi = fq_head;
                    if now < fetched_at[hi] + 1 {
                        break; // still in the decode pipe
                    }
                    if flags_col[hi] & F_CDP != 0 {
                        // The format switch is a decoder *prefix*: the mode
                        // flip closed timing at 160 ps in the paper's 45 nm
                        // synthesis, so it is absorbed by the pipelined
                        // decoder — it consumes fetch bytes and a fetch-queue
                        // entry but no dispatch slot, and never enters the
                        // ROB (Sec. IV-B). The paper's conservative +1 decode
                        // cycle is a latency (pipeline-fill) effect with no
                        // steady-state bandwidth cost.
                        fq_head += 1;
                        decoded_at[hi] = now;
                        blocked_at_decode[hi] = blocked_cum;
                        done_at[hi + 1] = now;
                        cdp_switches += 1;
                        // The paper conservatively charges one extra decode
                        // cycle; a pipelined decoder hides it, so only the
                        // cycles *beyond* the first stall dispatch (the
                        // knob matters for the ablation sweep).
                        dispatch_block_until = now + cdp_stall;
                        continue;
                    }
                    if rob.len() >= rob_cap || iq_len >= iq_cap {
                        backend_blocked = dispatched == 0;
                        break;
                    }
                    fq_head += 1;
                    decoded_at[hi] = now;
                    blocked_at_decode[hi] = blocked_cum;
                    // Seed the lazily-initialized issue/completion slots
                    // (the tables are not bulk-filled; see
                    // `SimScratch::reset`).
                    issued_at[hi] = UNSET;
                    done_at[hi + 1] = UNSET;
                    rob.push_back(hi as u32);
                    waiting.push(hi as u32);
                    iq_len += 1;
                    dispatched += 1;
                }
                dispatched_this_cycle = dispatched;
            }
            if backend_blocked {
                blocked_cum += 1;
            }

            // ---- fetch ----
            let fetch_was = fetch_idx;
            let fetch_stall: Option<CycleClass> = if fetch_idx < n {
                if fetch_blocked_on.is_some() {
                    pending_supply += 1;
                    Some(CycleClass::FetchStallBranch)
                } else if now < fetch_resume_at {
                    pending_supply += 1;
                    match resume_reason {
                        SupplyStall::ICacheMiss => Some(CycleClass::FetchStallICache),
                        SupplyStall::Branch => Some(CycleClass::FetchStallBranch),
                        SupplyStall::None => None,
                    }
                } else {
                    self.fetch_cycle(
                        decoded,
                        &mut fetch_idx,
                        fq_head,
                        now,
                        &mut mem,
                        &mut bpu,
                        fetched_at,
                        supply_stall,
                        &mut pending_supply,
                        &mut current_line,
                        &mut fetch_resume_at,
                        &mut resume_reason,
                        &mut fetch_blocked_on,
                        &mut thumb_fetched,
                        dispatched_this_cycle,
                        blocked_cum,
                        blocked_at_fetch,
                    )
                }
            } else {
                None
            };

            // ---- ledger: classify this cycle, exactly once ----
            // Fetch-side stalls first (attribution order documented in
            // `critic_obs::ledger`), then backend progress by what the ROB
            // head was doing, then front-end-only progress, then drain.
            let class = if let Some(stall) = fetch_stall {
                stall
            } else if commits > 0 {
                CycleClass::Commit
            } else if let Some(head) = rob.front() {
                let hi = head as usize;
                if issued_at[hi] != UNSET {
                    if flags_col[hi] & F_MEM != 0 {
                        CycleClass::Mem
                    } else {
                        CycleClass::Execute
                    }
                } else {
                    CycleClass::Issue
                }
            } else if fq_head < fetch_idx || dispatched_this_cycle > 0 {
                CycleClass::Decode
            } else {
                CycleClass::SquashIdle
            };
            ledger.charge(class);

            // ---- idle-window skip ----
            // When a cycle made no progress at all (no commit, no issue, no
            // dispatch or CDP consumption, no fetch delivery) and nothing is
            // poised to become ready, the pipeline state is frozen: every
            // following cycle repeats this one's classification verbatim
            // until the next scheduled event. Jump straight to that event,
            // bulk-charging the skipped cycles to the same ledger bucket —
            // the partition is unchanged because each skipped cycle is
            // counted exactly once, with the classification it would have
            // received. Events that can end the window: the ROB head's
            // completion, the wake heap's next ready time, fetch-supply
            // resumption, the CDP dispatch stall expiring, and the decode
            // pipe delivering the next fetch-queue entry. A non-empty ready
            // pool disqualifies the window (a div-unit-blocked entry wakes
            // on unit availability, which is not in the event set).
            if commits == 0
                && !any_issued
                && dispatched_this_cycle == 0
                && fq_head == fq_was
                && fetch_idx == fetch_was
                && ready_pool.is_empty()
            {
                let mut next = UNSET;
                if let Some(head) = rob.front() {
                    let done = done_at[head as usize + 1];
                    if done != UNSET {
                        next = next.min(done);
                    }
                }
                if let Some(&Reverse((ra, _))) = wake.peek() {
                    next = next.min(ra);
                }
                if fetch_idx < n && fetch_blocked_on.is_none() && fetch_resume_at > now {
                    next = next.min(fetch_resume_at);
                }
                if now < dispatch_block_until {
                    next = next.min(dispatch_block_until);
                }
                if fq_head < fetch_idx
                    && rob.len() < rob_cap
                    && iq_len < iq_cap
                    && now >= dispatch_block_until
                {
                    // Dispatch is waiting only on the decode pipe.
                    next = next.min(fetched_at[fq_head] + 1);
                }
                if next != UNSET && next > now + 1 {
                    let skipped = next - now - 1;
                    ledger.charge_many(class, skipped);
                    // Replay the per-cycle side counters the skipped cycles
                    // would have bumped: supply-stall residency while fetch
                    // is branch-blocked or inside a miss/redirect window,
                    // and the backend-blocked accumulator while dispatch is
                    // stuck on a full ROB/IQ.
                    if fetch_idx < n && (fetch_blocked_on.is_some() || now + 1 < fetch_resume_at) {
                        pending_supply += skipped as u32;
                    }
                    if backend_blocked {
                        blocked_cum += skipped;
                    }
                    now += skipped;
                }
            }

            now += 1;
            if now > hard_cap {
                panic!("simulation exceeded the cycle cap: deadlock in the pipeline model");
            }
        }

        debug_assert!(
            ledger.check(now).is_ok(),
            "cycle ledger must partition the run: {:?}",
            ledger.check(now)
        );
        // The Fig. 3b stall taxonomy is a projection of the ledger — the
        // same audited partition feeds figures and EXPERIMENTS.md.
        let fetch_stalls = FetchStalls {
            icache: ledger.fetch_stall_icache,
            branch: ledger.fetch_stall_branch,
            backpressure: ledger.fetch_stall_backpressure,
        };
        let result = SimResult {
            cycles: now,
            committed,
            cdp_switches,
            fetch_stalls,
            stage_all,
            stage_critical,
            bpu: bpu.stats(),
            mem: mem.stats(),
            thumb_fetched,
        };
        scratch.models = Some((mem, bpu, crit_table));
        (result, ledger)
    }

    #[allow(clippy::too_many_arguments)]
    fn fetch_cycle(
        &self,
        decoded: &DecodedTrace,
        fetch_idx: &mut usize,
        fq_head: usize,
        now: u64,
        mem: &mut MemSystem,
        bpu: &mut Bpu,
        fetched_at: &mut [u64],
        supply_stall: &mut [u32],
        pending_supply: &mut u32,
        current_line: &mut Option<u64>,
        fetch_resume_at: &mut u64,
        resume_reason: &mut SupplyStall,
        fetch_blocked_on: &mut Option<u32>,
        thumb_fetched: &mut u64,
        dispatched_this_cycle: u32,
        blocked_cum: u64,
        blocked_at_fetch: &mut [u64],
    ) -> Option<CycleClass> {
        let mut stall: Option<CycleClass> = None;
        let cfg = &self.cpu;
        let n = decoded.len;
        let icache_hit = 2u64; // L1I hit latency from MemConfig geometry
        let mut bytes = cfg.fetch_bytes_per_cycle;
        // Fetch is *byte*-limited: one 16-byte access per cycle delivers 4
        // ARM words or up to 8 Thumb half-words — this is exactly the
        // "nearly doubles the fetch bandwidth" effect the 16-bit format
        // buys (Sec. III-B). The instruction cap models the fetch buffer's
        // half-word-granular write ports.
        let insn_cap = cfg.fetch_width * 2;
        let fetch_buffer = cfg.fetch_buffer;
        let taken_resume = 1 + u64::from(cfg.taken_bubble);
        let mut delivered = 0u32;
        while delivered < insn_cap && *fetch_idx < n {
            if *fetch_idx - fq_head >= fetch_buffer {
                // Count back-pressure only when the pipe is truly blocked:
                // buffer full *and* decode moved nothing this cycle. A full
                // buffer with decode draining at full width is steady-state
                // flow, not a stall.
                if delivered == 0 && dispatched_this_cycle == 0 {
                    stall = Some(CycleClass::FetchStallBackpressure);
                }
                break;
            }
            let idx = *fetch_idx;
            let pc = decoded.pc[idx];
            let insn_bytes = decoded.bytes[idx];
            let flags = decoded.flags[idx];
            let line = pc & !63;
            if *current_line != Some(line) {
                let latency = mem.ifetch(pc, now);
                // The line will be resident once the miss returns; remember
                // it so we do not re-access on resume.
                *current_line = Some(line);
                if latency > icache_hit {
                    *fetch_resume_at = now + latency;
                    *resume_reason = SupplyStall::ICacheMiss;
                    if delivered == 0 {
                        stall = Some(CycleClass::FetchStallICache);
                        *pending_supply += 1;
                    }
                    break;
                }
            }
            if u64::from(insn_bytes) > bytes {
                break; // per-cycle fetch bandwidth exhausted
            }
            bytes -= u64::from(insn_bytes);
            fetched_at[idx] = now;
            blocked_at_fetch[idx] = blocked_cum;
            // Every instruction delivered in this cycle waited out the same
            // supply stall (they sat in the missed line / post-redirect
            // shadow together); the counter clears at end of cycle.
            supply_stall[idx] = *pending_supply;
            if insn_bytes == 2 {
                *thumb_fetched += 1;
            }
            *fetch_idx += 1;
            delivered += 1;

            if flags & F_BRANCH == 0 {
                continue;
            }
            let taken = flags & F_TAKEN != 0;
            if cfg.perfect_branch {
                if taken {
                    *current_line = None; // discontinuity, but no bubble
                }
                continue;
            }
            let correct = match decoded.br_class[idx] {
                BR_COND => bpu.predict_conditional(pc, taken),
                BR_CALL => {
                    bpu.push_return(pc + u64::from(insn_bytes));
                    true
                }
                BR_RET => bpu.predict_return(decoded.target[idx]),
                _ => true,
            };
            if !correct {
                // Fetch stops until the branch resolves in execute.
                *fetch_blocked_on = Some(idx as u32);
                *current_line = None;
                break;
            }
            if taken {
                if flags & F_SEQ != 0 {
                    // A branch to the very next instruction (the format
                    // switch of Sec. IV-A): the "redirect" is sequential, so
                    // the fetch group merely ends early — the branch still
                    // costs its fetch bytes, a ROB slot, and a branch unit.
                    break;
                }
                // Correctly-predicted taken branch: redirect bubble.
                *fetch_resume_at = now + taken_resume;
                *resume_reason = SupplyStall::Branch;
                *current_line = None;
                break;
            }
        }
        if delivered > 0 {
            *pending_supply = 0;
        }
        stall
    }
}

/// Folded-kind byte constants the issue loop branches on.
const K_INT_ALU: u8 = 0;
const K_INT_MULT: u8 = 1;
pub(crate) const K_INT_DIV: u8 = 2;
pub(crate) const K_MEM: u8 = 3;
const K_BRANCH: u8 = 4;
const K_FLOAT_ADD: u8 = 5;
const K_FLOAT_MUL: u8 = 6;
pub(crate) const K_FLOAT_DIV: u8 = 7;

/// Per-cycle functional-unit usage tracking.
#[derive(Debug, Default)]
pub(crate) struct FuUse {
    int_alu: u32,
    int_mult: u32,
    int_div: u32,
    mem: u32,
    branch: u32,
    float_add: u32,
    float_mul: u32,
    float_div: u32,
}

impl FuUse {
    #[inline]
    pub(crate) fn try_take(
        &mut self,
        kind: u8,
        pool: &crate::config::FuPool,
        now: u64,
        int_div_free: &[u64],
        float_div_free: &[u64],
    ) -> bool {
        match kind {
            K_INT_ALU => take(&mut self.int_alu, pool.int_alu),
            K_INT_MULT => take(&mut self.int_mult, pool.int_mult),
            K_INT_DIV => {
                int_div_free.iter().any(|&f| f <= now) && take(&mut self.int_div, pool.int_div)
            }
            K_MEM => take(&mut self.mem, pool.mem_ports),
            K_BRANCH => take(&mut self.branch, pool.branch),
            K_FLOAT_ADD => take(&mut self.float_add, pool.float_add),
            K_FLOAT_MUL => take(&mut self.float_mul, pool.float_mul),
            K_FLOAT_DIV => {
                float_div_free.iter().any(|&f| f <= now)
                    && take(&mut self.float_div, pool.float_div)
            }
            // FuKind::None issues on the integer ALU pool.
            _ => take(&mut self.int_alu, pool.int_alu),
        }
    }
}

fn take(used: &mut u32, cap: u32) -> bool {
    if *used < cap {
        *used += 1;
        true
    } else {
        false
    }
}

#[cfg(test)]
mod tests {
    use critic_workloads::{ExecutionPath, GenParams, ProgramGenerator, Trace};

    use super::*;

    fn mobile_trace(seed: u64, len: usize) -> (Trace, Vec<u32>) {
        let mut p = GenParams::mobile(seed);
        p.num_functions = 24;
        let program = ProgramGenerator::new(p).generate();
        let path = ExecutionPath::generate(&program, seed ^ 0xF00, len);
        let trace = Trace::expand(&program, &path);
        let fanout = trace.compute_fanout();
        (trace, fanout)
    }

    fn spec_trace(seed: u64, len: usize) -> (Trace, Vec<u32>) {
        let mut p = GenParams::spec_int(seed);
        p.num_functions = 8;
        let program = ProgramGenerator::new(p).generate();
        let path = ExecutionPath::generate(&program, seed ^ 0xF00, len);
        let trace = Trace::expand(&program, &path);
        let fanout = trace.compute_fanout();
        (trace, fanout)
    }

    fn run(trace: &Trace, fanout: &[u32]) -> SimResult {
        Simulator::new(CpuConfig::google_tablet(), MemConfig::google_tablet()).run(trace, fanout)
    }

    #[test]
    fn commits_every_instruction() {
        let (trace, fanout) = mobile_trace(1, 8_000);
        let result = run(&trace, &fanout);
        assert_eq!(result.committed + result.cdp_switches, trace.len() as u64);
        assert!(result.cycles > 0);
    }

    #[test]
    fn ipc_is_plausible_for_a_4_wide_core() {
        let (trace, fanout) = mobile_trace(2, 20_000);
        let result = run(&trace, &fanout);
        let ipc = result.ipc();
        assert!(ipc > 0.2 && ipc < 4.0, "ipc={ipc}");
    }

    #[test]
    fn simulation_is_deterministic() {
        let (trace, fanout) = mobile_trace(3, 6_000);
        let a = run(&trace, &fanout);
        let b = run(&trace, &fanout);
        assert_eq!(a, b);
    }

    #[test]
    fn prepared_decode_matches_fresh_decode() {
        // run_decoded over a caller-owned decode is the same simulation as
        // the trace entry points — bit for bit, ledger included.
        let (trace, fanout) = mobile_trace(17, 10_000);
        let sim = Simulator::new(CpuConfig::google_tablet(), MemConfig::google_tablet());
        let mut scratch = SimScratch::new();
        let (fresh, fresh_ledger) = sim.run_with_ledger(&trace, &fanout, &mut scratch);
        let mut decoded = DecodedTrace::new();
        decoded.decode_into(&trace);
        let (prepared, prepared_ledger) = sim.run_decoded(&decoded, &fanout, &mut scratch);
        assert_eq!(fresh, prepared);
        assert_eq!(fresh_ledger, prepared_ledger);
    }

    #[test]
    fn prefix_shared_decode_is_bit_identical() {
        // Decoding a trace against itself shares everything; against a
        // different trace it shares the common prefix — either way the
        // simulation must be bit-identical to a fresh decode.
        let (base, base_fanout) = mobile_trace(18, 10_000);
        let (other, other_fanout) = mobile_trace(19, 9_000);
        let sim = Simulator::new(CpuConfig::google_tablet(), MemConfig::google_tablet());
        let mut scratch = SimScratch::new();
        let mut base_decoded = DecodedTrace::new();
        base_decoded.decode_into(&base);

        let mut shared = DecodedTrace::new();
        let full = shared.decode_with_base(&base, &base, &base_decoded);
        assert_eq!(full, base.len(), "identical traces share every entry");
        let (a, la) = sim.run_decoded(&shared, &base_fanout, &mut scratch);
        let (b, lb) = sim.run_with_ledger(&base, &base_fanout, &mut scratch);
        assert_eq!(a, b);
        assert_eq!(la, lb);

        let _ = shared.decode_with_base(&other, &base, &base_decoded);
        let (c, lc) = sim.run_decoded(&shared, &other_fanout, &mut scratch);
        let (d, ld) = sim.run_with_ledger(&other, &other_fanout, &mut scratch);
        assert_eq!(c, d);
        assert_eq!(lc, ld);
    }

    #[test]
    fn data_oriented_core_matches_the_scalar_reference() {
        // The scalar `VecDeque` loop preserved in `reference.rs` and the
        // struct-of-arrays core must agree bit for bit — result and ledger
        // — across workload families and scheme-relevant configs.
        for (seed, len, spec) in [
            (1u64, 8_000usize, false),
            (23, 12_000, false),
            (5, 9_000, true),
        ] {
            let (trace, fanout) = if spec {
                spec_trace(seed, len)
            } else {
                mobile_trace(seed, len)
            };
            for cpu in [
                CpuConfig::google_tablet(),
                CpuConfig::google_tablet().with_critical_prioritization(),
                CpuConfig::google_tablet().with_perfect_branch(),
            ] {
                let sim = Simulator::new(cpu, MemConfig::google_tablet());
                let (want, want_ledger) = sim.run_reference(&trace, &fanout);
                let mut scratch = SimScratch::new();
                let (got, got_ledger) = sim.run_with_ledger(&trace, &fanout, &mut scratch);
                assert_eq!(want, got, "SimResult diverged from the scalar path");
                assert_eq!(want_ledger, got_ledger, "CycleLedger diverged");
            }
        }
    }

    #[test]
    fn stage_residencies_cover_critical_instructions() {
        let (trace, fanout) = mobile_trace(4, 20_000);
        let result = run(&trace, &fanout);
        assert!(
            result.stage_critical.count > 0,
            "planted chains must yield critical insns"
        );
        assert!(result.stage_critical.count < result.stage_all.count);
        assert!(result.stage_all.total() > 0);
    }

    #[test]
    fn perfect_branching_is_never_slower() {
        let (trace, fanout) = mobile_trace(5, 15_000);
        let base = run(&trace, &fanout);
        let perfect = Simulator::new(
            CpuConfig::google_tablet().with_perfect_branch(),
            MemConfig::google_tablet(),
        )
        .run(&trace, &fanout);
        assert!(perfect.cycles <= base.cycles);
        assert_eq!(perfect.bpu.mispredicts, 0);
        assert_eq!(perfect.fetch_stalls.branch, 0);
    }

    #[test]
    fn double_fd_is_never_slower() {
        let (trace, fanout) = mobile_trace(6, 15_000);
        let base = run(&trace, &fanout);
        let wide = Simulator::new(
            CpuConfig::google_tablet().with_double_fd(),
            MemConfig::google_tablet().with_half_icache_latency(),
        )
        .run(&trace, &fanout);
        assert!(wide.cycles <= base.cycles);
    }

    #[test]
    fn bigger_icache_reduces_icache_stalls() {
        let (trace, fanout) = mobile_trace(7, 30_000);
        let base = run(&trace, &fanout);
        let big = Simulator::new(
            CpuConfig::google_tablet(),
            MemConfig::google_tablet().with_4x_icache(),
        )
        .run(&trace, &fanout);
        assert!(
            big.fetch_stalls.icache <= base.fetch_stalls.icache,
            "4x i-cache must not increase i-stalls"
        );
    }

    #[test]
    fn mobile_baseline_shows_fetch_side_stalls() {
        // The paper's core observation (Fig. 3b): mobile executions lose a
        // significant share of cycles to fetch stalls.
        let (trace, fanout) = mobile_trace(8, 40_000);
        let result = run(&trace, &fanout);
        let frac_i = result.stall_for_i_frac();
        let frac_rd = result.stall_for_rd_frac();
        assert!(frac_i > 0.02, "expected visible F.StallForI, got {frac_i}");
        assert!(
            frac_rd > 0.01,
            "expected visible F.StallForR+D, got {frac_rd}"
        );
    }

    #[test]
    fn spec_commits_and_exercises_dram() {
        let (trace, fanout) = spec_trace(9, 20_000);
        let result = run(&trace, &fanout);
        assert_eq!(result.committed + result.cdp_switches, trace.len() as u64);
        assert!(
            result.mem.dram.accesses > 0,
            "SPEC working sets must reach DRAM"
        );
    }

    #[test]
    fn prioritization_changes_schedule_without_breaking() {
        let (trace, fanout) = mobile_trace(10, 15_000);
        let base = run(&trace, &fanout);
        let prio = Simulator::new(
            CpuConfig::google_tablet().with_critical_prioritization(),
            MemConfig::google_tablet(),
        )
        .run(&trace, &fanout);
        assert_eq!(prio.committed, base.committed);
        // Not asserting direction: the paper's whole point is that this
        // helps SPEC much more than mobile.
    }

    #[test]
    fn thumb_trace_fetches_are_counted() {
        let (trace, fanout) = mobile_trace(11, 5_000);
        let result = run(&trace, &fanout);
        assert_eq!(result.thumb_fetched, 0, "baseline binaries are all-ARM");
    }

    #[test]
    fn ledger_partitions_every_cycle() {
        for seed in [1u64, 7, 13] {
            let (trace, fanout) = mobile_trace(seed, 12_000);
            let sim = Simulator::new(CpuConfig::google_tablet(), MemConfig::google_tablet());
            let mut scratch = SimScratch::new();
            let (result, ledger) = sim.run_with_ledger(&trace, &fanout, &mut scratch);
            ledger
                .check(result.cycles)
                .expect("buckets must sum to total cycles");
            assert!(ledger.commit > 0, "a committing run must charge commit");
        }
    }

    #[test]
    fn fetch_stalls_are_a_projection_of_the_ledger() {
        let (trace, fanout) = mobile_trace(21, 15_000);
        let sim = Simulator::new(CpuConfig::google_tablet(), MemConfig::google_tablet());
        let mut scratch = SimScratch::new();
        let (result, ledger) = sim.run_with_ledger(&trace, &fanout, &mut scratch);
        assert_eq!(result.fetch_stalls.icache, ledger.fetch_stall_icache);
        assert_eq!(result.fetch_stalls.branch, ledger.fetch_stall_branch);
        assert_eq!(
            result.fetch_stalls.backpressure,
            ledger.fetch_stall_backpressure
        );
        assert_eq!(result.fetch_stalls.stall_for_i(), ledger.stall_for_i());
        assert_eq!(result.fetch_stalls.stall_for_rd(), ledger.stall_for_rd());
    }

    /// A cycle where fetch is supply-stalled while the fetch buffer is also
    /// full must be charged once, to F.StallForI — never to both buckets.
    ///
    /// The classifier makes double-counting structurally impossible (one
    /// `CycleClass` per cycle), and the priority order resolves the overlap
    /// in favor of the upstream supply stall: during an in-flight i-cache
    /// miss or branch-recovery window fetch never reaches the buffer-full
    /// check, so back-pressure can only be charged on cycles where fetch
    /// actually attempted supply. This test pins that ordering: shrinking
    /// the fetch buffer (more back-pressure opportunities) must not change
    /// total supply-stall attribution on the same trace beyond what the
    /// slower drain itself causes, and the partition must stay exact.
    #[test]
    fn supply_stall_wins_over_cooccurring_backpressure() {
        let (trace, fanout) = mobile_trace(5, 15_000);
        let mut tiny = CpuConfig::google_tablet();
        tiny.fetch_buffer = 4; // force frequent buffer-full windows
        let sim = Simulator::new(tiny, MemConfig::google_tablet());
        let mut scratch = SimScratch::new();
        let (result, ledger) = sim.run_with_ledger(&trace, &fanout, &mut scratch);
        ledger
            .check(result.cycles)
            .expect("partition must hold under heavy back-pressure");
        assert!(
            ledger.fetch_stall_backpressure > 0,
            "a 4-entry fetch buffer must exhibit back-pressure"
        );
        // Exhaustive partition: both stall families plus every backend
        // bucket still sum exactly — no cycle counted in two buckets.
        let fetch_side = ledger.stall_for_i() + ledger.stall_for_rd();
        let backend = ledger.decode
            + ledger.issue
            + ledger.execute
            + ledger.mem
            + ledger.commit
            + ledger.squash_idle;
        assert_eq!(fetch_side + backend, result.cycles);
    }
}
