//! The trace-driven cycle loop.
//!
//! Stage order within a cycle is commit → issue → dispatch → fetch, each
//! stage reading the state its predecessors left. The fetch stage follows
//! the committed path of the trace; control-flow costs (taken-branch
//! bubbles, misprediction stalls until resolution plus a redirect penalty)
//! and supply costs (i-cache misses) stall it, and a full fetch buffer
//! blocks it — producing the paper's two fetch-stall categories.
//!
//! Every cycle is classified exactly once at the end of the stage sequence
//! and charged to one [`CycleLedger`] bucket; the [`FetchStalls`] taxonomy
//! in the returned [`SimResult`] is *derived* from that partition, so the
//! stall counters cannot drift from (or double-count against) total
//! cycles. See [`critic_obs::ledger`] for the attribution order.

use std::collections::VecDeque;

use critic_isa::{FuKind, Opcode};
use critic_mem::{MemConfig, MemSystem};
use critic_obs::{CycleClass, CycleLedger};
use critic_workloads::{DynInsn, Trace};

use crate::bpu::Bpu;
use crate::config::CpuConfig;
use crate::crit::CritTable;
use crate::stats::{FetchStalls, SimResult, StageBreakdown};

/// Why the fetch stage is currently unable to supply instructions.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum SupplyStall {
    None,
    ICacheMiss,
    Branch,
}

const UNSET: u64 = u64::MAX;

/// Reusable per-run working memory for the cycle loop.
///
/// One `run` allocates seven per-instruction timestamp tables plus the
/// fetch/issue/reorder queues; across a campaign the simulator runs
/// thousands of times on same-length traces, so callers on the hot path
/// keep one `SimScratch` per worker and pass it to
/// [`Simulator::run_with_scratch`] — every table is then recycled
/// (cleared and refilled, never reallocated once warm).
#[derive(Debug, Default)]
pub struct SimScratch {
    fetched_at: Vec<u64>,
    supply_stall: Vec<u32>,
    blocked_at_fetch: Vec<u64>,
    blocked_at_decode: Vec<u64>,
    decoded_at: Vec<u64>,
    issued_at: Vec<u64>,
    done_at: Vec<u64>,
    fetch_queue: VecDeque<u32>,
    iq: Vec<u32>,
    rob: VecDeque<u32>,
    ready: Vec<u32>,
    issued_set: Vec<u32>,
    int_div_free: Vec<u64>,
    float_div_free: Vec<u64>,
}

impl SimScratch {
    /// Empty scratch; buffers grow on first use and are then recycled.
    pub fn new() -> SimScratch {
        SimScratch::default()
    }

    /// Re-initializes every table for an `n`-instruction run.
    fn reset(&mut self, n: usize, cfg: &CpuConfig) {
        fill(&mut self.fetched_at, n, UNSET);
        fill(&mut self.supply_stall, n, 0);
        fill(&mut self.blocked_at_fetch, n, 0);
        fill(&mut self.blocked_at_decode, n, 0);
        fill(&mut self.decoded_at, n, UNSET);
        fill(&mut self.issued_at, n, UNSET);
        fill(&mut self.done_at, n, UNSET);
        self.fetch_queue.clear();
        self.iq.clear();
        self.rob.clear();
        self.ready.clear();
        self.issued_set.clear();
        fill(&mut self.int_div_free, cfg.fu.int_div as usize, 0);
        fill(&mut self.float_div_free, cfg.fu.float_div as usize, 0);
    }
}

/// `clear` + `resize`: refills in place, reallocating only to grow.
fn fill<T: Clone>(v: &mut Vec<T>, n: usize, value: T) {
    v.clear();
    v.resize(n, value);
}

/// A configured simulator; call [`Simulator::run`] per trace.
#[derive(Debug, Clone)]
pub struct Simulator {
    cpu: CpuConfig,
    mem_config: MemConfig,
}

impl Simulator {
    /// Binds a core configuration and memory configuration.
    pub fn new(cpu: CpuConfig, mem_config: MemConfig) -> Simulator {
        Simulator { cpu, mem_config }
    }

    /// The core configuration.
    pub fn cpu_config(&self) -> &CpuConfig {
        &self.cpu
    }

    /// Runs the trace to completion and returns the timing result.
    ///
    /// `fanout` must be `trace.compute_fanout()` for the same trace; it
    /// feeds the criticality-table training (the paper trains from ROB
    /// observations — the true dynamic fanout is the converged version of
    /// that) and the critical-instruction stage aggregation of Fig. 3a.
    ///
    /// # Panics
    ///
    /// Panics if `fanout.len() != trace.len()`.
    pub fn run(&self, trace: &Trace, fanout: &[u32]) -> SimResult {
        self.run_with_scratch(trace, fanout, &mut SimScratch::new())
    }

    /// [`Simulator::run`] with caller-owned working memory: behaviour and
    /// results are identical, but the per-instruction tables and pipeline
    /// queues are recycled from `scratch` instead of allocated per run.
    ///
    /// # Panics
    ///
    /// Panics if `fanout.len() != trace.len()`.
    pub fn run_with_scratch(
        &self,
        trace: &Trace,
        fanout: &[u32],
        scratch: &mut SimScratch,
    ) -> SimResult {
        self.run_with_ledger(trace, fanout, scratch).0
    }

    /// [`Simulator::run_with_scratch`] returning the per-cycle accounting
    /// ledger alongside the result. The ledger is maintained on every run
    /// (one bucket increment per cycle — it *is* the stall bookkeeping, not
    /// an extra layer); this entry point merely hands the partition back
    /// instead of reducing it to [`FetchStalls`].
    ///
    /// Invariant: `ledger.total() == result.cycles`, enforced by a debug
    /// assertion here and by the observability test suite.
    ///
    /// # Panics
    ///
    /// Panics if `fanout.len() != trace.len()`.
    pub fn run_with_ledger(
        &self,
        trace: &Trace,
        fanout: &[u32],
        scratch: &mut SimScratch,
    ) -> (SimResult, CycleLedger) {
        assert_eq!(
            trace.len(),
            fanout.len(),
            "fanout slice must match the trace"
        );
        let cfg = &self.cpu;
        let mut mem = MemSystem::new(&self.mem_config);
        let mut bpu = Bpu::new(cfg.bpu_entries, cfg.bpu_history_bits, cfg.ras_depth);
        let mut crit_table = CritTable::new(cfg.bpu_entries, cfg.crit_threshold);

        let n = trace.len();
        let entries = &trace.entries;
        scratch.reset(n, cfg);
        // Destructure for disjoint borrows across the stage loops.
        let SimScratch {
            fetched_at,
            supply_stall,
            blocked_at_fetch,
            blocked_at_decode,
            decoded_at,
            issued_at,
            done_at,
            fetch_queue,
            iq,
            rob,
            ready,
            issued_set,
            int_div_free,
            float_div_free,
        } = scratch;
        // Cumulative count of backend-blocked cycles, sampled at fetch time;
        // lets commit attribute each instruction's buffer time between
        // "genuine fetch residency" and "ROB back-pressure".
        let mut blocked_cum = 0u64;

        let mut fetch_idx = 0usize;
        let mut current_line: Option<u64> = None;
        let mut fetch_resume_at = 0u64;
        let mut resume_reason = SupplyStall::None;
        let mut fetch_blocked_on: Option<u32> = None;
        let mut pending_supply = 0u32;
        let mut dispatch_block_until = 0u64;

        let mut now = 0u64;
        let mut head_since = 0u64;
        let mut ledger = CycleLedger::new();
        let mut stage_all = StageBreakdown::default();
        let mut stage_critical = StageBreakdown::default();
        let mut committed = 0u64;
        let mut cdp_switches = 0u64;
        let mut thumb_fetched = 0u64;

        let hard_cap = (n as u64).saturating_mul(1000).max(1_000_000);

        while fetch_idx < n || !fetch_queue.is_empty() || !rob.is_empty() {
            // ---- commit ----
            let mut commits = 0;
            while commits < cfg.width {
                let Some(&head) = rob.front() else { break };
                let hi = head as usize;
                if done_at[hi] > now {
                    break;
                }
                rob.pop_front();
                commits += 1;
                committed += 1;
                let e = &entries[hi];
                // Aggregate stage residencies. Fetch-buffer time that passed
                // while dispatch was blocked on a full ROB/IQ is *backend*
                // back-pressure, not fetch-stage time — gem5 charges it to
                // rename-blocked-on-ROB, the paper to "ROB queue
                // residencies" — so it lands in the commit bucket.
                let buffer_total = decoded_at[hi]
                    .saturating_sub(fetched_at[hi])
                    .saturating_sub(1);
                let buffer_blocked =
                    (blocked_at_decode[hi] - blocked_at_fetch[hi]).min(buffer_total);
                let buffer = buffer_total - buffer_blocked;
                let issue_wait = issued_at[hi].saturating_sub(decoded_at[hi]);
                let execute = done_at[hi].saturating_sub(issued_at[hi]);
                // Head-blocking time plus backend-blocked buffer time: the
                // ROB bucket charges culprits and back-pressure, not every
                // instruction queued behind them.
                let commit_wait = now.saturating_sub(done_at[hi].max(head_since)) + buffer_blocked;
                head_since = now;
                stage_all.add(
                    u64::from(supply_stall[hi]),
                    buffer,
                    1,
                    issue_wait,
                    execute,
                    commit_wait,
                );
                if fanout[hi] >= cfg.crit_threshold {
                    stage_critical.add(
                        u64::from(supply_stall[hi]),
                        buffer,
                        1,
                        issue_wait,
                        execute,
                        commit_wait,
                    );
                }
                // Criticality training (predictor-table hardware, Sec. II-A).
                crit_table.train(e.pc, fanout[hi]);
                if e.is_load() {
                    mem.train_load_criticality(e.pc, fanout[hi]);
                }
                // EFetch hook: observe committed calls.
                if e.op == Opcode::Bl {
                    if let Some(outcome) = e.branch {
                        mem.observe_call(outcome.target_pc, now);
                    }
                }
            }

            // ---- issue ----
            if !iq.is_empty() {
                ready.clear();
                ready.extend(iq.iter().copied().filter(|&i| {
                    entries[i as usize]
                        .deps_iter()
                        .all(|d| done_at[d as usize] != UNSET && done_at[d as usize] <= now)
                }));
                if cfg.prioritize_critical {
                    // Critical-first, stable within each class (program order).
                    ready.sort_by_key(|&i| !crit_table.is_critical(entries[i as usize].pc));
                }
                let mut issued_count = 0u32;
                let mut used = FuUse::default();
                issued_set.clear();
                for &i in ready.iter() {
                    if issued_count >= cfg.width {
                        break;
                    }
                    let e = &entries[i as usize];
                    let mut kind = e.fu_kind();
                    if kind == FuKind::Branch {
                        if let Some(outcome) = e.branch {
                            if outcome.target_pc == e.pc + u64::from(e.bytes) {
                                // Statically-sequential switch branches fold
                                // to ALU no-ops; they never contend for the
                                // single branch port.
                                kind = FuKind::IntAlu;
                            }
                        }
                    }
                    if !used.try_take(kind, &cfg.fu, now, int_div_free, float_div_free) {
                        continue;
                    }
                    // Latency.
                    let latency = match kind {
                        FuKind::Mem => {
                            let addr = e.mem_addr.unwrap_or(0);
                            if e.is_load() {
                                let lat = mem.data_access(addr, now);
                                mem.observe_load(e.pc, addr, now);
                                lat
                            } else {
                                // Stores retire through the store buffer at
                                // L1 speed; the access is still performed
                                // for traffic/energy accounting.
                                let _ = mem.data_access(addr, now);
                                u64::from(Opcode::Str.exec_latency())
                            }
                        }
                        _ => u64::from(e.op.exec_latency()),
                    };
                    issued_at[i as usize] = now;
                    let done = now + latency;
                    done_at[i as usize] = done;
                    // Occupy unpipelined units.
                    match kind {
                        FuKind::IntDiv => {
                            if let Some(free) = int_div_free.iter_mut().find(|f| **f <= now) {
                                *free = done;
                            }
                        }
                        FuKind::FloatDiv => {
                            if let Some(free) = float_div_free.iter_mut().find(|f| **f <= now) {
                                *free = done;
                            }
                        }
                        _ => {}
                    }
                    // Resolve a blocking mispredicted branch.
                    if fetch_blocked_on == Some(i) {
                        fetch_blocked_on = None;
                        fetch_resume_at = done + u64::from(cfg.redirect_penalty);
                        resume_reason = SupplyStall::Branch;
                    }
                    issued_set.push(i);
                    issued_count += 1;
                }
                if !issued_set.is_empty() {
                    iq.retain(|i| !issued_set.contains(i));
                }
            }

            // ---- dispatch (decode + rename) ----
            let mut dispatched_this_cycle = 0u32;
            let mut backend_blocked = false;
            if now >= dispatch_block_until {
                let mut dispatched = 0;
                while dispatched < cfg.width {
                    let Some(&head) = fetch_queue.front() else {
                        break;
                    };
                    let hi = head as usize;
                    if now < fetched_at[hi] + 1 {
                        break; // still in the decode pipe
                    }
                    let e = &entries[hi];
                    if e.is_cdp() {
                        // The format switch is a decoder *prefix*: the mode
                        // flip closed timing at 160 ps in the paper's 45 nm
                        // synthesis, so it is absorbed by the pipelined
                        // decoder — it consumes fetch bytes and a fetch-queue
                        // entry but no dispatch slot, and never enters the
                        // ROB (Sec. IV-B). The paper's conservative +1 decode
                        // cycle is a latency (pipeline-fill) effect with no
                        // steady-state bandwidth cost.
                        fetch_queue.pop_front();
                        decoded_at[hi] = now;
                        blocked_at_decode[hi] = blocked_cum;
                        done_at[hi] = now;
                        cdp_switches += 1;
                        // The paper conservatively charges one extra decode
                        // cycle; a pipelined decoder hides it, so only the
                        // cycles *beyond* the first stall dispatch (the
                        // knob matters for the ablation sweep).
                        dispatch_block_until = now + u64::from(cfg.cdp_bubble.saturating_sub(1));
                        continue;
                    }
                    if rob.len() >= cfg.rob_entries || iq.len() >= cfg.iq_entries {
                        backend_blocked = dispatched == 0;
                        break;
                    }
                    fetch_queue.pop_front();
                    decoded_at[hi] = now;
                    blocked_at_decode[hi] = blocked_cum;
                    rob.push_back(head);
                    iq.push(head);
                    dispatched += 1;
                }
                dispatched_this_cycle = dispatched;
            }
            if backend_blocked {
                blocked_cum += 1;
            }

            // ---- fetch ----
            let fetch_stall: Option<CycleClass> = if fetch_idx < n {
                if fetch_blocked_on.is_some() {
                    pending_supply += 1;
                    Some(CycleClass::FetchStallBranch)
                } else if now < fetch_resume_at {
                    pending_supply += 1;
                    match resume_reason {
                        SupplyStall::ICacheMiss => Some(CycleClass::FetchStallICache),
                        SupplyStall::Branch => Some(CycleClass::FetchStallBranch),
                        SupplyStall::None => None,
                    }
                } else {
                    self.fetch_cycle(
                        entries,
                        &mut fetch_idx,
                        now,
                        &mut mem,
                        &mut bpu,
                        fetch_queue,
                        fetched_at,
                        supply_stall,
                        &mut pending_supply,
                        &mut current_line,
                        &mut fetch_resume_at,
                        &mut resume_reason,
                        &mut fetch_blocked_on,
                        &mut thumb_fetched,
                        dispatched_this_cycle,
                        blocked_cum,
                        blocked_at_fetch,
                    )
                }
            } else {
                None
            };

            // ---- ledger: classify this cycle, exactly once ----
            // Fetch-side stalls first (attribution order documented in
            // `critic_obs::ledger`), then backend progress by what the ROB
            // head was doing, then front-end-only progress, then drain.
            let class = if let Some(stall) = fetch_stall {
                stall
            } else if commits > 0 {
                CycleClass::Commit
            } else if let Some(&head) = rob.front() {
                let hi = head as usize;
                if issued_at[hi] != UNSET {
                    if entries[hi].fu_kind() == FuKind::Mem {
                        CycleClass::Mem
                    } else {
                        CycleClass::Execute
                    }
                } else {
                    CycleClass::Issue
                }
            } else if !fetch_queue.is_empty() || dispatched_this_cycle > 0 {
                CycleClass::Decode
            } else {
                CycleClass::SquashIdle
            };
            ledger.charge(class);

            now += 1;
            if now > hard_cap {
                panic!("simulation exceeded the cycle cap: deadlock in the pipeline model");
            }
        }

        debug_assert!(
            ledger.check(now).is_ok(),
            "cycle ledger must partition the run: {:?}",
            ledger.check(now)
        );
        // The Fig. 3b stall taxonomy is a projection of the ledger — the
        // same audited partition feeds figures and EXPERIMENTS.md.
        let fetch_stalls = FetchStalls {
            icache: ledger.fetch_stall_icache,
            branch: ledger.fetch_stall_branch,
            backpressure: ledger.fetch_stall_backpressure,
        };
        let result = SimResult {
            cycles: now,
            committed,
            cdp_switches,
            fetch_stalls,
            stage_all,
            stage_critical,
            bpu: bpu.stats(),
            mem: mem.stats(),
            thumb_fetched,
        };
        (result, ledger)
    }

    #[allow(clippy::too_many_arguments)]
    fn fetch_cycle(
        &self,
        entries: &[DynInsn],
        fetch_idx: &mut usize,
        now: u64,
        mem: &mut MemSystem,
        bpu: &mut Bpu,
        fetch_queue: &mut VecDeque<u32>,
        fetched_at: &mut [u64],
        supply_stall: &mut [u32],
        pending_supply: &mut u32,
        current_line: &mut Option<u64>,
        fetch_resume_at: &mut u64,
        resume_reason: &mut SupplyStall,
        fetch_blocked_on: &mut Option<u32>,
        thumb_fetched: &mut u64,
        dispatched_this_cycle: u32,
        blocked_cum: u64,
        blocked_at_fetch: &mut [u64],
    ) -> Option<CycleClass> {
        let mut stall: Option<CycleClass> = None;
        let cfg = &self.cpu;
        let icache_hit = 2u64; // L1I hit latency from MemConfig geometry
        let mut bytes = cfg.fetch_bytes_per_cycle;
        // Fetch is *byte*-limited: one 16-byte access per cycle delivers 4
        // ARM words or up to 8 Thumb half-words — this is exactly the
        // "nearly doubles the fetch bandwidth" effect the 16-bit format
        // buys (Sec. III-B). The instruction cap models the fetch buffer's
        // half-word-granular write ports.
        let insn_cap = cfg.fetch_width * 2;
        let mut delivered = 0u32;
        while delivered < insn_cap && *fetch_idx < entries.len() {
            if fetch_queue.len() >= cfg.fetch_buffer {
                // Count back-pressure only when the pipe is truly blocked:
                // buffer full *and* decode moved nothing this cycle. A full
                // buffer with decode draining at full width is steady-state
                // flow, not a stall.
                if delivered == 0 && dispatched_this_cycle == 0 {
                    stall = Some(CycleClass::FetchStallBackpressure);
                }
                break;
            }
            let idx = *fetch_idx;
            let e = &entries[idx];
            let line = e.pc & !63;
            if *current_line != Some(line) {
                let latency = mem.ifetch(e.pc, now);
                // The line will be resident once the miss returns; remember
                // it so we do not re-access on resume.
                *current_line = Some(line);
                if latency > icache_hit {
                    *fetch_resume_at = now + latency;
                    *resume_reason = SupplyStall::ICacheMiss;
                    if delivered == 0 {
                        stall = Some(CycleClass::FetchStallICache);
                        *pending_supply += 1;
                    }
                    break;
                }
            }
            if u64::from(e.bytes) > bytes {
                break; // per-cycle fetch bandwidth exhausted
            }
            bytes -= u64::from(e.bytes);
            fetched_at[idx] = now;
            blocked_at_fetch[idx] = blocked_cum;
            // Every instruction delivered in this cycle waited out the same
            // supply stall (they sat in the missed line / post-redirect
            // shadow together); the counter clears at end of cycle.
            supply_stall[idx] = *pending_supply;
            fetch_queue.push_back(idx as u32);
            if e.bytes == 2 {
                *thumb_fetched += 1;
            }
            *fetch_idx += 1;
            delivered += 1;

            let Some(outcome) = e.branch else { continue };
            if cfg.perfect_branch {
                if outcome.taken {
                    *current_line = None; // discontinuity, but no bubble
                }
                continue;
            }
            let correct = match e.op {
                Opcode::B if e.predicated => bpu.predict_conditional(e.pc, outcome.taken),
                Opcode::B => true, // unconditional direct: BTB hit
                Opcode::Bl => {
                    bpu.push_return(e.pc + u64::from(e.bytes));
                    true
                }
                Opcode::Bx => bpu.predict_return(outcome.target_pc),
                _ => true,
            };
            if !correct {
                // Fetch stops until the branch resolves in execute.
                *fetch_blocked_on = Some(idx as u32);
                *current_line = None;
                break;
            }
            if outcome.taken {
                if outcome.target_pc == e.pc + u64::from(e.bytes) {
                    // A branch to the very next instruction (the format
                    // switch of Sec. IV-A): the "redirect" is sequential, so
                    // the fetch group merely ends early — the branch still
                    // costs its fetch bytes, a ROB slot, and a branch unit.
                    break;
                }
                // Correctly-predicted taken branch: redirect bubble.
                *fetch_resume_at = now + 1 + u64::from(cfg.taken_bubble);
                *resume_reason = SupplyStall::Branch;
                *current_line = None;
                break;
            }
        }
        if delivered > 0 {
            *pending_supply = 0;
        }
        stall
    }
}

/// Per-cycle functional-unit usage tracking.
#[derive(Debug, Default)]
struct FuUse {
    int_alu: u32,
    int_mult: u32,
    int_div: u32,
    mem: u32,
    branch: u32,
    float_add: u32,
    float_mul: u32,
    float_div: u32,
}

impl FuUse {
    fn try_take(
        &mut self,
        kind: FuKind,
        pool: &crate::config::FuPool,
        now: u64,
        int_div_free: &[u64],
        float_div_free: &[u64],
    ) -> bool {
        match kind {
            FuKind::IntAlu | FuKind::None => take(&mut self.int_alu, pool.int_alu),
            FuKind::IntMult => take(&mut self.int_mult, pool.int_mult),
            FuKind::IntDiv => {
                int_div_free.iter().any(|&f| f <= now) && take(&mut self.int_div, pool.int_div)
            }
            FuKind::Mem => take(&mut self.mem, pool.mem_ports),
            FuKind::Branch => take(&mut self.branch, pool.branch),
            FuKind::FloatAdd => take(&mut self.float_add, pool.float_add),
            FuKind::FloatMul => take(&mut self.float_mul, pool.float_mul),
            FuKind::FloatDiv => {
                float_div_free.iter().any(|&f| f <= now)
                    && take(&mut self.float_div, pool.float_div)
            }
        }
    }
}

fn take(used: &mut u32, cap: u32) -> bool {
    if *used < cap {
        *used += 1;
        true
    } else {
        false
    }
}

#[cfg(test)]
mod tests {
    use critic_workloads::{ExecutionPath, GenParams, ProgramGenerator, Trace};

    use super::*;

    fn mobile_trace(seed: u64, len: usize) -> (Trace, Vec<u32>) {
        let mut p = GenParams::mobile(seed);
        p.num_functions = 24;
        let program = ProgramGenerator::new(p).generate();
        let path = ExecutionPath::generate(&program, seed ^ 0xF00, len);
        let trace = Trace::expand(&program, &path);
        let fanout = trace.compute_fanout();
        (trace, fanout)
    }

    fn spec_trace(seed: u64, len: usize) -> (Trace, Vec<u32>) {
        let mut p = GenParams::spec_int(seed);
        p.num_functions = 8;
        let program = ProgramGenerator::new(p).generate();
        let path = ExecutionPath::generate(&program, seed ^ 0xF00, len);
        let trace = Trace::expand(&program, &path);
        let fanout = trace.compute_fanout();
        (trace, fanout)
    }

    fn run(trace: &Trace, fanout: &[u32]) -> SimResult {
        Simulator::new(CpuConfig::google_tablet(), MemConfig::google_tablet()).run(trace, fanout)
    }

    #[test]
    fn commits_every_instruction() {
        let (trace, fanout) = mobile_trace(1, 8_000);
        let result = run(&trace, &fanout);
        assert_eq!(result.committed + result.cdp_switches, trace.len() as u64);
        assert!(result.cycles > 0);
    }

    #[test]
    fn ipc_is_plausible_for_a_4_wide_core() {
        let (trace, fanout) = mobile_trace(2, 20_000);
        let result = run(&trace, &fanout);
        let ipc = result.ipc();
        assert!(ipc > 0.2 && ipc < 4.0, "ipc={ipc}");
    }

    #[test]
    fn simulation_is_deterministic() {
        let (trace, fanout) = mobile_trace(3, 6_000);
        let a = run(&trace, &fanout);
        let b = run(&trace, &fanout);
        assert_eq!(a, b);
    }

    #[test]
    fn stage_residencies_cover_critical_instructions() {
        let (trace, fanout) = mobile_trace(4, 20_000);
        let result = run(&trace, &fanout);
        assert!(
            result.stage_critical.count > 0,
            "planted chains must yield critical insns"
        );
        assert!(result.stage_critical.count < result.stage_all.count);
        assert!(result.stage_all.total() > 0);
    }

    #[test]
    fn perfect_branching_is_never_slower() {
        let (trace, fanout) = mobile_trace(5, 15_000);
        let base = run(&trace, &fanout);
        let perfect = Simulator::new(
            CpuConfig::google_tablet().with_perfect_branch(),
            MemConfig::google_tablet(),
        )
        .run(&trace, &fanout);
        assert!(perfect.cycles <= base.cycles);
        assert_eq!(perfect.bpu.mispredicts, 0);
        assert_eq!(perfect.fetch_stalls.branch, 0);
    }

    #[test]
    fn double_fd_is_never_slower() {
        let (trace, fanout) = mobile_trace(6, 15_000);
        let base = run(&trace, &fanout);
        let wide = Simulator::new(
            CpuConfig::google_tablet().with_double_fd(),
            MemConfig::google_tablet().with_half_icache_latency(),
        )
        .run(&trace, &fanout);
        assert!(wide.cycles <= base.cycles);
    }

    #[test]
    fn bigger_icache_reduces_icache_stalls() {
        let (trace, fanout) = mobile_trace(7, 30_000);
        let base = run(&trace, &fanout);
        let big = Simulator::new(
            CpuConfig::google_tablet(),
            MemConfig::google_tablet().with_4x_icache(),
        )
        .run(&trace, &fanout);
        assert!(
            big.fetch_stalls.icache <= base.fetch_stalls.icache,
            "4x i-cache must not increase i-stalls"
        );
    }

    #[test]
    fn mobile_baseline_shows_fetch_side_stalls() {
        // The paper's core observation (Fig. 3b): mobile executions lose a
        // significant share of cycles to fetch stalls.
        let (trace, fanout) = mobile_trace(8, 40_000);
        let result = run(&trace, &fanout);
        let frac_i = result.stall_for_i_frac();
        let frac_rd = result.stall_for_rd_frac();
        assert!(frac_i > 0.02, "expected visible F.StallForI, got {frac_i}");
        assert!(
            frac_rd > 0.01,
            "expected visible F.StallForR+D, got {frac_rd}"
        );
    }

    #[test]
    fn spec_commits_and_exercises_dram() {
        let (trace, fanout) = spec_trace(9, 20_000);
        let result = run(&trace, &fanout);
        assert_eq!(result.committed + result.cdp_switches, trace.len() as u64);
        assert!(
            result.mem.dram.accesses > 0,
            "SPEC working sets must reach DRAM"
        );
    }

    #[test]
    fn prioritization_changes_schedule_without_breaking() {
        let (trace, fanout) = mobile_trace(10, 15_000);
        let base = run(&trace, &fanout);
        let prio = Simulator::new(
            CpuConfig::google_tablet().with_critical_prioritization(),
            MemConfig::google_tablet(),
        )
        .run(&trace, &fanout);
        assert_eq!(prio.committed, base.committed);
        // Not asserting direction: the paper's whole point is that this
        // helps SPEC much more than mobile.
    }

    #[test]
    fn thumb_trace_fetches_are_counted() {
        let (trace, fanout) = mobile_trace(11, 5_000);
        let result = run(&trace, &fanout);
        assert_eq!(result.thumb_fetched, 0, "baseline binaries are all-ARM");
    }

    #[test]
    fn ledger_partitions_every_cycle() {
        for seed in [1u64, 7, 13] {
            let (trace, fanout) = mobile_trace(seed, 12_000);
            let sim = Simulator::new(CpuConfig::google_tablet(), MemConfig::google_tablet());
            let mut scratch = SimScratch::new();
            let (result, ledger) = sim.run_with_ledger(&trace, &fanout, &mut scratch);
            ledger
                .check(result.cycles)
                .expect("buckets must sum to total cycles");
            assert!(ledger.commit > 0, "a committing run must charge commit");
        }
    }

    #[test]
    fn fetch_stalls_are_a_projection_of_the_ledger() {
        let (trace, fanout) = mobile_trace(21, 15_000);
        let sim = Simulator::new(CpuConfig::google_tablet(), MemConfig::google_tablet());
        let mut scratch = SimScratch::new();
        let (result, ledger) = sim.run_with_ledger(&trace, &fanout, &mut scratch);
        assert_eq!(result.fetch_stalls.icache, ledger.fetch_stall_icache);
        assert_eq!(result.fetch_stalls.branch, ledger.fetch_stall_branch);
        assert_eq!(
            result.fetch_stalls.backpressure,
            ledger.fetch_stall_backpressure
        );
        assert_eq!(result.fetch_stalls.stall_for_i(), ledger.stall_for_i());
        assert_eq!(result.fetch_stalls.stall_for_rd(), ledger.stall_for_rd());
    }

    /// A cycle where fetch is supply-stalled while the fetch buffer is also
    /// full must be charged once, to F.StallForI — never to both buckets.
    ///
    /// The classifier makes double-counting structurally impossible (one
    /// `CycleClass` per cycle), and the priority order resolves the overlap
    /// in favor of the upstream supply stall: during an in-flight i-cache
    /// miss or branch-recovery window fetch never reaches the buffer-full
    /// check, so back-pressure can only be charged on cycles where fetch
    /// actually attempted supply. This test pins that ordering: shrinking
    /// the fetch buffer (more back-pressure opportunities) must not change
    /// total supply-stall attribution on the same trace beyond what the
    /// slower drain itself causes, and the partition must stay exact.
    #[test]
    fn supply_stall_wins_over_cooccurring_backpressure() {
        let (trace, fanout) = mobile_trace(5, 15_000);
        let mut tiny = CpuConfig::google_tablet();
        tiny.fetch_buffer = 4; // force frequent buffer-full windows
        let sim = Simulator::new(tiny, MemConfig::google_tablet());
        let mut scratch = SimScratch::new();
        let (result, ledger) = sim.run_with_ledger(&trace, &fanout, &mut scratch);
        ledger
            .check(result.cycles)
            .expect("partition must hold under heavy back-pressure");
        assert!(
            ledger.fetch_stall_backpressure > 0,
            "a 4-entry fetch buffer must exhibit back-pressure"
        );
        // Exhaustive partition: both stall families plus every backend
        // bucket still sum exactly — no cycle counted in two buckets.
        let fetch_side = ledger.stall_for_i() + ledger.stall_for_rd();
        let backend = ledger.decode
            + ledger.issue
            + ledger.execute
            + ledger.mem
            + ledger.commit
            + ledger.squash_idle;
        assert_eq!(fetch_side + backend, result.cycles);
    }
}
