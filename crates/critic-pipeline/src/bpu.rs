//! Tournament branch predictor with a return-address stack
//! (Table I: "4k Entry 2 level BPU").
//!
//! The conditional side is a classic tournament: a *bimodal* table indexed
//! by PC captures biased branches, a *gshare* two-level table (global
//! history XOR PC) captures patterns, and a chooser table picks per PC.
//! Returns are predicted by a bounded return-address stack.

use serde::{Deserialize, Serialize};

/// Prediction counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct BpuStats {
    /// Conditional-branch predictions made.
    pub lookups: u64,
    /// Conditional-branch mispredictions.
    pub mispredicts: u64,
    /// Return predictions that missed the RAS.
    pub ras_mispredicts: u64,
}

impl BpuStats {
    /// Conditional misprediction rate.
    pub fn misp_rate(&self) -> f64 {
        if self.lookups == 0 {
            0.0
        } else {
            self.mispredicts as f64 / self.lookups as f64
        }
    }
}

/// The predictor.
#[derive(Debug, Clone)]
pub struct Bpu {
    bimodal: Vec<u8>,
    gshare: Vec<u8>,
    chooser: Vec<u8>, // 0..=3: low favours bimodal, high favours gshare
    history: u64,
    history_mask: u64,
    index_mask: usize,
    ras: Vec<u64>,
    ras_depth: usize,
    stats: BpuStats,
}

impl Bpu {
    /// Builds a predictor with `entries` counters per table (power of two)
    /// and `history_bits` of global history.
    ///
    /// # Panics
    ///
    /// Panics if `entries` is not a power of two.
    pub fn new(entries: usize, history_bits: u32, ras_depth: usize) -> Bpu {
        assert!(
            entries.is_power_of_two(),
            "BPU entries must be a power of two"
        );
        Bpu {
            bimodal: vec![2; entries],
            gshare: vec![2; entries],
            chooser: vec![1; entries], // weakly favour bimodal
            history: 0,
            history_mask: (1u64 << history_bits) - 1,
            index_mask: entries - 1,
            ras: Vec::new(),
            ras_depth,
            stats: BpuStats::default(),
        }
    }

    /// Re-initializes to the untrained state [`Bpu::new`] produces,
    /// recycling the table allocations when the size is unchanged.
    ///
    /// # Panics
    ///
    /// Panics if `entries` is not a power of two.
    pub fn reset_to(&mut self, entries: usize, history_bits: u32, ras_depth: usize) {
        if self.bimodal.len() == entries {
            self.bimodal.fill(2);
            self.gshare.fill(2);
            self.chooser.fill(1);
            self.history = 0;
            self.history_mask = (1u64 << history_bits) - 1;
            self.ras.clear();
            self.ras_depth = ras_depth;
            self.stats = BpuStats::default();
        } else {
            *self = Bpu::new(entries, history_bits, ras_depth);
        }
    }

    fn pc_index(&self, pc: u64) -> usize {
        ((pc >> 2) as usize) & self.index_mask
    }

    fn gshare_index(&self, pc: u64) -> usize {
        (((pc >> 2) ^ self.history) as usize) & self.index_mask
    }

    /// Predicts a conditional branch and trains with the real outcome.
    /// Returns `true` if the prediction was correct.
    pub fn predict_conditional(&mut self, pc: u64, taken: bool) -> bool {
        self.stats.lookups += 1;
        let bi = self.pc_index(pc);
        let gi = self.gshare_index(pc);
        let bimodal_taken = self.bimodal[bi] >= 2;
        let gshare_taken = self.gshare[gi] >= 2;
        let use_gshare = self.chooser[bi] >= 2;
        let predicted = if use_gshare {
            gshare_taken
        } else {
            bimodal_taken
        };

        // Train the chooser toward whichever component was right.
        match (bimodal_taken == taken, gshare_taken == taken) {
            (true, false) => self.chooser[bi] = self.chooser[bi].saturating_sub(1),
            (false, true) => self.chooser[bi] = (self.chooser[bi] + 1).min(3),
            _ => {}
        }
        // Train both components.
        train_counter(&mut self.bimodal[bi], taken);
        train_counter(&mut self.gshare[gi], taken);
        self.history = ((self.history << 1) | u64::from(taken)) & self.history_mask;

        let correct = predicted == taken;
        if !correct {
            self.stats.mispredicts += 1;
        }
        correct
    }

    /// Records a call for later return prediction.
    pub fn push_return(&mut self, return_pc: u64) {
        if self.ras.len() == self.ras_depth {
            self.ras.remove(0);
        }
        self.ras.push(return_pc);
    }

    /// Predicts an indirect return; returns `true` if the RAS had the right
    /// target.
    pub fn predict_return(&mut self, actual_target: u64) -> bool {
        match self.ras.pop() {
            Some(predicted) if predicted == actual_target => true,
            _ => {
                self.stats.ras_mispredicts += 1;
                false
            }
        }
    }

    /// Counters so far.
    pub fn stats(&self) -> BpuStats {
        self.stats
    }
}

fn train_counter(counter: &mut u8, taken: bool) {
    if taken {
        *counter = (*counter + 1).min(3);
    } else {
        *counter = counter.saturating_sub(1);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn bpu() -> Bpu {
        Bpu::new(4096, 12, 16)
    }

    #[test]
    fn learns_a_biased_branch() {
        let mut b = bpu();
        let pc = 0x1000;
        for _ in 0..64 {
            b.predict_conditional(pc, true);
        }
        let before = b.stats().mispredicts;
        for _ in 0..64 {
            b.predict_conditional(pc, true);
        }
        assert_eq!(
            b.stats().mispredicts,
            before,
            "a settled biased branch never mispredicts"
        );
    }

    #[test]
    fn biased_branches_survive_many_static_sites() {
        // The tournament's bimodal side must keep many independent biased
        // branches predictable even when gshare contexts are sparse.
        let mut b = bpu();
        let pcs: Vec<u64> = (0..400).map(|i| 0x1_0000 + i * 44).collect();
        // Deterministic pseudo-random interleave of sites, each 95% taken.
        let mut x = 7u64;
        for round in 0..60 {
            for &pc in &pcs {
                x = x.wrapping_mul(6364136223846793005).wrapping_add(1);
                let taken = (x >> 40) % 100 < 95;
                let _ = round;
                b.predict_conditional(pc, taken);
            }
        }
        assert!(
            b.stats().misp_rate() < 0.12,
            "tournament should hold ~bias error, got {:.3}",
            b.stats().misp_rate()
        );
    }

    #[test]
    fn learns_an_alternating_pattern_via_history() {
        let mut b = bpu();
        let pc = 0x2000;
        for i in 0..256 {
            b.predict_conditional(pc, i % 2 == 0);
        }
        let before = b.stats().mispredicts;
        for i in 0..256 {
            b.predict_conditional(pc, i % 2 == 0);
        }
        let new = b.stats().mispredicts - before;
        assert!(
            new < 16,
            "gshare side should capture alternation, got {new} misses"
        );
    }

    #[test]
    fn random_branches_mispredict_often() {
        let mut b = bpu();
        let mut x = 12345u64;
        let mut outcomes = Vec::new();
        for _ in 0..2000 {
            x = x
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            outcomes.push((x >> 33) & 1 == 1);
        }
        for (i, &taken) in outcomes.iter().enumerate() {
            b.predict_conditional(0x3000 + (i as u64 % 7) * 4, taken);
        }
        assert!(
            b.stats().misp_rate() > 0.25,
            "patternless branches should hurt"
        );
    }

    #[test]
    fn ras_predicts_returns() {
        let mut b = bpu();
        b.push_return(0x100);
        b.push_return(0x200);
        assert!(b.predict_return(0x200));
        assert!(b.predict_return(0x100));
        assert!(!b.predict_return(0x300), "empty stack mispredicts");
        assert_eq!(b.stats().ras_mispredicts, 1);
    }

    #[test]
    fn ras_overflow_drops_oldest() {
        let mut b = Bpu::new(16, 4, 2);
        b.push_return(0x1);
        b.push_return(0x2);
        b.push_return(0x3); // evicts 0x1
        assert!(b.predict_return(0x3));
        assert!(b.predict_return(0x2));
        assert!(!b.predict_return(0x1));
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn entries_must_be_power_of_two() {
        let _ = Bpu::new(1000, 12, 16);
    }
}
