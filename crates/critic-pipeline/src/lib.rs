//! Cycle-level out-of-order superscalar CPU model (the paper's Table I core).
//!
//! A trace-driven timing model of a 4-wide Fetch/Decode/Rename/ROB/Issue/
//! Execute/Commit pipeline with a 128-entry ROB and a 4K-entry two-level
//! branch predictor, attached to the `critic-mem` hierarchy. Beyond plain
//! timing it implements exactly the instrumentation the paper's analysis
//! needs:
//!
//! * **fetch-stall taxonomy** (Sec. II-D): every cycle the fetch stage
//!   delivers nothing is attributed to either *F.StallForI* (waiting for
//!   instruction supply — i-cache misses, branch redirect/misprediction) or
//!   *F.StallForR+D* (the fetch buffer is full because the rest of the
//!   pipeline exerts back-pressure);
//! * **per-stage residency accounting** for Fig. 3a's fetch-to-commit
//!   breakdown, aggregated separately for high-fanout (critical)
//!   instructions;
//! * **criticality hooks**: a PC-indexed predictor table trained with
//!   observed ROB fanout (Sec. II-A), used by the two single-instruction
//!   baselines the paper critiques — critical-load prefetching (via the
//!   CLPT in `critic-mem`) and critical-first issue prioritization
//!   ([`CpuConfig::prioritize_critical`], the `BackendPrio` of Fig. 11);
//! * **format-switch costs**: the CDP decode bubble of switching approach 2
//!   and the full pipeline cost of the branch-pair switch of approach 1.
//!
//! Wrong-path execution is approximated: on a mispredicted branch, fetch
//! stalls until the branch resolves and then pays a redirect penalty —
//! wrong-path instructions do not pollute the caches. This is the standard
//! trace-driven simplification; it preserves every effect the paper's
//! experiments measure.
//!
//! # Example
//!
//! ```
//! use critic_pipeline::{CpuConfig, Simulator};
//! use critic_mem::MemConfig;
//! use critic_workloads::{ExecutionPath, Trace};
//! use critic_workloads::suite::Suite;
//!
//! let mut app = Suite::Mobile.apps()[0].clone();
//! app.params.num_functions = 24; // keep the doctest fast
//! let program = app.generate_program();
//! let path = ExecutionPath::generate(&program, 1, 10_000);
//! let trace = Trace::expand(&program, &path);
//! let fanout = trace.compute_fanout();
//!
//! let result = Simulator::new(CpuConfig::google_tablet(), MemConfig::google_tablet())
//!     .run(&trace, &fanout);
//! assert!(result.cycles > 0);
//! assert!(result.ipc() > 0.1 && result.ipc() < 4.0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod batch;
pub mod bpu;
pub mod config;
pub mod crit;
pub mod reference;
pub mod sim;
pub mod stats;
pub mod stream_sim;

pub use batch::{BatchSimulator, BatchStats};
pub use bpu::{Bpu, BpuStats};
pub use config::{CpuConfig, FuPool};
pub use crit::CritTable;
pub use critic_obs::{CycleClass, CycleLedger};
pub use reference::run_reference;
pub use sim::{with_thread_scratch, DecodedTrace, SimEngine, SimScratch, Simulator};
pub use stats::{FetchStalls, SimResult, StageBreakdown};
pub use stream_sim::{StreamRunStats, StreamScratch};
