//! Simulation results: cycles, fetch-stall taxonomy, stage residencies.

use critic_mem::MemStats;
use serde::{Deserialize, Serialize};

use crate::bpu::BpuStats;

/// Fetch-stall cycle attribution (paper Fig. 3b).
///
/// Derived from the simulator's [`critic_obs::CycleLedger`] — each field is
/// a projection of one ledger bucket, so the counts inherit the ledger's
/// single-attribution guarantee: a cycle stalled for both instruction
/// supply and back-pressure is charged once, to the supply stall (the
/// upstream cause). See `critic_obs::ledger` for the full priority order.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct FetchStalls {
    /// Cycles fetch supplied nothing because of an i-cache miss
    /// (F.StallForI, i-cache component).
    pub icache: u64,
    /// Cycles fetch supplied nothing because of branch redirect or
    /// misprediction recovery (F.StallForI, branch component).
    pub branch: u64,
    /// Cycles fetch supplied nothing because the fetch buffer was full —
    /// back-pressure from decode onward (F.StallForR+D).
    pub backpressure: u64,
}

impl FetchStalls {
    /// Total F.StallForI cycles.
    pub fn stall_for_i(&self) -> u64 {
        self.icache + self.branch
    }

    /// Total F.StallForR+D cycles.
    pub fn stall_for_rd(&self) -> u64 {
        self.backpressure
    }
}

/// Summed per-stage residencies over a set of instructions (Fig. 3a).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct StageBreakdown {
    /// Instructions aggregated.
    pub count: u64,
    /// Cycles waiting for instruction supply immediately before fetch
    /// (charged to the first instruction delivered after the stall).
    pub fetch_supply: u64,
    /// Cycles sitting in the fetch buffer before decode drained them.
    pub fetch_buffer: u64,
    /// Decode/rename cycles.
    pub decode: u64,
    /// Cycles in the issue queue waiting for operands or ports.
    pub issue_wait: u64,
    /// Execution cycles (including memory latency for loads).
    pub execute: u64,
    /// Cycles between completion and in-order commit (ROB residency).
    pub commit_wait: u64,
}

impl StageBreakdown {
    /// Total fetch-to-commit cycles across all aggregated instructions.
    pub fn total(&self) -> u64 {
        self.fetch_supply
            + self.fetch_buffer
            + self.decode
            + self.issue_wait
            + self.execute
            + self.commit_wait
    }

    /// The fetch-stage share (supply + buffer) of the total, 0..1.
    pub fn fetch_share(&self) -> f64 {
        let total = self.total();
        if total == 0 {
            0.0
        } else {
            (self.fetch_supply + self.fetch_buffer) as f64 / total as f64
        }
    }

    /// Share of a single component of the total, 0..1.
    pub fn share(&self, component: u64) -> f64 {
        let total = self.total();
        if total == 0 {
            0.0
        } else {
            component as f64 / total as f64
        }
    }

    pub(crate) fn add(
        &mut self,
        supply: u64,
        buffer: u64,
        decode: u64,
        issue: u64,
        execute: u64,
        commit: u64,
    ) {
        self.count += 1;
        self.fetch_supply += supply;
        self.fetch_buffer += buffer;
        self.decode += decode;
        self.issue_wait += issue;
        self.execute += execute;
        self.commit_wait += commit;
    }
}

/// Everything one simulation run produces.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct SimResult {
    /// Total cycles to commit the whole trace.
    pub cycles: u64,
    /// Committed instructions (including compiler-inserted overhead such as
    /// switch branches; excluding CDPs, which never enter the ROB).
    pub committed: u64,
    /// CDP format switches consumed by the decoder.
    pub cdp_switches: u64,
    /// Fetch-stall attribution.
    pub fetch_stalls: FetchStalls,
    /// Stage residencies over all instructions.
    pub stage_all: StageBreakdown,
    /// Stage residencies over high-fanout (critical) instructions only.
    pub stage_critical: StageBreakdown,
    /// Branch predictor counters.
    pub bpu: BpuStats,
    /// Memory-hierarchy counters.
    pub mem: MemStats,
    /// Dynamic instructions that were fetched in 16-bit format.
    pub thumb_fetched: u64,
}

impl SimResult {
    /// Committed instructions per cycle.
    pub fn ipc(&self) -> f64 {
        if self.cycles == 0 {
            0.0
        } else {
            self.committed as f64 / self.cycles as f64
        }
    }

    /// Speedup of this run relative to a baseline run **of the same
    /// workload path** (cycles ratio).
    pub fn speedup_over(&self, baseline: &SimResult) -> f64 {
        if self.cycles == 0 {
            0.0
        } else {
            baseline.cycles as f64 / self.cycles as f64
        }
    }

    /// F.StallForI as a fraction of total execution cycles.
    pub fn stall_for_i_frac(&self) -> f64 {
        if self.cycles == 0 {
            0.0
        } else {
            self.fetch_stalls.stall_for_i() as f64 / self.cycles as f64
        }
    }

    /// F.StallForR+D as a fraction of total execution cycles.
    pub fn stall_for_rd_frac(&self) -> f64 {
        if self.cycles == 0 {
            0.0
        } else {
            self.fetch_stalls.stall_for_rd() as f64 / self.cycles as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn breakdown_totals_and_shares() {
        let mut b = StageBreakdown::default();
        b.add(10, 10, 5, 15, 40, 20);
        assert_eq!(b.total(), 100);
        assert!((b.fetch_share() - 0.2).abs() < 1e-9);
        assert!((b.share(b.execute) - 0.4).abs() < 1e-9);
        assert_eq!(b.count, 1);
    }

    #[test]
    fn empty_breakdown_has_zero_shares() {
        let b = StageBreakdown::default();
        assert_eq!(b.total(), 0);
        assert_eq!(b.fetch_share(), 0.0);
    }

    #[test]
    fn speedup_is_cycle_ratio() {
        let base = SimResult {
            cycles: 1000,
            committed: 800,
            ..Default::default()
        };
        let fast = SimResult {
            cycles: 800,
            committed: 800,
            ..Default::default()
        };
        assert!((fast.speedup_over(&base) - 1.25).abs() < 1e-9);
        assert!((base.ipc() - 0.8).abs() < 1e-9);
    }

    #[test]
    fn stall_fractions() {
        let r = SimResult {
            cycles: 100,
            fetch_stalls: FetchStalls {
                icache: 15,
                branch: 2,
                backpressure: 11,
            },
            ..Default::default()
        };
        assert!((r.stall_for_i_frac() - 0.17).abs() < 1e-9);
        assert!((r.stall_for_rd_frac() - 0.11).abs() < 1e-9);
    }
}
