//! Lockstep multi-scheme batch simulation: all schemes of one app share a
//! single base-trace decode and one set of recycled working memory.
//!
//! A campaign cell grid evaluates many software schemes over the *same*
//! recorded input. Per-cell simulation decodes the trace from scratch each
//! time and allocates (or thread-caches) its own [`SimScratch`]; across an
//! app's row of schemes that repeats a trace walk per cell. The batch
//! simulator hoists the shared work to per-app scope:
//!
//! * the **base trace** is decoded into struct-of-arrays form exactly once
//!   ([`DecodedTrace::decode_into`]);
//! * each **variant trace** (a scheme's transformed binary replayed over
//!   the same input) is decoded against that base via
//!   [`DecodedTrace::decode_with_base`], which serves the longest common
//!   entry prefix with column memcpys and only decodes the divergent tail;
//! * one [`SimScratch`] — per-instruction tables, pipeline queues, and the
//!   recycled memory-system/BPU/criticality models — is reused across
//!   every scheme in the batch.
//!
//! Results are bit-identical to per-cell simulation by construction: the
//! decode is a pure per-entry function (prefix sharing copies what a fresh
//! decode would recompute), and scratch recycling resets every table the
//! core reads (see `SimScratch::reset` and the model `reset_to`s). The
//! differential suites assert this against the preserved scalar reference.

use critic_obs::CycleLedger;
use critic_workloads::Trace;

use crate::sim::{DecodedTrace, SimScratch, Simulator};
use crate::stats::SimResult;

/// Decode-sharing counters for one batch, reported by
/// [`BatchSimulator::stats`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct BatchStats {
    /// Simulations run through this batch (base + variants).
    pub runs: u64,
    /// Variant decodes performed.
    pub variant_decodes: u64,
    /// Variant instructions served from the shared base prefix (copied,
    /// not re-decoded).
    pub prefix_insns: u64,
    /// Total variant instructions decoded (prefix + divergent tail).
    pub variant_insns: u64,
}

impl BatchStats {
    /// Fraction of variant instructions served from the shared prefix.
    pub fn prefix_fraction(&self) -> f64 {
        if self.variant_insns == 0 {
            0.0
        } else {
            self.prefix_insns as f64 / self.variant_insns as f64
        }
    }
}

/// Shared-decode simulation context for one app's row of schemes.
///
/// One batch is bound to one base trace (the app's recorded baseline
/// execution); every simulation run through it recycles the same scratch
/// and models. The batch itself is stateless between runs — any sequence
/// of [`BatchSimulator::run_base`] / [`BatchSimulator::run_variant`] calls
/// produces results identical to fresh per-run simulation.
#[derive(Debug, Default)]
pub struct BatchSimulator {
    base_decoded: DecodedTrace,
    base_ready: bool,
    variant_decoded: DecodedTrace,
    variant_fanout: Vec<u32>,
    scratch: SimScratch,
    stats: BatchStats,
}

impl BatchSimulator {
    /// An empty batch; the base decode happens lazily on first use.
    pub fn new() -> BatchSimulator {
        BatchSimulator::default()
    }

    /// Decode-sharing counters so far.
    pub fn stats(&self) -> BatchStats {
        self.stats
    }

    fn ensure_base(&mut self, base: &Trace) {
        if !self.base_ready {
            self.base_decoded.decode_into(base);
            self.base_ready = true;
        }
    }

    /// Simulates the base trace itself (the baseline design points), using
    /// the batch's cached decode.
    ///
    /// # Panics
    ///
    /// Panics if `fanout.len() != base.len()`.
    pub fn run_base(
        &mut self,
        sim: &Simulator,
        base: &Trace,
        fanout: &[u32],
    ) -> (SimResult, CycleLedger) {
        self.ensure_base(base);
        self.stats.runs += 1;
        sim.run_decoded(&self.base_decoded, fanout, &mut self.scratch)
    }

    /// Simulates a scheme's variant trace, decoding it against the batch's
    /// base so the common prefix is copied instead of re-decoded. The
    /// criticality fan-out is computed from the decoded columns
    /// ([`DecodedTrace::compute_fanout_into`]) into a recycled buffer, so
    /// the variant's `DynInsn` records are walked exactly once (by the
    /// divergent-tail decode) per run.
    pub fn run_variant(
        &mut self,
        sim: &Simulator,
        trace: &Trace,
        base: &Trace,
    ) -> (SimResult, CycleLedger) {
        self.ensure_base(base);
        let shared = self
            .variant_decoded
            .decode_with_base(trace, base, &self.base_decoded);
        self.variant_decoded
            .compute_fanout_into(&mut self.variant_fanout);
        self.stats.runs += 1;
        self.stats.variant_decodes += 1;
        self.stats.prefix_insns += shared as u64;
        self.stats.variant_insns += trace.len() as u64;
        sim.run_decoded(
            &self.variant_decoded,
            &self.variant_fanout,
            &mut self.scratch,
        )
    }
}

#[cfg(test)]
mod tests {
    use critic_mem::MemConfig;
    use critic_workloads::suite::Suite;
    use critic_workloads::ExecutionPath;

    use super::*;
    use crate::config::CpuConfig;

    fn base_trace() -> Trace {
        let mut app = Suite::Mobile.apps()[0].clone();
        app.params.num_functions = 24;
        let program = app.generate_program();
        let path = ExecutionPath::generate(&program, 1, 6_000);
        Trace::expand(&program, &path)
    }

    /// A synthetic "variant": same prefix, then a perturbed tail — the
    /// shape a scheme's transformed binary produces.
    fn perturbed(base: &Trace, from: usize) -> Trace {
        let mut t = base.clone();
        for e in t.entries.iter_mut().skip(from) {
            e.pc ^= 0x40;
        }
        t
    }

    #[test]
    fn batch_matches_per_run_simulation() {
        let base = base_trace();
        let fanout = base.compute_fanout();
        let variant = perturbed(&base, base.len() / 2);
        let vfanout = variant.compute_fanout();
        let sim = Simulator::new(CpuConfig::google_tablet(), MemConfig::google_tablet());

        let mut batch = BatchSimulator::new();
        let (b0, l0) = batch.run_base(&sim, &base, &fanout);
        let (v0, lv0) = batch.run_variant(&sim, &variant, &base);
        // Interleave again: batch state must not leak across runs.
        let (b1, l1) = batch.run_base(&sim, &base, &fanout);
        assert_eq!(b0, b1);
        assert_eq!(l0, l1);

        let (rb, rlb) = sim.run_reference(&base, &fanout);
        let (rv, rlv) = sim.run_reference(&variant, &vfanout);
        assert_eq!(b0, rb, "batched base diverges from the scalar reference");
        assert_eq!(l0, rlb);
        assert_eq!(v0, rv, "batched variant diverges from the scalar reference");
        assert_eq!(lv0, rlv);
    }

    #[test]
    fn decoded_fanout_matches_trace_fanout() {
        let base = base_trace();
        let variant = perturbed(&base, base.len() / 3);
        let mut decoded = DecodedTrace::new();
        let mut soa = Vec::new();
        for t in [&base, &variant] {
            decoded.decode_into(t);
            decoded.compute_fanout_into(&mut soa);
            assert_eq!(
                soa,
                t.compute_fanout(),
                "SoA fan-out diverges for {}",
                t.name
            );
        }
    }

    #[test]
    fn prefix_sharing_is_counted() {
        let base = base_trace();
        let split = base.len() / 2;
        let variant = perturbed(&base, split);
        let sim = Simulator::new(CpuConfig::google_tablet(), MemConfig::google_tablet());
        let mut batch = BatchSimulator::new();
        let _ = batch.run_variant(&sim, &variant, &base);
        let stats = batch.stats();
        assert_eq!(stats.runs, 1);
        assert_eq!(stats.variant_decodes, 1);
        assert_eq!(stats.prefix_insns, split as u64);
        assert_eq!(stats.variant_insns, base.len() as u64);
        assert!(stats.prefix_fraction() > 0.49 && stats.prefix_fraction() < 0.51);
    }

    #[test]
    fn identical_variant_is_served_entirely_from_the_prefix() {
        let base = base_trace();
        let fanout = base.compute_fanout();
        let sim = Simulator::new(CpuConfig::google_tablet(), MemConfig::google_tablet());
        let mut batch = BatchSimulator::new();
        let (direct, _) = batch.run_base(&sim, &base, &fanout);
        let (via_variant, _) = batch.run_variant(&sim, &base.clone(), &base);
        assert_eq!(direct, via_variant);
        assert!((batch.stats().prefix_fraction() - 1.0).abs() < 1e-12);
    }
}
