//! CPU core configuration (the processor half of Table I).

use serde::{Deserialize, Serialize};

/// Per-kind functional-unit counts (issue-port constraints).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct FuPool {
    /// Integer ALUs.
    pub int_alu: u32,
    /// Pipelined integer multipliers.
    pub int_mult: u32,
    /// Integer dividers (unpipelined).
    pub int_div: u32,
    /// Load/store ports.
    pub mem_ports: u32,
    /// Branch units.
    pub branch: u32,
    /// FP add/compare pipes.
    pub float_add: u32,
    /// FP multiply pipes.
    pub float_mul: u32,
    /// FP divide/sqrt units (unpipelined).
    pub float_div: u32,
}

impl FuPool {
    /// A mobile-class 4-wide configuration.
    pub fn google_tablet() -> FuPool {
        FuPool {
            int_alu: 4,
            int_mult: 1,
            int_div: 1,
            mem_ports: 2,
            branch: 1,
            float_add: 2,
            float_mul: 1,
            float_div: 1,
        }
    }
}

/// Core pipeline configuration.
///
/// Defaults reproduce Table I: a 4-wide superscalar with a 128-entry ROB and
/// a 4K-entry two-level branch predictor. Design-point toggles for the
/// paper's comparison hardware (Fig. 11) are builder methods.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct CpuConfig {
    /// Superscalar width of rename/issue/commit.
    pub width: u32,
    /// Fetch/decode width (doubled by [`CpuConfig::with_double_fd`]).
    pub fetch_width: u32,
    /// Reorder-buffer entries.
    pub rob_entries: usize,
    /// Issue-queue entries.
    pub iq_entries: usize,
    /// Fetch-buffer capacity in instructions.
    pub fetch_buffer: usize,
    /// Bytes the fetch stage can pull per cycle (one 16-byte access).
    pub fetch_bytes_per_cycle: u64,
    /// Branch-predictor table entries.
    pub bpu_entries: usize,
    /// Global-history bits of the two-level predictor.
    pub bpu_history_bits: u32,
    /// Return-address-stack depth.
    pub ras_depth: usize,
    /// Bubble cycles after a correctly-predicted taken branch.
    pub taken_bubble: u32,
    /// Front-end refill penalty after a misprediction resolves.
    pub redirect_penalty: u32,
    /// Extra decode cycles charged per CDP format switch (Sec. IV-B
    /// conservatively assumes 1 even though synthesis closed at 160 ps).
    pub cdp_bubble: u32,
    /// Fig. 11 `PerfectBr`: no branch mispredictions, no taken bubbles.
    pub perfect_branch: bool,
    /// Fig. 1a/11 critical-instruction issue prioritization (`BackendPrio`).
    pub prioritize_critical: bool,
    /// Fanout threshold above which the criticality table marks a PC
    /// critical (the paper uses 8).
    pub crit_threshold: u32,
    /// Functional units.
    pub fu: FuPool,
}

impl CpuConfig {
    /// The paper's Table I Google-Tablet core.
    pub fn google_tablet() -> CpuConfig {
        CpuConfig {
            width: 4,
            fetch_width: 4,
            rob_entries: 128,
            iq_entries: 60,
            fetch_buffer: 32,
            fetch_bytes_per_cycle: 16,
            bpu_entries: 4096,
            bpu_history_bits: 12,
            ras_depth: 16,
            taken_bubble: 1,
            redirect_penalty: 3,
            cdp_bubble: 1,
            perfect_branch: false,
            prioritize_critical: false,
            crit_threshold: 8,
            fu: FuPool::google_tablet(),
        }
    }

    /// Fig. 11 `2×FD`: doubled fetch/decode bandwidth (the i-cache latency
    /// half of that design point lives in `MemConfig`).
    #[must_use]
    pub fn with_double_fd(mut self) -> CpuConfig {
        self.fetch_width *= 2;
        self.fetch_bytes_per_cycle *= 2;
        self.fetch_buffer *= 2;
        self
    }

    /// Fig. 11 `PerfectBr`: oracle branch prediction.
    #[must_use]
    pub fn with_perfect_branch(mut self) -> CpuConfig {
        self.perfect_branch = true;
        self
    }

    /// Fig. 1a "prioritizing" / Fig. 11 `BackendPrio`: critical-first issue.
    #[must_use]
    pub fn with_critical_prioritization(mut self) -> CpuConfig {
        self.prioritize_critical = true;
        self
    }
}

impl Default for CpuConfig {
    fn default() -> Self {
        CpuConfig::google_tablet()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_i_core_parameters() {
        let cfg = CpuConfig::google_tablet();
        assert_eq!(cfg.width, 4);
        assert_eq!(cfg.rob_entries, 128);
        assert_eq!(cfg.bpu_entries, 4096);
        assert_eq!(cfg.crit_threshold, 8);
        assert!(!cfg.perfect_branch);
        assert!(!cfg.prioritize_critical);
    }

    #[test]
    fn double_fd_doubles_only_the_front_end() {
        let cfg = CpuConfig::google_tablet().with_double_fd();
        assert_eq!(cfg.fetch_width, 8);
        assert_eq!(cfg.fetch_bytes_per_cycle, 32);
        assert_eq!(cfg.width, 4, "rename/issue/commit width unchanged");
        assert_eq!(cfg.rob_entries, 128);
    }

    #[test]
    fn toggles_compose() {
        let cfg = CpuConfig::google_tablet()
            .with_perfect_branch()
            .with_critical_prioritization();
        assert!(cfg.perfect_branch && cfg.prioritize_critical);
    }

    #[test]
    fn default_matches_google_tablet() {
        assert_eq!(CpuConfig::default(), CpuConfig::google_tablet());
    }
}
