//! Differential property suite for the simulation engines.
//!
//! The data-oriented core ([`Simulator::run`]) and the lockstep batch
//! path ([`BatchSimulator`]) must be *bit-identical* to the preserved
//! scalar reference loop ([`Simulator::run_reference`]) — every
//! [`SimResult`] field and every [`CycleLedger`] bucket — for any core
//! configuration, memory configuration, and trace. These properties drive
//! randomized cores and traces through all three paths and diff the
//! outputs, including the ledger partition invariant (`sum == cycles`)
//! the observability layer gates on.

use critic_mem::MemConfig;
use critic_pipeline::{BatchSimulator, SimScratch, Simulator};
use critic_workloads::suite::Suite;
use critic_workloads::{AppSpec, ExecutionPath, Trace};
use proptest::prelude::*;
use proptest::test_runner::TestRng;

/// A randomized core: the Table I Google-Tablet configuration with every
/// structure size, penalty, and feature knob perturbed within the ranges
/// the design-point sweeps exercise.
fn random_cpu(rng: &mut TestRng) -> critic_pipeline::CpuConfig {
    let mut cpu = critic_pipeline::CpuConfig::google_tablet();
    cpu.width = 2 + (rng.next_u64() % 3) as u32;
    cpu.fetch_width = (1 + (rng.next_u64() % 4) as u32).max(cpu.width / 2);
    cpu.rob_entries = 16 + (rng.next_u64() % 81) as usize;
    cpu.iq_entries = 8 + (rng.next_u64() % 41) as usize;
    cpu.fetch_buffer = (4 + (rng.next_u64() % 13) as usize).max(cpu.fetch_width as usize);
    cpu.fetch_bytes_per_cycle = [8, 16, 32][(rng.next_u64() % 3) as usize];
    cpu.bpu_entries = [256, 512, 1024, 2048][(rng.next_u64() % 4) as usize];
    cpu.bpu_history_bits = 2 + (rng.next_u64() % 7) as u32;
    cpu.ras_depth = 4 + (rng.next_u64() % 13) as usize;
    cpu.taken_bubble = (rng.next_u64() % 3) as u32;
    cpu.redirect_penalty = 2 + (rng.next_u64() % 9) as u32;
    cpu.cdp_bubble = (rng.next_u64() % 3) as u32;
    cpu.perfect_branch = rng.next_u64().is_multiple_of(4);
    cpu.prioritize_critical = rng.next_u64().is_multiple_of(3);
    cpu.crit_threshold = 2 + (rng.next_u64() % 11) as u32;
    cpu
}

/// A randomized memory system: the Table I hierarchy with the Fig. 11
/// geometry/latency/prefetcher knobs applied at random.
fn random_mem(rng: &mut TestRng) -> MemConfig {
    let mut mem = MemConfig::google_tablet();
    if rng.next_u64().is_multiple_of(3) {
        mem = mem.with_4x_icache();
    }
    if rng.next_u64().is_multiple_of(3) {
        mem = mem.with_half_icache_latency();
    }
    if rng.next_u64().is_multiple_of(3) {
        mem = mem.with_clpt();
    }
    if rng.next_u64().is_multiple_of(3) {
        mem = mem.with_efetch();
    }
    mem.clpt_threshold = 2 + (rng.next_u64() % 13) as u8;
    mem
}

/// A randomized trace: a real generated app (random workload, function
/// count, path seed, and length), expanded the way every campaign cell
/// expands its binary.
fn random_trace(rng: &mut TestRng) -> Trace {
    let apps: Vec<AppSpec> = Suite::Mobile.apps();
    let mut app = apps[(rng.next_u64() as usize) % apps.len()].clone();
    app.params.num_functions = 8 + (rng.next_u64() % 25) as u32;
    let program = app.generate_program();
    let seed = 1 + rng.next_u64() % 1_000;
    let len = 800 + (rng.next_u64() % 2_200) as usize;
    let path = ExecutionPath::generate(&program, seed, len);
    Trace::expand(&program, &path)
}

/// A synthetic scheme variant: the base trace with a perturbed tail — the
/// shape a transformed binary's replay has (long shared prefix, divergent
/// suffix), which is exactly what the batch decoder prefix-shares.
fn random_variant(rng: &mut TestRng, base: &Trace) -> Trace {
    let mut variant = base.clone();
    if base.entries.is_empty() {
        return variant;
    }
    let split = (rng.next_u64() as usize) % base.entries.len();
    for e in variant.entries.iter_mut().skip(split) {
        e.pc ^= 0x40;
        if rng.next_u64().is_multiple_of(4) {
            if let Some(addr) = e.mem_addr.as_mut() {
                *addr ^= 0x1000;
            }
        }
    }
    if rng.next_u64().is_multiple_of(4) {
        // Variants also legitimately differ in length.
        let keep = variant.entries.len() - (rng.next_u64() as usize) % (base.entries.len() / 4 + 1);
        variant.entries.truncate(keep.max(1));
    }
    variant
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// All three engines agree exactly — result and ledger — on a random
    /// (core, memory, trace) point, and the ledger partitions the run.
    #[test]
    fn engines_are_bit_identical_on_random_points(seed: u64) {
        let mut rng = TestRng::new(seed);
        let cpu = random_cpu(&mut rng);
        let mem = random_mem(&mut rng);
        let base = random_trace(&mut rng);
        let variant = random_variant(&mut rng, &base);
        let base_fanout = base.compute_fanout();
        let variant_fanout = variant.compute_fanout();
        let sim = Simulator::new(cpu, mem);

        // Scalar reference: the preserved pre-data-oriented loop.
        let (ref_base, ref_base_ledger) = sim.run_reference(&base, &base_fanout);
        let (ref_var, ref_var_ledger) = sim.run_reference(&variant, &variant_fanout);
        prop_assert!(ref_base_ledger.check(ref_base.cycles).is_ok());
        prop_assert!(ref_var_ledger.check(ref_var.cycles).is_ok());

        // Data-oriented core with caller-owned scratch, decoded fresh.
        let mut scratch = SimScratch::new();
        let (dec_base, dec_base_ledger) =
            sim.run_with_ledger(&base, &base_fanout, &mut scratch);
        let (dec_var, dec_var_ledger) =
            sim.run_with_ledger(&variant, &variant_fanout, &mut scratch);
        prop_assert_eq!(&dec_base, &ref_base, "decoded base diverges from reference");
        prop_assert_eq!(&dec_base_ledger, &ref_base_ledger);
        prop_assert_eq!(&dec_var, &ref_var, "decoded variant diverges from reference");
        prop_assert_eq!(&dec_var_ledger, &ref_var_ledger);

        // Lockstep batch: shared base decode, prefix-shared variant
        // decode, recycled scratch — interleaved to stress state reset.
        let mut batch = BatchSimulator::new();
        let (b0, l0) = batch.run_base(&sim, &base, &base_fanout);
        let (v0, lv0) = batch.run_variant(&sim, &variant, &base);
        let (b1, l1) = batch.run_base(&sim, &base, &base_fanout);
        let (v1, lv1) = batch.run_variant(&sim, &variant, &base);
        prop_assert_eq!(&b0, &ref_base, "batched base diverges from reference");
        prop_assert_eq!(&l0, &ref_base_ledger);
        prop_assert_eq!(&v0, &ref_var, "batched variant diverges from reference");
        prop_assert_eq!(&lv0, &ref_var_ledger);
        prop_assert_eq!(&b1, &b0, "batch state leaked into the second base run");
        prop_assert_eq!(&l1, &l0);
        prop_assert_eq!(&v1, &v0, "batch state leaked into the second variant run");
        prop_assert_eq!(&lv1, &lv0);
    }

    /// The struct-of-arrays fan-out computation matches the reference
    /// trace-walk computation exactly on random traces and variants.
    #[test]
    fn decoded_fanout_matches_reference_fanout(seed: u64) {
        let mut rng = TestRng::new(seed);
        let base = random_trace(&mut rng);
        let variant = random_variant(&mut rng, &base);
        let mut decoded = critic_pipeline::DecodedTrace::new();
        let mut soa = Vec::new();
        for t in [&base, &variant] {
            decoded.decode_into(t);
            decoded.compute_fanout_into(&mut soa);
            prop_assert_eq!(&soa, &t.compute_fanout());
        }
    }
}
