//! Property tests for the bit-level codecs (paper Fig. 6).
//!
//! The robustness contract of `critic-isa` is that the decoders are *total*
//! over their input space: any 16-bit half-word or 32-bit word either
//! decodes to an instruction or returns a typed [`DecodeError`] — never a
//! panic — and anything that decodes re-encodes to the same instruction.

use critic_isa::encode::{self, Encoded};
use critic_isa::{decode_arm32, decode_thumb16, Insn, MAX_CDP_CHAIN_LEN};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(4096))]

    /// Decoding an arbitrary half-word never panics, and a successful
    /// decode is a fixed point: `decode(encode(decode(h))) == decode(h)`.
    ///
    /// (The raw bits themselves need not round-trip — the register form
    /// carries don't-care operand bits for low-arity opcodes — but the
    /// *instruction* must. Re-encoding may also legitimately fail when the
    /// decoded operands fall outside the Thumb-convertible subset, e.g. a
    /// register-form destination above r10.)
    #[test]
    fn thumb16_decode_is_total_and_stable(half: u16) {
        if let Ok(insn) = decode_thumb16(half) {
            if let Ok(Encoded::Half(re)) = encode::encode(&insn) {
                let again = decode_thumb16(re).expect("re-encoded bits decode");
                prop_assert_eq!(again, insn);
            }
        }
    }

    /// Decoding an arbitrary word never panics, and a successful decode is
    /// a fixed point under re-encoding.
    #[test]
    fn arm32_decode_is_total_and_stable(word: u32) {
        if let Ok(insn) = decode_arm32(word) {
            if let Ok(Encoded::Word(re)) = encode::encode(&insn) {
                let again = decode_arm32(re).expect("re-encoded bits decode");
                prop_assert_eq!(again, insn);
            }
        }
    }

    /// Every encodable instruction the decoder can produce round-trips
    /// exactly: `decode(encode(i)) == i` (driven from the bit side, which
    /// reaches every layout).
    #[test]
    fn thumb16_encode_inverts_decode(half: u16) {
        if let Ok(insn) = decode_thumb16(half) {
            // CDPs and immediate forms encode canonically; check that a
            // *second* round trip is the identity on bits as well.
            if let Ok(Encoded::Half(re)) = encode::encode(&insn) {
                let again = decode_thumb16(re).expect("decodes");
                let re2 = match encode::encode(&again) {
                    Ok(Encoded::Half(h)) => h,
                    other => return Err(TestCaseError::fail(format!("width flip: {other:?}"))),
                };
                prop_assert_eq!(re, re2, "encoding is canonical after one round trip");
            }
        }
    }

    /// Malformed CDP covers are rejected with a typed error, not a panic.
    #[test]
    fn oversized_cdp_covers_error(cover in 0u8..=255) {
        let insn = Insn::cdp_raw(cover);
        let result = encode::encode(&insn);
        if (1..=MAX_CDP_CHAIN_LEN).contains(&usize::from(cover)) {
            prop_assert!(result.is_ok());
        } else {
            prop_assert!(matches!(result, Err(critic_isa::EncodeError::BadCdpCover(_))));
        }
    }
}
