//! The Thumb-conversion predicate and chain-level (all-or-nothing) rule.
//!
//! Sec. III-B of the paper: an instruction can be laid down in the 16-bit
//! format *without any change* only when it has "neither predications nor
//! use\[s\] more than the allowed 11 registers" (plus, in any real encoding,
//! its immediate must fit the narrow fields and the opcode must exist in
//! Thumb at all). Footnote 1 adds the chain rule: *"If any instruction of a
//! CritIC sequence cannot be represented in the 16-bit format as is, then the
//! entire sequence is left as is … all or nothing."*
//!
//! The concrete field widths mirror real Thumb-1 (see [`crate::encode()`]):
//!
//! | form | fields | constraints |
//! |------|--------|-------------|
//! | reg  | code(6) dst(4) s1(3) s2(3) | dst ≤ `r10`, sources ≤ `r7` |
//! | ALU-imm | code(6) dst(3) imm(7) | two-address (`dst == src`), imm 0–127 |
//! | mem-imm | code(6) dst(3) base(3) imm(4, ×4) | regs ≤ `r7`, offset 0–60 word-aligned |
//! | branch | code(6) off(10) | word offset −512–511 |
//! | cdp | code(6) len(3) | always 16-bit |

use std::fmt;

use serde::{Deserialize, Serialize};

use crate::insn::Insn;
use crate::op::Opcode;
use crate::reg::Reg;

/// Number of architected registers nameable from the 16-bit format.
///
/// The register-form destination field is 4 bits wide but only `r0`–`r10`
/// are legal — the paper's "cuts the number of architected registers as
/// operands from 16 to 11".
pub const THUMB_REG_LIMIT: u8 = 11;

/// Source-register fields (and imm-form destinations) are 3 bits wide
/// (`r0`–`r7`), matching real Thumb's low-register operand fields.
pub const THUMB_LOW_REG_LIMIT: u8 = 8;

/// Maximum ALU immediate (7-bit field, two-address form).
pub const THUMB_ALU_IMM_MAX: i32 = 127;

/// Maximum memory offset (4-bit field scaled by the 4-byte word size).
pub const THUMB_MEM_IMM_MAX: i32 = 60;

/// Maximum signed word offset of a 16-bit branch (10-bit field).
pub const THUMB_BRANCH_MAX: i32 = 511;
/// Minimum signed word offset of a 16-bit branch.
pub const THUMB_BRANCH_MIN: i32 = -512;

/// Maximum number of following 16-bit instructions one CDP switch covers.
///
/// The CDP argument has 3 bits, so it covers `1 + 2^3 = 9` instructions
/// (paper Sec. IV-B).
pub const MAX_CDP_CHAIN_LEN: usize = 9;

/// Why an instruction cannot be re-encoded in 16-bit Thumb as-is.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ThumbIncompatibility {
    /// The instruction is predicated; Thumb cannot express conditions.
    Predicated,
    /// The opcode has no 16-bit encoding (divide, long multiply, VFP, …).
    NoThumbForm(Opcode),
    /// A register operand is outside the field's addressable range.
    HighRegister(Reg),
    /// The immediate does not fit the narrow Thumb field.
    ImmediateTooWide(i32),
    /// An immediate-form ALU op whose destination differs from its source;
    /// Thumb ALU-immediate encodings are two-address.
    NotTwoAddress,
}

impl fmt::Display for ThumbIncompatibility {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ThumbIncompatibility::Predicated => {
                f.write_str("predicated instructions have no 16-bit form")
            }
            ThumbIncompatibility::NoThumbForm(op) => {
                write!(f, "opcode `{op}` has no 16-bit form")
            }
            ThumbIncompatibility::HighRegister(reg) => {
                write!(f, "register `{reg}` is outside the thumb-addressable field")
            }
            ThumbIncompatibility::ImmediateTooWide(imm) => {
                write!(f, "immediate #{imm} does not fit the 16-bit format")
            }
            ThumbIncompatibility::NotTwoAddress => {
                f.write_str("thumb ALU-immediate encodings are two-address (dst must equal src)")
            }
        }
    }
}

impl std::error::Error for ThumbIncompatibility {}

/// Checks the paper's conversion predicate for one instruction.
///
/// # Errors
///
/// Returns the first incompatibility found, checking (in order) predication,
/// opcode coverage, register constraints, then immediate/form constraints.
pub fn check_convertible(insn: &Insn) -> Result<(), ThumbIncompatibility> {
    if insn.op().is_format_switch() {
        // CDP is itself a 16-bit half-word.
        return Ok(());
    }
    if insn.is_predicated() {
        return Err(ThumbIncompatibility::Predicated);
    }
    let op = insn.op();
    if !op.has_thumb_form() {
        return Err(ThumbIncompatibility::NoThumbForm(op));
    }
    // Source fields are always 3 bits.
    for src in insn.srcs().iter() {
        if src.index() >= THUMB_LOW_REG_LIMIT {
            return Err(ThumbIncompatibility::HighRegister(src));
        }
    }
    let has_imm = insn.imm().is_some() && !op.is_branch();
    // Destination field: 4 bits (r0–r10) in register form, 3 bits (r0–r7)
    // in the immediate forms.
    if let Some(dst) = insn.dst() {
        let limit = if has_imm {
            THUMB_LOW_REG_LIMIT
        } else {
            THUMB_REG_LIMIT
        };
        if dst.index() >= limit {
            return Err(ThumbIncompatibility::HighRegister(dst));
        }
    }
    if let Some(imm) = insn.imm() {
        if op.is_branch() {
            if !(THUMB_BRANCH_MIN..=THUMB_BRANCH_MAX).contains(&imm) {
                return Err(ThumbIncompatibility::ImmediateTooWide(imm));
            }
        } else if op.is_mem() {
            if !(0..=THUMB_MEM_IMM_MAX).contains(&imm) || imm % 4 != 0 {
                return Err(ThumbIncompatibility::ImmediateTooWide(imm));
            }
        } else {
            if !(0..=THUMB_ALU_IMM_MAX).contains(&imm) {
                return Err(ThumbIncompatibility::ImmediateTooWide(imm));
            }
            // ALU-immediate is two-address: either no register source
            // (`mov rd, #imm`), no destination (`cmp rn, #imm`), or the
            // single source equals the destination (`add rd, rd, #imm`).
            if let (Some(src), Some(dst)) = (insn.srcs().get(0), insn.dst()) {
                if src != dst {
                    return Err(ThumbIncompatibility::NotTwoAddress);
                }
            }
        }
    }
    Ok(())
}

/// Applies the all-or-nothing rule to a whole chain.
///
/// # Errors
///
/// Returns the index of the first non-convertible instruction and its
/// incompatibility; in that case the paper leaves the *entire* chain in its
/// original format.
pub fn check_chain_convertible(chain: &[Insn]) -> Result<(), (usize, ThumbIncompatibility)> {
    for (index, insn) in chain.iter().enumerate() {
        check_convertible(insn).map_err(|why| (index, why))?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cond::Cond;

    #[test]
    fn plain_low_register_alu_converts() {
        let insn = Insn::alu(Opcode::Add, Reg::R1, &[Reg::R2, Reg::R3]);
        assert_eq!(check_convertible(&insn), Ok(()));
    }

    #[test]
    fn predication_blocks_conversion() {
        let insn = Insn::alu(Opcode::Add, Reg::R1, &[Reg::R2]).with_cond(Cond::Ne);
        assert_eq!(
            check_convertible(&insn),
            Err(ThumbIncompatibility::Predicated)
        );
    }

    #[test]
    fn divide_has_no_thumb_form() {
        let insn = Insn::alu(Opcode::Sdiv, Reg::R0, &[Reg::R1, Reg::R2]);
        assert_eq!(
            check_convertible(&insn),
            Err(ThumbIncompatibility::NoThumbForm(Opcode::Sdiv))
        );
    }

    #[test]
    fn reg_form_dest_limit_is_eleven() {
        let ok = Insn::alu(Opcode::Mov, Reg::R10, &[Reg::R0]);
        assert_eq!(check_convertible(&ok), Ok(()));
        let bad = Insn::alu(Opcode::Mov, Reg::R11, &[Reg::R0]);
        assert_eq!(
            check_convertible(&bad),
            Err(ThumbIncompatibility::HighRegister(Reg::R11))
        );
    }

    #[test]
    fn src_register_limit_is_eight() {
        let ok = Insn::alu(Opcode::Mov, Reg::R0, &[Reg::R7]);
        assert_eq!(check_convertible(&ok), Ok(()));
        let bad = Insn::alu(Opcode::Mov, Reg::R0, &[Reg::R8]);
        assert_eq!(
            check_convertible(&bad),
            Err(ThumbIncompatibility::HighRegister(Reg::R8))
        );
    }

    #[test]
    fn alu_immediate_is_two_address() {
        let ok = Insn::alu_imm(Opcode::Add, Reg::R3, Reg::R3, 1);
        assert_eq!(check_convertible(&ok), Ok(()));
        let three_address = Insn::alu_imm(Opcode::Add, Reg::R3, Reg::R4, 1);
        assert_eq!(
            check_convertible(&three_address),
            Err(ThumbIncompatibility::NotTwoAddress)
        );
        let mov = Insn::mov_imm(Reg::R2, 99);
        assert_eq!(check_convertible(&mov), Ok(()));
    }

    #[test]
    fn alu_immediate_range() {
        let ok = Insn::mov_imm(Reg::R0, THUMB_ALU_IMM_MAX);
        assert_eq!(check_convertible(&ok), Ok(()));
        let wide = Insn::mov_imm(Reg::R0, THUMB_ALU_IMM_MAX + 1);
        assert!(matches!(
            check_convertible(&wide),
            Err(ThumbIncompatibility::ImmediateTooWide(_))
        ));
        let negative = Insn::mov_imm(Reg::R0, -1);
        assert!(check_convertible(&negative).is_err());
    }

    #[test]
    fn memory_offsets_are_word_scaled() {
        let ok = Insn::load(Opcode::Ldr, Reg::R0, Reg::R1, 60);
        assert_eq!(check_convertible(&ok), Ok(()));
        let unaligned = Insn::load(Opcode::Ldr, Reg::R0, Reg::R1, 6);
        assert!(check_convertible(&unaligned).is_err());
        let wide = Insn::load(Opcode::Ldr, Reg::R0, Reg::R1, 64);
        assert!(check_convertible(&wide).is_err());
    }

    #[test]
    fn imm_form_dest_limit_is_eight() {
        // r9 is fine as a register-form dst but not in the 3-bit imm form.
        let reg_form = Insn::alu(Opcode::Add, Reg::R9, &[Reg::R1, Reg::R2]);
        assert_eq!(check_convertible(&reg_form), Ok(()));
        let imm_form = Insn::alu_imm(Opcode::Add, Reg::R9, Reg::R9, 1);
        assert_eq!(
            check_convertible(&imm_form),
            Err(ThumbIncompatibility::HighRegister(Reg::R9))
        );
    }

    #[test]
    fn branch_offsets_are_signed() {
        let near = Insn::branch(Opcode::B, THUMB_BRANCH_MIN);
        assert_eq!(check_convertible(&near), Ok(()));
        let far = Insn::branch(Opcode::B, THUMB_BRANCH_MIN - 1);
        assert!(check_convertible(&far).is_err());
    }

    #[test]
    fn chain_rule_is_all_or_nothing() {
        let chain = vec![
            Insn::alu(Opcode::Add, Reg::R0, &[Reg::R1]),
            Insn::alu(Opcode::Sdiv, Reg::R2, &[Reg::R3, Reg::R4]),
            Insn::alu(Opcode::Sub, Reg::R5, &[Reg::R6]),
        ];
        let err = check_chain_convertible(&chain).unwrap_err();
        assert_eq!(err.0, 1);
        assert_eq!(err.1, ThumbIncompatibility::NoThumbForm(Opcode::Sdiv));
    }

    #[test]
    fn cdp_is_always_sixteen_bit() {
        assert_eq!(check_convertible(&Insn::cdp(4)), Ok(()));
    }

    #[test]
    fn link_register_write_blocks_call_conversion() {
        // `bl` defines lr (r14); real Thumb handles BL with a 32-bit pair,
        // which is equivalent to "not convertible" for bandwidth purposes.
        let call = Insn::branch(Opcode::Bl, 10);
        assert_eq!(
            check_convertible(&call),
            Err(ThumbIncompatibility::HighRegister(Reg::LR))
        );
    }

    #[test]
    fn errors_render_human_readable() {
        let msg = ThumbIncompatibility::HighRegister(Reg::R12).to_string();
        assert!(msg.contains("r12"));
        let msg = ThumbIncompatibility::ImmediateTooWide(1024).to_string();
        assert!(msg.contains("1024"));
        let msg = ThumbIncompatibility::NotTwoAddress.to_string();
        assert!(msg.contains("two-address"));
    }
}
