//! A small assembler: parses the textual syntax `Display` produces back
//! into [`Insn`]s, so tests and tools can write instruction sequences as
//! strings.
//!
//! ```
//! use critic_isa::asm::parse_insn;
//! use critic_isa::{Insn, Opcode, Reg};
//!
//! let insn = parse_insn("add r0, r1, r2").unwrap();
//! assert_eq!(insn, Insn::alu(Opcode::Add, Reg::R0, &[Reg::R1, Reg::R2]));
//! assert_eq!(parse_insn(&insn.to_string()).unwrap(), insn);
//! ```

use std::fmt;

use crate::cond::Cond;
use crate::insn::{Insn, InsnBuilder};
use crate::op::Opcode;
use crate::reg::Reg;

/// Why a line failed to assemble.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AsmError {
    /// The mnemonic (with any condition suffix stripped) is unknown.
    UnknownMnemonic(String),
    /// A register name did not parse.
    BadRegister(String),
    /// An immediate did not parse.
    BadImmediate(String),
    /// The operand list does not fit the mnemonic.
    BadOperands(String),
    /// The line is empty or a comment.
    Empty,
}

impl fmt::Display for AsmError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AsmError::UnknownMnemonic(m) => write!(f, "unknown mnemonic `{m}`"),
            AsmError::BadRegister(r) => write!(f, "bad register `{r}`"),
            AsmError::BadImmediate(i) => write!(f, "bad immediate `{i}`"),
            AsmError::BadOperands(line) => write!(f, "operands do not fit: `{line}`"),
            AsmError::Empty => f.write_str("empty line"),
        }
    }
}

impl std::error::Error for AsmError {}

fn parse_reg(token: &str) -> Result<Reg, AsmError> {
    let token = token.trim();
    match token {
        "sp" => return Ok(Reg::SP),
        "lr" => return Ok(Reg::LR),
        "pc" => return Ok(Reg::PC),
        _ => {}
    }
    token
        .strip_prefix('r')
        .and_then(|n| n.parse::<u8>().ok())
        .and_then(Reg::from_index)
        .ok_or_else(|| AsmError::BadRegister(token.to_string()))
}

fn parse_imm(token: &str) -> Result<i32, AsmError> {
    let token = token.trim();
    let digits = token.strip_prefix('#').unwrap_or(token);
    digits
        .parse::<i32>()
        .map_err(|_| AsmError::BadImmediate(token.to_string()))
}

fn split_mnemonic(word: &str) -> Option<(Opcode, Cond)> {
    // Longest-mnemonic-first so `ldrb` is not read as `ldr` + `b` suffix.
    let mut ops: Vec<Opcode> = Opcode::ALL.to_vec();
    ops.sort_by_key(|op| std::cmp::Reverse(op.mnemonic().len()));
    for op in ops {
        if let Some(rest) = word.strip_prefix(op.mnemonic()) {
            if rest.is_empty() {
                return Some((op, Cond::Al));
            }
            if let Some(cond) = Cond::ALL
                .iter()
                .find(|c| !c.is_always() && c.to_string() == rest)
            {
                return Some((op, *cond));
            }
        }
    }
    None
}

/// Parses one instruction in the `Display` syntax.
///
/// # Errors
///
/// Returns an [`AsmError`] describing the first token that failed; blank
/// lines and `;`/`//` comments are [`AsmError::Empty`].
pub fn parse_insn(line: &str) -> Result<Insn, AsmError> {
    let line = line
        .split(';')
        .next()
        .unwrap_or("")
        .split("//")
        .next()
        .unwrap_or("")
        .trim();
    if line.is_empty() {
        return Err(AsmError::Empty);
    }
    let (word, rest) = line.split_once(char::is_whitespace).unwrap_or((line, ""));
    let (op, cond) =
        split_mnemonic(word).ok_or_else(|| AsmError::UnknownMnemonic(word.to_string()))?;
    let rest = rest.trim();

    // Memory operands: `rd, [rb, #off]` / `rv, [rb, #off]`.
    if op.is_mem() {
        let (first, bracket) = rest
            .split_once('[')
            .ok_or_else(|| AsmError::BadOperands(line.to_string()))?;
        let rt = parse_reg(first.trim().trim_end_matches(','))?;
        let inner = bracket.trim_end_matches(']');
        let (base, off) = inner.split_once(',').unwrap_or((inner, "#0"));
        let base = parse_reg(base)?;
        let offset = parse_imm(off)?;
        let insn = if op.is_store() {
            Insn::store(op, rt, base, offset)
        } else {
            Insn::load(op, rt, base, offset)
        };
        return Ok(insn.with_cond(cond));
    }

    if op.is_format_switch() {
        let covered = parse_imm(rest)?;
        if !(1..=crate::thumb::MAX_CDP_CHAIN_LEN as i32).contains(&covered) {
            return Err(AsmError::BadImmediate(rest.to_string()));
        }
        return Ok(Insn::cdp(covered as u8));
    }

    if matches!(op, Opcode::B | Opcode::Bl) {
        return Ok(Insn::branch(op, parse_imm(rest)?).with_cond(cond));
    }
    if op == Opcode::Bx {
        return Ok(Insn::branch_reg(parse_reg(rest)?).with_cond(cond));
    }
    if op == Opcode::Nop {
        return Ok(Insn::nop().with_cond(cond));
    }

    // General register/immediate forms.
    let tokens: Vec<&str> = rest
        .split(',')
        .map(str::trim)
        .filter(|t| !t.is_empty())
        .collect();
    let mut builder = InsnBuilder::new(op).cond(cond);
    let has_dst = op.writes_register();
    let mut iter = tokens.iter();
    if has_dst {
        let dst = iter
            .next()
            .ok_or_else(|| AsmError::BadOperands(line.to_string()))?;
        builder = builder.dst(parse_reg(dst)?);
    }
    for token in iter {
        if token.starts_with('#') {
            builder = builder.imm(parse_imm(token)?);
        } else {
            builder = builder.src(parse_reg(token)?);
        }
    }
    // try_build, not build: `add r0, r1, r2, r3, r4` is malformed input,
    // not a programmer error, so it must not panic the assembler.
    builder
        .try_build()
        .map_err(|_| AsmError::BadOperands(line.to_string()))
}

/// Parses a multi-line listing, skipping blank lines and comments.
///
/// # Errors
///
/// Returns the first real parse failure with its 1-based line number.
pub fn parse_listing(source: &str) -> Result<Vec<Insn>, (usize, AsmError)> {
    let mut out = Vec::new();
    for (number, line) in source.lines().enumerate() {
        match parse_insn(line) {
            Ok(insn) => out.push(insn),
            Err(AsmError::Empty) => {}
            Err(err) => return Err((number + 1, err)),
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_the_display_syntax() {
        for insn in [
            Insn::alu(Opcode::Add, Reg::R0, &[Reg::R1, Reg::R2]),
            Insn::alu(Opcode::Mov, Reg::R4, &[Reg::R5]),
            Insn::alu_imm(Opcode::Sub, Reg::R3, Reg::R3, 12),
            Insn::mov_imm(Reg::R7, 99),
            Insn::compare(Opcode::Cmp, Reg::R1, Reg::R2),
            Insn::load(Opcode::Ldrb, Reg::R0, Reg::SP, 8),
            Insn::store(Opcode::Strh, Reg::R1, Reg::R9, 4),
            Insn::branch(Opcode::B, -42).with_cond(Cond::Ne),
            Insn::branch(Opcode::Bl, 4096),
            Insn::branch_reg(Reg::LR),
            Insn::cdp(5),
            Insn::nop(),
        ] {
            let text = insn.to_string();
            let parsed = parse_insn(&text).unwrap_or_else(|e| panic!("`{text}`: {e}"));
            assert_eq!(parsed, insn, "round trip of `{text}`");
        }
    }

    #[test]
    fn condition_suffixes_parse() {
        let insn = parse_insn("addeq r0, r1, r2").expect("parses");
        assert_eq!(insn.cond(), Cond::Eq);
        assert_eq!(insn.op(), Opcode::Add);
        // `ldrb` must not parse as `ldr` + a bogus `b` suffix.
        let insn = parse_insn("ldrb r0, [r1, #4]").expect("parses");
        assert_eq!(insn.op(), Opcode::Ldrb);
    }

    #[test]
    fn comments_and_blanks_are_empty() {
        assert_eq!(parse_insn(""), Err(AsmError::Empty));
        assert_eq!(parse_insn("  ; just a comment"), Err(AsmError::Empty));
        assert_eq!(parse_insn("// also a comment"), Err(AsmError::Empty));
    }

    #[test]
    fn errors_are_specific() {
        assert!(matches!(
            parse_insn("frob r0"),
            Err(AsmError::UnknownMnemonic(_))
        ));
        assert!(matches!(
            parse_insn("add r77, r0"),
            Err(AsmError::BadRegister(_))
        ));
        assert!(matches!(
            parse_insn("mov r0, #zz"),
            Err(AsmError::BadImmediate(_))
        ));
        assert!(matches!(
            parse_insn("ldr r0"),
            Err(AsmError::BadOperands(_))
        ));
        assert!(matches!(
            parse_insn("cdp #12"),
            Err(AsmError::BadImmediate(_))
        ));
        // More sources than the ISA's 3-operand limit is a parse error,
        // never a panic.
        assert!(matches!(
            parse_insn("add r0, r1, r2, r3, r4"),
            Err(AsmError::BadOperands(_))
        ));
    }

    #[test]
    fn listing_reports_line_numbers() {
        let listing = "add r0, r1, r2\n; comment\nmov r3, #5\nbogus r0\n";
        let err = parse_listing(listing).unwrap_err();
        assert_eq!(err.0, 4);
        let ok = parse_listing("add r0, r1, r2\n\nmov r3, #5\n").expect("parses");
        assert_eq!(ok.len(), 2);
    }

    #[test]
    fn special_register_aliases_parse() {
        let insn = parse_insn("ldr r0, [sp, #16]").expect("parses");
        assert_eq!(insn.srcs().get(0), Some(Reg::SP));
        let insn = parse_insn("bx lr").expect("parses");
        assert_eq!(insn.srcs().get(0), Some(Reg::LR));
    }
}
