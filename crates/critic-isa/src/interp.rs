//! A small architectural-state interpreter for the model ISA.
//!
//! The interpreter exists for *translation validation*: the differential
//! oracle in `critic-compiler::validate` executes the baseline and the
//! CritIC-transformed variant of a program over identical, deterministically
//! seeded inputs and compares the architectural state they compute. The
//! machine model is therefore deliberately abstract where real hardware
//! detail would make equal-by-construction comparisons impossible:
//!
//! * **Loads** do not read the sparse memory image. Their results are
//!   supplied by the caller (seeded from `(seed, uid, visit)` via
//!   [`seeded_input`]), because the synthetic address streams are keyed on
//!   instruction identity, not on a coherent points-to model — two variants
//!   of one program must see the same input values, not whatever happened
//!   to land at a colliding synthetic address.
//! * **Calls** write a caller-supplied abstract link token to `lr` instead
//!   of a layout-dependent return address, so re-encoding an instruction
//!   (which moves every subsequent PC) cannot masquerade as a dataflow
//!   divergence.
//! * **The PC** is never materialised as a register value; control flow is
//!   replayed from the recorded execution path, not computed.
//!
//! Everything else — ALU arithmetic, NZCV flag generation, predication,
//! store bytes landing in the sparse memory image — follows ARM semantics
//! closely enough that any real operand or ordering bug changes observable
//! state.

use std::collections::BTreeMap;
use std::fmt;

use crate::cond::Cond;
use crate::insn::Insn;
use crate::op::Opcode;
use crate::reg::Reg;

/// The NZCV condition flags.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Flags {
    /// Negative: bit 31 of the last flag-setting result.
    pub n: bool,
    /// Zero: the last flag-setting result was zero.
    pub z: bool,
    /// Carry (no-borrow for subtraction).
    pub c: bool,
    /// Signed overflow.
    pub v: bool,
}

impl fmt::Display for Flags {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let bit = |b: bool, ch: char| if b { ch } else { '-' };
        write!(
            f,
            "{}{}{}{}",
            bit(self.n, 'N'),
            bit(self.z, 'Z'),
            bit(self.c, 'C'),
            bit(self.v, 'V')
        )
    }
}

impl Flags {
    /// Evaluates an ARM condition code against these flags.
    pub fn passes(&self, cond: Cond) -> bool {
        match cond {
            Cond::Eq => self.z,
            Cond::Ne => !self.z,
            Cond::Cs => self.c,
            Cond::Cc => !self.c,
            Cond::Mi => self.n,
            Cond::Pl => !self.n,
            Cond::Vs => self.v,
            Cond::Vc => !self.v,
            Cond::Hi => self.c && !self.z,
            Cond::Ls => !self.c || self.z,
            Cond::Ge => self.n == self.v,
            Cond::Lt => self.n != self.v,
            Cond::Gt => !self.z && self.n == self.v,
            Cond::Le => self.z || self.n != self.v,
            Cond::Al => true,
        }
    }
}

/// Per-step inputs the interpreter cannot derive from the instruction alone.
///
/// The oracle fills these from the dynamic trace (`mem_addr`) and from
/// deterministic seeding (`load_value`, `link_value`); see the module docs
/// for why loads and links are externalised.
#[derive(Debug, Clone, Copy, Default)]
pub struct StepIo {
    /// Data address for a load or store (from the trace's uid-keyed stream).
    pub mem_addr: Option<u64>,
    /// The value a load receives.
    pub load_value: Option<u32>,
    /// The abstract token a call writes to the link register.
    pub link_value: Option<u32>,
}

/// What executing one instruction did to architectural state.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StepEffect {
    /// Whether the instruction's predicate passed (unpredicated ⇒ `true`).
    pub executed: bool,
    /// Register written this step, with the value.
    pub reg_write: Option<(Reg, u32)>,
    /// Memory bytes written this step.
    pub mem_write: Option<MemWrite>,
    /// Whether the NZCV flags were (re)computed this step.
    pub flags_written: bool,
}

impl StepEffect {
    /// The effect of a predicated-false or effect-free instruction.
    pub fn none(executed: bool) -> StepEffect {
        StepEffect {
            executed,
            reg_write: None,
            mem_write: None,
            flags_written: false,
        }
    }
}

/// A store's footprint: address, value as written (masked to width), bytes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MemWrite {
    /// Byte address of the first byte written.
    pub addr: u64,
    /// The stored value, masked to the access width.
    pub value: u32,
    /// Access width in bytes (1, 2, or 4).
    pub bytes: u8,
}

/// Why a step could not be taken.
///
/// These are *usage* errors — the caller failed to supply an input the
/// instruction needs — not program divergences.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StepError {
    /// A memory instruction was stepped without [`StepIo::mem_addr`].
    MissingAddress(Opcode),
    /// A load was stepped without [`StepIo::load_value`].
    MissingLoadValue(Opcode),
    /// A call was stepped without [`StepIo::link_value`].
    MissingLinkValue,
}

impl fmt::Display for StepError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StepError::MissingAddress(op) => {
                write!(f, "memory instruction {op} stepped without an address")
            }
            StepError::MissingLoadValue(op) => {
                write!(f, "load {op} stepped without an input value")
            }
            StepError::MissingLinkValue => f.write_str("call stepped without a link token"),
        }
    }
}

impl std::error::Error for StepError {}

/// Deterministic input seeding: the value the `visit`-th dynamic execution
/// of instruction `uid` observes (initial register images, load results,
/// link tokens all come from this one stream).
///
/// Uses the same splitmix64 finalizer as the trace expander so values are
/// well mixed even for adjacent uids/visits.
pub fn seeded_input(seed: u64, uid: u64, visit: u64) -> u32 {
    let mut x = seed ^ uid.rotate_left(17) ^ visit.rotate_left(43);
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = x;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^= z >> 31;
    (z >> 16) as u32
}

/// Sparse byte-granular memory image organised as aligned 64-byte pages.
///
/// The interpreter's hot path executes a store every few steps, and a flat
/// `BTreeMap<u64, u8>` pays a tree probe (and a possible node allocation)
/// per *byte*. Pages amortise that to one probe per store — consecutive
/// stores overwhelmingly hit an already-allocated page, making the common
/// case allocation-free — while a `written` bitmask per page distinguishes
/// "never stored" from "stored zero", preserving exact byte-map semantics
/// for equality and lookups.
#[derive(Clone, PartialEq, Eq, Default)]
pub struct SparseMem {
    pages: BTreeMap<u64, Page>,
}

/// One aligned 64-byte region. Unwritten bytes stay zero forever, so the
/// derived equality over `(written, data)` matches byte-map equality: two
/// pages are equal exactly when the same bytes were stored with the same
/// values.
#[derive(Clone, PartialEq, Eq)]
struct Page {
    written: u64,
    data: [u8; 64],
}

impl SparseMem {
    const PAGE: u64 = 64;

    /// The byte stored at `addr`, or `None` if nothing was ever stored there.
    #[must_use]
    pub fn get(&self, addr: u64) -> Option<u8> {
        let page = self.pages.get(&(addr & !(Self::PAGE - 1)))?;
        let bit = addr % Self::PAGE;
        ((page.written >> bit) & 1 == 1).then_some(page.data[bit as usize])
    }

    /// Stores one byte at `addr`.
    pub fn insert(&mut self, addr: u64, byte: u8) {
        let page = self.pages.entry(addr & !(Self::PAGE - 1)).or_insert(Page {
            written: 0,
            data: [0; 64],
        });
        let bit = addr % Self::PAGE;
        page.written |= 1 << bit;
        page.data[bit as usize] = byte;
    }

    /// Number of distinct addresses ever stored to.
    #[must_use]
    pub fn len(&self) -> usize {
        self.pages
            .values()
            .map(|p| p.written.count_ones() as usize)
            .sum()
    }

    /// Whether no byte was ever stored.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        // Pages are only created by `insert`, which always sets a bit.
        self.pages.is_empty()
    }

    /// Written addresses in ascending order.
    pub fn keys(&self) -> impl Iterator<Item = u64> + '_ {
        self.iter().map(|(addr, _)| addr)
    }

    /// `(address, byte)` pairs in ascending address order.
    pub fn iter(&self) -> impl Iterator<Item = (u64, u8)> + '_ {
        self.pages.iter().flat_map(|(base, page)| {
            (0..Self::PAGE).filter_map(move |i| {
                ((page.written >> i) & 1 == 1).then_some((base + i, page.data[i as usize]))
            })
        })
    }
}

impl fmt::Debug for SparseMem {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_map().entries(self.iter()).finish()
    }
}

/// Architectural state: 16 registers, NZCV flags, and a sparse byte-granular
/// memory image populated by stores.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct MachineState {
    /// The sixteen architected registers, indexed by [`Reg::index`].
    pub regs: [u32; 16],
    /// The condition flags.
    pub flags: Flags,
    /// Sparse memory: only bytes that stores have written are present.
    pub mem: SparseMem,
}

impl MachineState {
    /// A machine with every register seeded deterministically from `seed`.
    pub fn seeded(seed: u64) -> MachineState {
        let mut regs = [0u32; 16];
        for (i, slot) in regs.iter_mut().enumerate() {
            *slot = seeded_input(seed, u64::MAX - i as u64, 0);
        }
        MachineState {
            regs,
            flags: Flags::default(),
            mem: SparseMem::default(),
        }
    }

    /// Reads a register.
    pub fn reg(&self, reg: Reg) -> u32 {
        self.regs[usize::from(reg.index())]
    }

    /// Writes a register.
    pub fn set_reg(&mut self, reg: Reg, value: u32) {
        self.regs[usize::from(reg.index())] = value;
    }

    /// Whether an instruction with condition `cond` would execute now.
    pub fn cond_passes(&self, cond: Cond) -> bool {
        self.flags.passes(cond)
    }

    /// Executes one instruction against this state.
    ///
    /// Control-flow instructions only affect dataflow state (a call writes
    /// the link register); actual redirection is the trace replayer's job.
    ///
    /// # Errors
    ///
    /// Returns a [`StepError`] when `io` is missing an input the
    /// instruction requires (an oracle bug, never a program divergence).
    pub fn step(&mut self, insn: &Insn, io: &StepIo) -> Result<StepEffect, StepError> {
        if !self.cond_passes(insn.cond()) {
            return Ok(StepEffect::none(false));
        }
        let op = insn.op();

        if op.is_store() {
            let addr = io.mem_addr.ok_or(StepError::MissingAddress(op))?;
            let value = insn.srcs().get(0).map(|r| self.reg(r)).unwrap_or(0);
            let bytes: u8 = match op {
                Opcode::Strb => 1,
                Opcode::Strh => 2,
                _ => 4,
            };
            let masked = mask_to_width(value, bytes);
            for i in 0..u64::from(bytes) {
                self.mem.insert(addr + i, (masked >> (8 * i)) as u8);
            }
            return Ok(StepEffect {
                executed: true,
                reg_write: None,
                mem_write: Some(MemWrite {
                    addr,
                    value: masked,
                    bytes,
                }),
                flags_written: false,
            });
        }

        if op.is_load() {
            io.mem_addr.ok_or(StepError::MissingAddress(op))?;
            let raw = io.load_value.ok_or(StepError::MissingLoadValue(op))?;
            let bytes: u8 = match op {
                Opcode::Ldrb => 1,
                Opcode::Ldrh => 2,
                _ => 4,
            };
            let value = mask_to_width(raw, bytes);
            return Ok(self.write_dst(insn, value));
        }

        if op.is_branch() {
            // BL defines lr with an abstract, layout-independent token.
            if op.is_call() {
                let token = io.link_value.ok_or(StepError::MissingLinkValue)?;
                return Ok(self.write_dst(insn, token));
            }
            return Ok(StepEffect::none(true));
        }

        match op {
            Opcode::Cmp | Opcode::Cmn | Opcode::Tst | Opcode::Vcmp => {
                let lhs = insn.srcs().get(0).map(|r| self.reg(r)).unwrap_or(0);
                let rhs = self.second_operand(insn, 1);
                match op {
                    Opcode::Cmp | Opcode::Vcmp => self.set_flags_sub(lhs, rhs),
                    Opcode::Cmn => self.set_flags_add(lhs, rhs),
                    _ => {
                        let r = lhs & rhs;
                        self.flags.n = r & 0x8000_0000 != 0;
                        self.flags.z = r == 0;
                    }
                }
                Ok(StepEffect {
                    executed: true,
                    reg_write: None,
                    mem_write: None,
                    flags_written: true,
                })
            }
            Opcode::Cdp | Opcode::Nop => Ok(StepEffect::none(true)),
            _ => {
                let value = self.alu_value(insn);
                Ok(self.write_dst(insn, value))
            }
        }
    }

    /// Computes the result of a register-writing ALU/multiply/FP-model op.
    fn alu_value(&self, insn: &Insn) -> u32 {
        let op = insn.op();
        let a = insn.srcs().get(0).map(|r| self.reg(r)).unwrap_or(0);
        let b = self.second_operand(insn, 1);
        let c = insn.srcs().get(2).map(|r| self.reg(r)).unwrap_or(0);
        match op {
            Opcode::Add | Opcode::Vadd => a.wrapping_add(b),
            Opcode::Sub | Opcode::Vsub => a.wrapping_sub(b),
            Opcode::Rsb => b.wrapping_sub(a),
            Opcode::And => a & b,
            Opcode::Orr => a | b,
            Opcode::Eor => a ^ b,
            Opcode::Bic => a & !b,
            // `mov` has no first source; its single operand is in slot 0 or
            // the immediate, which is what `a`/`second_operand(.., 0)` find.
            Opcode::Mov => self.second_operand(insn, 0),
            Opcode::Mvn => !self.second_operand(insn, 0),
            Opcode::Lsl => shift_lsl(a, b),
            Opcode::Lsr => shift_lsr(a, b),
            Opcode::Asr => shift_asr(a, b),
            Opcode::Ror => a.rotate_right(b % 32),
            Opcode::Mul | Opcode::Vmul => a.wrapping_mul(b),
            Opcode::Mla => a.wrapping_mul(b).wrapping_add(c),
            Opcode::Smull => (i64::from(a as i32).wrapping_mul(i64::from(b as i32))) as u64 as u32,
            Opcode::Sdiv => {
                let (a, b) = (a as i32, b as i32);
                if b == 0 {
                    0 // ARM sdiv: division by zero yields zero.
                } else {
                    a.wrapping_div(b) as u32
                }
            }
            // ARM udiv: division by zero yields zero.
            Opcode::Udiv | Opcode::Vdiv => a.checked_div(b).unwrap_or(0),
            Opcode::Vsqrt => integer_sqrt(self.second_operand(insn, 0)),
            // Remaining opcodes (mem/branch/compare/pseudo) never reach
            // here; produce the first operand so the arm stays total.
            _ => a,
        }
    }

    /// The operand in source slot `slot`, falling back to the immediate.
    fn second_operand(&self, insn: &Insn, slot: usize) -> u32 {
        match insn.srcs().get(slot) {
            Some(reg) => self.reg(reg),
            None => insn.imm().unwrap_or(0) as u32,
        }
    }

    fn write_dst(&mut self, insn: &Insn, value: u32) -> StepEffect {
        match insn.dst() {
            Some(dst) => {
                self.set_reg(dst, value);
                StepEffect {
                    executed: true,
                    reg_write: Some((dst, value)),
                    mem_write: None,
                    flags_written: false,
                }
            }
            None => StepEffect::none(true),
        }
    }

    fn set_flags_sub(&mut self, a: u32, b: u32) {
        let r = a.wrapping_sub(b);
        self.flags.n = r & 0x8000_0000 != 0;
        self.flags.z = r == 0;
        self.flags.c = a >= b; // no borrow
        self.flags.v = ((a ^ b) & (a ^ r)) & 0x8000_0000 != 0;
    }

    fn set_flags_add(&mut self, a: u32, b: u32) {
        let (r, carry) = a.overflowing_add(b);
        self.flags.n = r & 0x8000_0000 != 0;
        self.flags.z = r == 0;
        self.flags.c = carry;
        self.flags.v = (!(a ^ b) & (a ^ r)) & 0x8000_0000 != 0;
    }
}

fn mask_to_width(value: u32, bytes: u8) -> u32 {
    match bytes {
        1 => value & 0xFF,
        2 => value & 0xFFFF,
        _ => value,
    }
}

fn shift_lsl(a: u32, amount: u32) -> u32 {
    if amount >= 32 {
        0
    } else {
        a << amount
    }
}

fn shift_lsr(a: u32, amount: u32) -> u32 {
    if amount >= 32 {
        0
    } else {
        a >> amount
    }
}

fn shift_asr(a: u32, amount: u32) -> u32 {
    let amount = amount.min(31);
    ((a as i32) >> amount) as u32
}

fn integer_sqrt(x: u32) -> u32 {
    let mut r = (x as f64).sqrt() as u32;
    // Float rounding can land one off in either direction; fix up exactly.
    while r.checked_mul(r).is_none_or(|sq| sq > x) {
        r -= 1;
    }
    while (r + 1).checked_mul(r + 1).is_some_and(|sq| sq <= x) {
        r += 1;
    }
    r
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fresh() -> MachineState {
        MachineState::seeded(42)
    }

    #[test]
    fn seeding_is_deterministic_and_seed_sensitive() {
        assert_eq!(MachineState::seeded(7), MachineState::seeded(7));
        assert_ne!(MachineState::seeded(7).regs, MachineState::seeded(8).regs);
        assert_eq!(seeded_input(1, 2, 3), seeded_input(1, 2, 3));
        assert_ne!(seeded_input(1, 2, 3), seeded_input(1, 2, 4));
        assert_ne!(seeded_input(1, 2, 3), seeded_input(1, 3, 3));
    }

    #[test]
    fn alu_ops_compute_arm_results() {
        let mut m = fresh();
        m.set_reg(Reg::R1, 10);
        m.set_reg(Reg::R2, 3);
        let io = StepIo::default();
        let cases = [
            (Opcode::Add, 13u32),
            (Opcode::Sub, 7),
            (Opcode::Rsb, u32::MAX - 6), // 3 - 10
            (Opcode::And, 2),
            (Opcode::Orr, 11),
            (Opcode::Eor, 9),
            (Opcode::Bic, 8),
            (Opcode::Mul, 30),
            (Opcode::Lsl, 80),
            (Opcode::Lsr, 1),
        ];
        for (op, expected) in cases {
            let insn = Insn::alu(op, Reg::R0, &[Reg::R1, Reg::R2]);
            let effect = m.step(&insn, &io).expect("alu step");
            assert_eq!(effect.reg_write, Some((Reg::R0, expected)), "{op}");
        }
    }

    #[test]
    fn immediate_operands_take_the_second_slot() {
        let mut m = fresh();
        m.set_reg(Reg::R3, 100);
        let insn = Insn::alu_imm(Opcode::Sub, Reg::R3, Reg::R3, 1);
        let effect = m.step(&insn, &StepIo::default()).expect("sub imm");
        assert_eq!(effect.reg_write, Some((Reg::R3, 99)));
        let mov = Insn::mov_imm(Reg::R5, 42);
        m.step(&mov, &StepIo::default()).expect("mov imm");
        assert_eq!(m.reg(Reg::R5), 42);
    }

    #[test]
    fn division_by_zero_yields_zero() {
        let mut m = fresh();
        m.set_reg(Reg::R1, 99);
        m.set_reg(Reg::R2, 0);
        for op in [Opcode::Sdiv, Opcode::Udiv] {
            let insn = Insn::alu(op, Reg::R0, &[Reg::R1, Reg::R2]);
            let effect = m.step(&insn, &StepIo::default()).expect("div step");
            assert_eq!(effect.reg_write, Some((Reg::R0, 0)), "{op}");
        }
    }

    #[test]
    fn oversized_shifts_saturate() {
        let mut m = fresh();
        m.set_reg(Reg::R1, 0x8000_0001);
        m.set_reg(Reg::R2, 40);
        let lsl = Insn::alu(Opcode::Lsl, Reg::R0, &[Reg::R1, Reg::R2]);
        assert_eq!(
            m.step(&lsl, &StepIo::default()).unwrap().reg_write,
            Some((Reg::R0, 0))
        );
        let asr = Insn::alu(Opcode::Asr, Reg::R0, &[Reg::R1, Reg::R2]);
        assert_eq!(
            m.step(&asr, &StepIo::default()).unwrap().reg_write,
            Some((Reg::R0, u32::MAX)),
            "asr fills with the sign bit"
        );
    }

    #[test]
    fn compare_sets_flags_and_predication_reads_them() {
        let mut m = fresh();
        m.set_reg(Reg::R1, 5);
        m.set_reg(Reg::R2, 5);
        let cmp = Insn::compare(Opcode::Cmp, Reg::R1, Reg::R2);
        let effect = m.step(&cmp, &StepIo::default()).expect("cmp");
        assert!(effect.flags_written);
        assert!(m.flags.z && !m.flags.n && m.flags.c && !m.flags.v);
        assert!(m.cond_passes(Cond::Eq));
        assert!(!m.cond_passes(Cond::Ne));
        assert!(m.cond_passes(Cond::Ge));

        // A predicated-false instruction has no effect.
        let mov = Insn::mov_imm(Reg::R0, 7).with_cond(Cond::Ne);
        let before = m.reg(Reg::R0);
        let effect = m.step(&mov, &StepIo::default()).expect("movne");
        assert!(!effect.executed);
        assert_eq!(m.reg(Reg::R0), before);
    }

    #[test]
    fn signed_conditions_follow_overflow() {
        let mut m = fresh();
        m.set_reg(Reg::R1, 0x8000_0000); // i32::MIN
        m.set_reg(Reg::R2, 1);
        let cmp = Insn::compare(Opcode::Cmp, Reg::R1, Reg::R2);
        m.step(&cmp, &StepIo::default()).expect("cmp");
        // i32::MIN - 1 overflows: N clear... result 0x7FFFFFFF, V set.
        assert!(m.flags.v);
        assert!(m.cond_passes(Cond::Lt), "MIN < 1 signed");
        assert!(m.cond_passes(Cond::Cs), "MIN >= 1 unsigned");
    }

    #[test]
    fn stores_land_in_sparse_memory() {
        let mut m = fresh();
        m.set_reg(Reg::R1, 0xAABB_CCDD);
        let io = StepIo {
            mem_addr: Some(0x1000),
            ..StepIo::default()
        };
        let st = Insn::store(Opcode::Str, Reg::R1, Reg::R2, 0);
        let effect = m.step(&st, &io).expect("str");
        assert_eq!(
            effect.mem_write,
            Some(MemWrite {
                addr: 0x1000,
                value: 0xAABB_CCDD,
                bytes: 4
            })
        );
        assert_eq!(m.mem.get(0x1000), Some(0xDD));
        assert_eq!(m.mem.get(0x1003), Some(0xAA));

        let stb = Insn::store(Opcode::Strb, Reg::R1, Reg::R2, 0);
        let io2 = StepIo {
            mem_addr: Some(0x2000),
            ..StepIo::default()
        };
        let effect = m.step(&stb, &io2).expect("strb");
        assert_eq!(
            effect.mem_write.map(|w| (w.value, w.bytes)),
            Some((0xDD, 1))
        );
        assert_eq!(m.mem.len(), 5);
    }

    #[test]
    fn sparse_mem_distinguishes_stored_zero_from_never_stored() {
        let mut a = SparseMem::default();
        let b = SparseMem::default();
        a.insert(0x40, 0);
        assert_eq!(a.get(0x40), Some(0));
        assert_eq!(b.get(0x40), None);
        assert_ne!(a, b, "a stored zero; b stored nothing");
        assert_eq!(a.len(), 1);
        assert!(b.is_empty());
    }

    #[test]
    fn sparse_mem_iterates_in_address_order_across_pages() {
        let mut m = SparseMem::default();
        for addr in [0x203, 0x13F, 0x200, 0x07] {
            m.insert(addr, (addr & 0xFF) as u8);
        }
        m.insert(0x200, 0xEE); // overwrite keeps one entry
        let pairs: Vec<(u64, u8)> = m.iter().collect();
        assert_eq!(
            pairs,
            vec![(0x07, 0x07), (0x13F, 0x3F), (0x200, 0xEE), (0x203, 0x03)]
        );
        assert_eq!(
            m.keys().collect::<Vec<u64>>(),
            vec![0x07, 0x13F, 0x200, 0x203]
        );
        assert_eq!(m.len(), 4);
    }

    #[test]
    fn loads_take_the_seeded_input_not_memory() {
        let mut m = fresh();
        m.mem.insert(0x1000, 0x99);
        let io = StepIo {
            mem_addr: Some(0x1000),
            load_value: Some(0x1234_5678),
            ..StepIo::default()
        };
        let ld = Insn::load(Opcode::Ldr, Reg::R0, Reg::R2, 0);
        let effect = m.step(&ld, &io).expect("ldr");
        assert_eq!(effect.reg_write, Some((Reg::R0, 0x1234_5678)));
        let ldb = Insn::load(Opcode::Ldrb, Reg::R0, Reg::R2, 0);
        let effect = m.step(&ldb, &io).expect("ldrb");
        assert_eq!(effect.reg_write, Some((Reg::R0, 0x78)), "byte loads mask");
    }

    #[test]
    fn missing_io_is_a_typed_error() {
        let mut m = fresh();
        let ld = Insn::load(Opcode::Ldr, Reg::R0, Reg::R2, 0);
        assert_eq!(
            m.step(&ld, &StepIo::default()),
            Err(StepError::MissingAddress(Opcode::Ldr))
        );
        let io = StepIo {
            mem_addr: Some(0),
            ..StepIo::default()
        };
        assert_eq!(
            m.step(&ld, &io),
            Err(StepError::MissingLoadValue(Opcode::Ldr))
        );
        let bl = Insn::branch(Opcode::Bl, 4);
        assert_eq!(
            m.step(&bl, &StepIo::default()),
            Err(StepError::MissingLinkValue)
        );
    }

    #[test]
    fn calls_write_the_link_token_and_branches_do_nothing() {
        let mut m = fresh();
        let io = StepIo {
            link_value: Some(0xBEEF),
            ..StepIo::default()
        };
        let bl = Insn::branch(Opcode::Bl, 16);
        let effect = m.step(&bl, &io).expect("bl");
        assert_eq!(effect.reg_write, Some((Reg::LR, 0xBEEF)));
        let b = Insn::branch(Opcode::B, -4);
        let effect = m.step(&b, &StepIo::default()).expect("b");
        assert_eq!(effect, StepEffect::none(true));
        let cdp = Insn::cdp(3);
        assert_eq!(
            m.step(&cdp, &StepIo::default()).unwrap(),
            StepEffect::none(true)
        );
    }

    #[test]
    fn width_does_not_change_semantics() {
        // The whole point of validation: re-encoding must be meaning-
        // preserving, so the interpreter must treat widths identically.
        let insn = Insn::alu_imm(Opcode::Add, Reg::R4, Reg::R4, 5);
        let thumbed = insn.to_thumb().expect("convertible");
        let mut a = fresh();
        let mut b = fresh();
        a.step(&insn, &StepIo::default()).expect("arm step");
        b.step(&thumbed, &StepIo::default()).expect("thumb step");
        assert_eq!(a, b);
    }

    #[test]
    fn integer_sqrt_is_exact() {
        for x in [0u32, 1, 2, 3, 4, 15, 16, 17, 24, 25, u32::MAX] {
            let r = integer_sqrt(x);
            assert!(u64::from(r) * u64::from(r) <= u64::from(x));
            assert!((u64::from(r) + 1) * (u64::from(r) + 1) > u64::from(x));
        }
    }
}
