//! Architected registers of the ARM-like machine.
//!
//! ARM has 16 architected general-purpose registers, `r0`–`r15`, where
//! `r13`/`r14`/`r15` double as stack pointer, link register, and program
//! counter. The 16-bit Thumb format can only name the first 11
//! ([`crate::thumb::THUMB_REG_LIMIT`]) — the restriction the CritICs paper
//! calls out as one of the two reasons naive whole-program Thumb conversion
//! executes ~1.6× more instructions.

use std::fmt;

use serde::{Deserialize, Serialize};

/// One of the 16 architected general-purpose registers.
///
/// # Example
///
/// ```
/// use critic_isa::Reg;
///
/// assert!(Reg::R4.is_thumb_addressable());
/// assert!(!Reg::R12.is_thumb_addressable());
/// assert_eq!(Reg::SP, Reg::R13);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
#[allow(missing_docs)]
#[repr(u8)]
pub enum Reg {
    R0 = 0,
    R1 = 1,
    R2 = 2,
    R3 = 3,
    R4 = 4,
    R5 = 5,
    R6 = 6,
    R7 = 7,
    R8 = 8,
    R9 = 9,
    R10 = 10,
    R11 = 11,
    R12 = 12,
    R13 = 13,
    R14 = 14,
    R15 = 15,
}

impl Reg {
    /// Stack pointer alias (`r13`).
    pub const SP: Reg = Reg::R13;
    /// Link register alias (`r14`).
    pub const LR: Reg = Reg::R14;
    /// Program counter alias (`r15`).
    pub const PC: Reg = Reg::R15;

    /// All sixteen registers in index order.
    pub const ALL: [Reg; 16] = [
        Reg::R0,
        Reg::R1,
        Reg::R2,
        Reg::R3,
        Reg::R4,
        Reg::R5,
        Reg::R6,
        Reg::R7,
        Reg::R8,
        Reg::R9,
        Reg::R10,
        Reg::R11,
        Reg::R12,
        Reg::R13,
        Reg::R14,
        Reg::R15,
    ];

    /// Builds a register from its architectural index.
    ///
    /// Returns `None` for indices above 15.
    ///
    /// ```
    /// use critic_isa::Reg;
    /// assert_eq!(Reg::from_index(3), Some(Reg::R3));
    /// assert_eq!(Reg::from_index(16), None);
    /// ```
    pub fn from_index(index: u8) -> Option<Reg> {
        Reg::ALL.get(usize::from(index)).copied()
    }

    /// The architectural index (0–15).
    pub fn index(self) -> u8 {
        self as u8
    }

    /// Whether the 16-bit Thumb format can name this register.
    ///
    /// The paper (Sec. III-B) notes Thumb "cuts the number of architected
    /// registers as operands from 16 to 11", i.e. `r0`–`r10`.
    pub fn is_thumb_addressable(self) -> bool {
        self.index() < crate::thumb::THUMB_REG_LIMIT
    }

    /// Whether this register has a special role (SP, LR, or PC).
    pub fn is_special(self) -> bool {
        matches!(self, Reg::R13 | Reg::R14 | Reg::R15)
    }
}

impl fmt::Display for Reg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            Reg::R13 => write!(f, "sp"),
            Reg::R14 => write!(f, "lr"),
            Reg::R15 => write!(f, "pc"),
            other => write!(f, "r{}", other.index()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn index_round_trips() {
        for reg in Reg::ALL {
            assert_eq!(Reg::from_index(reg.index()), Some(reg));
        }
    }

    #[test]
    fn from_index_rejects_out_of_range() {
        assert_eq!(Reg::from_index(16), None);
        assert_eq!(Reg::from_index(u8::MAX), None);
    }

    #[test]
    fn thumb_addressability_matches_paper_limit() {
        let addressable = Reg::ALL.iter().filter(|r| r.is_thumb_addressable()).count();
        assert_eq!(addressable, 11, "paper: Thumb names 11 of 16 registers");
        assert!(Reg::R10.is_thumb_addressable());
        assert!(!Reg::R11.is_thumb_addressable());
    }

    #[test]
    fn aliases_point_at_high_registers() {
        assert_eq!(Reg::SP.index(), 13);
        assert_eq!(Reg::LR.index(), 14);
        assert_eq!(Reg::PC.index(), 15);
        assert!(Reg::SP.is_special());
        assert!(!Reg::R0.is_special());
    }

    #[test]
    fn display_uses_conventional_names() {
        assert_eq!(Reg::R0.to_string(), "r0");
        assert_eq!(Reg::R13.to_string(), "sp");
        assert_eq!(Reg::R14.to_string(), "lr");
        assert_eq!(Reg::R15.to_string(), "pc");
    }
}
