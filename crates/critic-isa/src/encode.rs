//! Bit-level instruction encodings (paper Fig. 6).
//!
//! Two formats exist, mirroring ARM/Thumb:
//!
//! **32-bit ARM** — `cond(4) | code(6) | dst(4) | src1(4) | src2(4) | immp(1)
//! | imm(9)`, where register fields use `0xF` to mean "absent" (the PC is
//! never an explicit operand in this model), and the three-source multiplies
//! (`mla`, `smull`) reuse the immediate field's low bits for their third
//! source. Direct branches use `cond(4) | code(6) | off(22)`.
//!
//! **16-bit Thumb** — four layouts selected by the 6-bit code:
//!
//! * register form: `code(6) | dst(4) | src1(3) | src2(3)`;
//! * immediate forms (codes ≥ [`IMM_FORM_BASE`]): ALU
//!   `code(6) | dst(3) | imm(7)` (two-address) and memory
//!   `code(6) | dst(3) | base(3) | imm4×4`;
//! * branch: `code(6) | off(10)`;
//! * CDP format switch: `code(6) | covered-1 (4) | 0(6)`.
//!
//! Encoding is checked: an instruction whose operands do not fit its width's
//! fields is an [`EncodeError`], and `decode(encode(i)) == i` for every
//! encodable instruction (see the proptest suite in `tests/`).

use std::fmt;

use serde::{Deserialize, Serialize};

use crate::cond::Cond;
use crate::insn::{Insn, InsnBuilder, Width};
use crate::op::Opcode;
use crate::reg::Reg;
use crate::thumb::{self, ThumbIncompatibility};

/// First 6-bit code used by Thumb immediate-form encodings.
pub const IMM_FORM_BASE: u8 = 38;

/// Opcodes that have a Thumb immediate form, in code-assignment order.
pub const IMM_FORM_OPS: [Opcode; 20] = [
    Opcode::Add,
    Opcode::Sub,
    Opcode::Rsb,
    Opcode::And,
    Opcode::Orr,
    Opcode::Eor,
    Opcode::Bic,
    Opcode::Mov,
    Opcode::Mvn,
    Opcode::Cmp,
    Opcode::Lsl,
    Opcode::Lsr,
    Opcode::Asr,
    Opcode::Ror,
    Opcode::Ldr,
    Opcode::Ldrb,
    Opcode::Ldrh,
    Opcode::Str,
    Opcode::Strb,
    Opcode::Strh,
];

/// Smallest ARM-format immediate (9-bit two's complement).
pub const ARM_IMM_MIN: i32 = -256;
/// Largest ARM-format immediate (9-bit two's complement).
pub const ARM_IMM_MAX: i32 = 255;
/// Largest ARM branch word offset (22-bit two's complement).
pub const ARM_BRANCH_MAX: i32 = (1 << 21) - 1;
/// Smallest ARM branch word offset.
pub const ARM_BRANCH_MIN: i32 = -(1 << 21);

const REG_ABSENT: u32 = 0xF;

/// An encoded instruction: one 32-bit word or one 16-bit half-word.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Encoded {
    /// 32-bit ARM word.
    Word(u32),
    /// 16-bit Thumb half-word.
    Half(u16),
}

impl Encoded {
    /// Bytes occupied in the instruction stream.
    pub fn bytes(self) -> u64 {
        match self {
            Encoded::Word(_) => 4,
            Encoded::Half(_) => 2,
        }
    }

    /// The raw bits, zero-extended.
    pub fn bits(self) -> u32 {
        match self {
            Encoded::Word(w) => w,
            Encoded::Half(h) => u32::from(h),
        }
    }
}

impl fmt::Display for Encoded {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Encoded::Word(w) => write!(f, "{w:08x}"),
            Encoded::Half(h) => write!(f, "{h:04x}"),
        }
    }
}

/// Why an instruction could not be encoded.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum EncodeError {
    /// The immediate does not fit the format's field.
    ImmOutOfRange(i32),
    /// `r15` cannot appear as an explicit operand (its field value is the
    /// "absent" sentinel).
    UnencodableRegister(Reg),
    /// The instruction's operand count does not match the opcode's canonical
    /// encoding arity.
    UnsupportedArity(Opcode),
    /// A Thumb-width instruction that fails the conversion predicate.
    NotThumbConvertible(ThumbIncompatibility),
    /// The opcode has no immediate form but an immediate was supplied.
    NoImmForm(Opcode),
    /// A CDP format switch whose cover count is outside `1..=9` (its 3-bit
    /// field cannot express it). Only reachable through deserialized or
    /// fault-injected instructions; [`crate::Insn::cdp`] checks at
    /// construction.
    BadCdpCover(i32),
}

impl fmt::Display for EncodeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EncodeError::ImmOutOfRange(imm) => write!(f, "immediate #{imm} out of range"),
            EncodeError::UnencodableRegister(reg) => {
                write!(f, "register `{reg}` cannot be an explicit operand")
            }
            EncodeError::UnsupportedArity(op) => {
                write!(f, "operand count unsupported for `{op}`")
            }
            EncodeError::NotThumbConvertible(why) => {
                write!(f, "not thumb-convertible: {why}")
            }
            EncodeError::NoImmForm(op) => write!(f, "`{op}` has no immediate form"),
            EncodeError::BadCdpCover(len) => {
                write!(f, "cdp cover count {len} outside 1..=9")
            }
        }
    }
}

impl std::error::Error for EncodeError {}

/// Why a bit pattern could not be decoded.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum DecodeError {
    /// Unknown opcode code point.
    BadOpcode(u8),
    /// Reserved condition field.
    BadCond(u8),
    /// Register field out of range.
    BadRegister(u8),
    /// CDP cover length out of the 1..=9 range.
    BadCdpLen(u8),
}

impl fmt::Display for DecodeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DecodeError::BadOpcode(code) => write!(f, "unknown opcode code {code}"),
            DecodeError::BadCond(bits) => write!(f, "reserved condition bits {bits:#06b}"),
            DecodeError::BadRegister(bits) => write!(f, "register field {bits} out of range"),
            DecodeError::BadCdpLen(len) => write!(f, "cdp cover length {len} out of range"),
        }
    }
}

impl std::error::Error for DecodeError {}

fn imm_form_code(op: Opcode) -> Option<u8> {
    IMM_FORM_OPS
        .iter()
        .position(|&o| o == op)
        .map(|i| IMM_FORM_BASE + i as u8)
}

fn reg_field(reg: Option<Reg>) -> Result<u32, EncodeError> {
    match reg {
        None => Ok(REG_ABSENT),
        Some(Reg::PC) => Err(EncodeError::UnencodableRegister(Reg::PC)),
        Some(reg) => Ok(u32::from(reg.index())),
    }
}

/// Encodes an instruction according to its [`Width`].
///
/// # Errors
///
/// Returns an [`EncodeError`] when an operand does not fit the format; see
/// the module docs for the field widths.
pub fn encode(insn: &Insn) -> Result<Encoded, EncodeError> {
    match insn.width() {
        Width::Arm32 => encode_arm32(insn).map(Encoded::Word),
        Width::Thumb16 => encode_thumb16(insn).map(Encoded::Half),
    }
}

fn encode_arm32(insn: &Insn) -> Result<u32, EncodeError> {
    let op = insn.op();
    let cond = u32::from(insn.cond().bits()) << 28;
    let code = u32::from(op.code()) << 22;
    if matches!(op, Opcode::B | Opcode::Bl) {
        let off = insn.imm().unwrap_or(0);
        if !(ARM_BRANCH_MIN..=ARM_BRANCH_MAX).contains(&off) {
            return Err(EncodeError::ImmOutOfRange(off));
        }
        return Ok(cond | code | ((off as u32) & 0x3F_FFFF));
    }
    let dst = reg_field(insn.dst())? << 18;
    let src1 = reg_field(insn.srcs().get(0))? << 14;
    let src2 = reg_field(insn.srcs().get(1))? << 10;
    let mut word = cond | code | dst | src1 | src2;
    if op == Opcode::Mla {
        // The one three-source opcode reuses the immediate field's low bits.
        let src3 = insn
            .srcs()
            .get(2)
            .ok_or(EncodeError::UnsupportedArity(op))?;
        word |= u32::from(src3.index());
    } else if insn.srcs().get(2).is_some() {
        return Err(EncodeError::UnsupportedArity(op));
    } else if let Some(imm) = insn.imm() {
        if !(ARM_IMM_MIN..=ARM_IMM_MAX).contains(&imm) {
            return Err(EncodeError::ImmOutOfRange(imm));
        }
        word |= 1 << 9;
        word |= (imm as u32) & 0x1FF;
    }
    Ok(word)
}

fn sign_extend(bits: u32, width: u32) -> i32 {
    let shift = 32 - width;
    ((bits << shift) as i32) >> shift
}

/// Decodes a 32-bit ARM word produced by [`encode`].
///
/// # Errors
///
/// Returns a [`DecodeError`] for unknown opcodes, reserved conditions, or
/// malformed register fields.
pub fn decode_arm32(word: u32) -> Result<Insn, DecodeError> {
    let cond_bits = (word >> 28) as u8;
    let cond = Cond::from_bits(cond_bits).ok_or(DecodeError::BadCond(cond_bits))?;
    let code = ((word >> 22) & 0x3F) as u8;
    let op = Opcode::from_code(code).ok_or(DecodeError::BadOpcode(code))?;
    if matches!(op, Opcode::B | Opcode::Bl) {
        let off = sign_extend(word & 0x3F_FFFF, 22);
        return Ok(Insn::branch(op, off).with_cond(cond));
    }
    let mut builder = InsnBuilder::new(op).cond(cond);
    let dst = (word >> 18) & 0xF;
    if dst != REG_ABSENT {
        builder =
            builder.dst(Reg::from_index(dst as u8).ok_or(DecodeError::BadRegister(dst as u8))?);
    }
    for shift in [14u32, 10] {
        let field = (word >> shift) & 0xF;
        if field != REG_ABSENT {
            builder = builder
                .src(Reg::from_index(field as u8).ok_or(DecodeError::BadRegister(field as u8))?);
        }
    }
    if op == Opcode::Mla {
        let field = (word & 0xF) as u8;
        builder = builder.src(Reg::from_index(field).ok_or(DecodeError::BadRegister(field))?);
    } else if (word >> 9) & 1 == 1 {
        builder = builder.imm(sign_extend(word & 0x1FF, 9));
    }
    Ok(builder.build())
}

fn encode_thumb16(insn: &Insn) -> Result<u16, EncodeError> {
    thumb::check_convertible(insn).map_err(EncodeError::NotThumbConvertible)?;
    let op = insn.op();
    if op.is_format_switch() {
        let covered = insn.cdp_covered_len().unwrap_or(0);
        if !(1..=thumb::MAX_CDP_CHAIN_LEN).contains(&covered) {
            return Err(EncodeError::BadCdpCover(covered as i32));
        }
        let code = u16::from(op.code()) << 10;
        return Ok(code | ((covered as u16 - 1) << 6));
    }
    if matches!(op, Opcode::B | Opcode::Bl) {
        let off = insn.imm().unwrap_or(0);
        let code = u16::from(op.code()) << 10;
        return Ok(code | ((off as u16) & 0x3FF));
    }
    if let Some(imm) = insn.imm() {
        let code = imm_form_code(op).ok_or(EncodeError::NoImmForm(op))?;
        let code = u16::from(code) << 10;
        if op.is_mem() {
            let dst_or_val = if op.is_store() {
                insn.srcs().get(0)
            } else {
                insn.dst()
            };
            let dst = dst_or_val.map(|r| u16::from(r.index())).unwrap_or(0) << 7;
            let base_slot = if op.is_store() { 1 } else { 0 };
            let base = insn
                .srcs()
                .get(base_slot)
                .map(|r| u16::from(r.index()))
                .unwrap_or(0)
                << 4;
            return Ok(code | dst | base | ((imm / 4) as u16 & 0xF));
        }
        // Two-address ALU immediate: the source (when present) equals the
        // destination, so a single register field suffices; compares encode
        // their source there.
        let reg = insn.dst().or_else(|| insn.srcs().get(0));
        let reg = reg.map(|r| u16::from(r.index())).unwrap_or(0) << 7;
        return Ok(code | reg | (imm as u16 & 0x7F));
    }
    // Register form.
    let code = u16::from(op.code()) << 10;
    let dst = insn
        .dst()
        .map(|r| u16::from(r.index()))
        .unwrap_or(REG_ABSENT as u16)
        << 6;
    let expected_srcs = canonical_reg_arity(op);
    if insn.srcs().len() != expected_srcs {
        return Err(EncodeError::UnsupportedArity(op));
    }
    let src1 = insn
        .srcs()
        .get(0)
        .map(|r| u16::from(r.index()))
        .unwrap_or(0)
        << 3;
    let src2 = insn
        .srcs()
        .get(1)
        .map(|r| u16::from(r.index()))
        .unwrap_or(0);
    Ok(code | dst | src1 | src2)
}

/// The register-form source arity the Thumb encoder expects per opcode.
///
/// The 16-bit register form has no operand-presence bits, so each opcode's
/// source count is fixed: unary moves take one source, stores take two, and
/// ordinary ALU ops take two.
pub fn canonical_reg_arity(op: Opcode) -> usize {
    use Opcode::*;
    match op {
        Mov | Mvn | Bx => 1,
        Nop | Cdp | B | Bl => 0,
        Ldr | Ldrb | Ldrh => 1,
        Str | Strb | Strh => 2,
        _ => 2,
    }
}

/// Decodes a 16-bit Thumb half-word produced by [`encode`].
///
/// # Errors
///
/// Returns a [`DecodeError`] for unknown code points or malformed fields.
pub fn decode_thumb16(half: u16) -> Result<Insn, DecodeError> {
    let code = ((half >> 10) & 0x3F) as u8;
    if code >= IMM_FORM_BASE {
        let index = usize::from(code - IMM_FORM_BASE);
        let op = *IMM_FORM_OPS
            .get(index)
            .ok_or(DecodeError::BadOpcode(code))?;
        if op.is_mem() {
            let rt = ((half >> 7) & 0x7) as u8;
            let base = ((half >> 4) & 0x7) as u8;
            let imm = i32::from(half & 0xF) * 4;
            let rt = Reg::from_index(rt).ok_or(DecodeError::BadRegister(rt))?;
            let base = Reg::from_index(base).ok_or(DecodeError::BadRegister(base))?;
            let insn = if op.is_store() {
                Insn::store(op, rt, base, imm)
            } else {
                Insn::load(op, rt, base, imm)
            };
            return Ok(insn.with_width(Width::Thumb16));
        }
        let dst_bits = ((half >> 7) & 0x7) as u8;
        let dst = Reg::from_index(dst_bits).ok_or(DecodeError::BadRegister(dst_bits))?;
        let imm = i32::from(half & 0x7F);
        let insn = if matches!(op, Opcode::Mov | Opcode::Mvn) {
            InsnBuilder::new(op)
                .dst(dst)
                .imm(imm)
                .width(Width::Thumb16)
                .build()
        } else if op == Opcode::Cmp {
            InsnBuilder::new(op)
                .src(dst)
                .imm(imm)
                .width(Width::Thumb16)
                .build()
        } else {
            Insn::alu_imm(op, dst, dst, imm).with_width(Width::Thumb16)
        };
        return Ok(insn);
    }
    let op = Opcode::from_code(code).ok_or(DecodeError::BadOpcode(code))?;
    if op.is_format_switch() {
        let covered = ((half >> 6) & 0xF) as u8 + 1;
        if usize::from(covered) > thumb::MAX_CDP_CHAIN_LEN {
            return Err(DecodeError::BadCdpLen(covered));
        }
        return Ok(Insn::cdp(covered));
    }
    if matches!(op, Opcode::B | Opcode::Bl) {
        let off = sign_extend(u32::from(half) & 0x3FF, 10);
        return Ok(Insn::branch(op, off).with_width(Width::Thumb16));
    }
    let mut builder = InsnBuilder::new(op).width(Width::Thumb16);
    let dst_bits = ((half >> 6) & 0xF) as u8;
    if u32::from(dst_bits) != REG_ABSENT {
        builder = builder.dst(Reg::from_index(dst_bits).ok_or(DecodeError::BadRegister(dst_bits))?);
    }
    let arity = canonical_reg_arity(op);
    let fields = [((half >> 3) & 0x7) as u8, (half & 0x7) as u8];
    for &field in fields.iter().take(arity) {
        builder = builder.src(Reg::from_index(field).ok_or(DecodeError::BadRegister(field))?);
    }
    Ok(builder.build())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn round_trip_arm(insn: Insn) {
        let encoded = encode(&insn).expect("encodable");
        assert_eq!(encoded.bytes(), 4);
        let word = match encoded {
            Encoded::Word(w) => w,
            Encoded::Half(h) => panic!("expected word, got half {h:#x}"),
        };
        let decoded = decode_arm32(word).expect("decodable");
        assert_eq!(decoded, insn);
    }

    fn round_trip_thumb(insn: Insn) {
        let encoded = encode(&insn).expect("encodable");
        assert_eq!(encoded.bytes(), 2);
        let half = match encoded {
            Encoded::Half(h) => h,
            Encoded::Word(w) => panic!("expected half, got word {w:#x}"),
        };
        let decoded = decode_thumb16(half).expect("decodable");
        assert_eq!(decoded, insn);
    }

    #[test]
    fn arm_alu_round_trips() {
        round_trip_arm(Insn::alu(Opcode::Add, Reg::R0, &[Reg::R1, Reg::R2]));
        round_trip_arm(Insn::alu(Opcode::Eor, Reg::R9, &[Reg::R12, Reg::R14]));
        round_trip_arm(Insn::alu(Opcode::Mov, Reg::R4, &[Reg::R5]).with_cond(Cond::Le));
    }

    #[test]
    fn arm_imm_round_trips() {
        round_trip_arm(Insn::alu_imm(Opcode::Sub, Reg::R1, Reg::R2, ARM_IMM_MAX));
        round_trip_arm(Insn::alu_imm(Opcode::Add, Reg::R1, Reg::R2, ARM_IMM_MIN));
        round_trip_arm(Insn::mov_imm(Reg::R0, 0));
    }

    #[test]
    fn arm_memory_round_trips() {
        round_trip_arm(Insn::load(Opcode::Ldr, Reg::R3, Reg::SP, 16));
        round_trip_arm(Insn::store(Opcode::Strb, Reg::R1, Reg::R11, -4));
    }

    #[test]
    fn arm_branches_round_trip() {
        round_trip_arm(Insn::branch(Opcode::B, ARM_BRANCH_MAX));
        round_trip_arm(Insn::branch(Opcode::Bl, ARM_BRANCH_MIN));
        round_trip_arm(Insn::branch(Opcode::B, -1).with_cond(Cond::Eq));
        round_trip_arm(Insn::branch_reg(Reg::LR));
    }

    #[test]
    fn arm_three_source_multiply_round_trips() {
        round_trip_arm(Insn::alu(
            Opcode::Mla,
            Reg::R0,
            &[Reg::R1, Reg::R2, Reg::R3],
        ));
    }

    #[test]
    fn arm_rejects_out_of_range_imm() {
        let insn = Insn::alu_imm(Opcode::Add, Reg::R0, Reg::R1, ARM_IMM_MAX + 1);
        assert_eq!(
            encode(&insn),
            Err(EncodeError::ImmOutOfRange(ARM_IMM_MAX + 1))
        );
    }

    #[test]
    fn thumb_reg_form_round_trips() {
        round_trip_thumb(
            Insn::alu(Opcode::Add, Reg::R10, &[Reg::R1, Reg::R2])
                .to_thumb()
                .unwrap(),
        );
        round_trip_thumb(
            Insn::alu(Opcode::Mov, Reg::R4, &[Reg::R5])
                .to_thumb()
                .unwrap(),
        );
        round_trip_thumb(
            Insn::compare(Opcode::Cmp, Reg::R1, Reg::R2)
                .to_thumb()
                .unwrap(),
        );
    }

    #[test]
    fn thumb_imm_forms_round_trip() {
        round_trip_thumb(
            Insn::alu_imm(Opcode::Add, Reg::R3, Reg::R3, 127)
                .to_thumb()
                .unwrap(),
        );
        round_trip_thumb(Insn::mov_imm(Reg::R7, 99).to_thumb().unwrap());
        round_trip_thumb(
            Insn::load(Opcode::Ldr, Reg::R0, Reg::R1, 60)
                .to_thumb()
                .unwrap(),
        );
        round_trip_thumb(
            Insn::store(Opcode::Str, Reg::R2, Reg::R3, 0)
                .to_thumb()
                .unwrap(),
        );
    }

    #[test]
    fn thumb_branch_round_trips() {
        round_trip_thumb(Insn::branch(Opcode::B, -512).to_thumb().unwrap());
        round_trip_thumb(Insn::branch(Opcode::B, 511).to_thumb().unwrap());
    }

    #[test]
    fn cdp_round_trips_every_length() {
        for covered in 1..=thumb::MAX_CDP_CHAIN_LEN {
            round_trip_thumb(Insn::cdp(covered as u8));
        }
    }

    #[test]
    fn thumb_encoding_rechecks_convertibility() {
        // `with_width` bypasses `to_thumb`'s validation; `encode` catches it.
        let bogus =
            Insn::alu(Opcode::Sdiv, Reg::R0, &[Reg::R1, Reg::R2]).with_width(Width::Thumb16);
        assert!(matches!(
            encode(&bogus),
            Err(EncodeError::NotThumbConvertible(_))
        ));
    }

    #[test]
    fn pc_is_not_an_explicit_operand() {
        let insn = Insn::alu(Opcode::Mov, Reg::R0, &[Reg::PC]);
        assert_eq!(
            encode(&insn),
            Err(EncodeError::UnencodableRegister(Reg::PC))
        );
    }

    #[test]
    fn decode_rejects_garbage() {
        // Reserved condition 0b1111.
        assert!(matches!(
            decode_arm32(0xF000_0000),
            Err(DecodeError::BadCond(_))
        ));
        // Opcode code 63 is unused in the ARM space.
        let word = (u32::from(Cond::Al.bits()) << 28) | (63 << 22);
        assert!(matches!(
            decode_arm32(word),
            Err(DecodeError::BadOpcode(63))
        ));
        // Thumb code 62 unused.
        assert!(matches!(
            decode_thumb16(62 << 10),
            Err(DecodeError::BadOpcode(62))
        ));
    }

    #[test]
    fn encoded_display_is_hex() {
        assert_eq!(Encoded::Word(0xdead_beef).to_string(), "deadbeef");
        assert_eq!(Encoded::Half(0x0bad).to_string(), "0bad");
    }

    #[test]
    fn thumb_fetch_savings_match_paper_fig6() {
        // Paper Fig. 6/IV-F: a 5-instruction chain goes from 5×32-bit words
        // to a CDP half plus 5 halves = 3×32-bit words (12 bytes).
        let chain: Vec<Insn> = (0..5)
            .map(|i| {
                Insn::alu(
                    Opcode::Add,
                    Reg::from_index(i).unwrap(),
                    &[Reg::from_index(i).unwrap(), Reg::from_index(i + 1).unwrap()],
                )
            })
            .collect();
        let original: u64 = chain.iter().map(|i| i.fetch_bytes()).sum();
        assert_eq!(original, 20);
        let mut converted: u64 = Insn::cdp(5).fetch_bytes();
        for insn in &chain {
            converted += insn.to_thumb().unwrap().fetch_bytes();
        }
        assert_eq!(converted, 12, "5 words shrink to 3 words as in the paper");
    }
}
