//! ARM condition codes (predication).
//!
//! Every 32-bit ARM instruction carries a 4-bit condition field; an
//! instruction with any condition other than [`Cond::Al`] is *predicated*.
//! The 16-bit Thumb format cannot express predication, which is the first of
//! the two convertibility restrictions the CritICs paper works around by
//! selecting chains whose instructions happen to be unpredicated.

use std::fmt;

use serde::{Deserialize, Serialize};

/// A 4-bit ARM condition code.
///
/// ```
/// use critic_isa::Cond;
///
/// assert!(Cond::Al.is_always());
/// assert!(!Cond::Eq.is_always());
/// assert_eq!(Cond::from_bits(0b0000), Some(Cond::Eq));
/// ```
#[derive(
    Debug, Clone, Copy, Default, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize,
)]
#[repr(u8)]
pub enum Cond {
    /// Equal (Z set).
    Eq = 0b0000,
    /// Not equal (Z clear).
    Ne = 0b0001,
    /// Carry set / unsigned higher-or-same.
    Cs = 0b0010,
    /// Carry clear / unsigned lower.
    Cc = 0b0011,
    /// Minus / negative.
    Mi = 0b0100,
    /// Plus / positive or zero.
    Pl = 0b0101,
    /// Overflow.
    Vs = 0b0110,
    /// No overflow.
    Vc = 0b0111,
    /// Unsigned higher.
    Hi = 0b1000,
    /// Unsigned lower or same.
    Ls = 0b1001,
    /// Signed greater than or equal.
    Ge = 0b1010,
    /// Signed less than.
    Lt = 0b1011,
    /// Signed greater than.
    Gt = 0b1100,
    /// Signed less than or equal.
    Le = 0b1101,
    /// Always — the unpredicated case.
    #[default]
    Al = 0b1110,
}

impl Cond {
    /// All condition codes in encoding order.
    pub const ALL: [Cond; 15] = [
        Cond::Eq,
        Cond::Ne,
        Cond::Cs,
        Cond::Cc,
        Cond::Mi,
        Cond::Pl,
        Cond::Vs,
        Cond::Vc,
        Cond::Hi,
        Cond::Ls,
        Cond::Ge,
        Cond::Lt,
        Cond::Gt,
        Cond::Le,
        Cond::Al,
    ];

    /// Decodes a 4-bit condition field.
    ///
    /// Returns `None` for the reserved `0b1111` pattern and anything wider
    /// than 4 bits.
    pub fn from_bits(bits: u8) -> Option<Cond> {
        Cond::ALL.get(usize::from(bits)).copied()
    }

    /// The 4-bit encoding of this condition.
    pub fn bits(self) -> u8 {
        self as u8
    }

    /// Whether this is the unpredicated `AL` condition.
    pub fn is_always(self) -> bool {
        self == Cond::Al
    }

    /// The logical inverse condition (`EQ` ↔ `NE`, …).
    ///
    /// `AL` has no inverse and is returned unchanged, matching how ARM
    /// treats the reserved `NV` slot.
    pub fn invert(self) -> Cond {
        match self {
            Cond::Al => Cond::Al,
            other => {
                // Conditions pair up in the encoding: even ↔ odd.
                // Inverting a valid non-AL condition stays valid; fall back
                // to the input (a no-op inversion) rather than panic.
                let bits = other.bits() ^ 1;
                Cond::from_bits(bits).unwrap_or(other)
            }
        }
    }
}

impl fmt::Display for Cond {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mnemonic = match self {
            Cond::Eq => "eq",
            Cond::Ne => "ne",
            Cond::Cs => "cs",
            Cond::Cc => "cc",
            Cond::Mi => "mi",
            Cond::Pl => "pl",
            Cond::Vs => "vs",
            Cond::Vc => "vc",
            Cond::Hi => "hi",
            Cond::Ls => "ls",
            Cond::Ge => "ge",
            Cond::Lt => "lt",
            Cond::Gt => "gt",
            Cond::Le => "le",
            Cond::Al => "",
        };
        f.write_str(mnemonic)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bits_round_trip() {
        for cond in Cond::ALL {
            assert_eq!(Cond::from_bits(cond.bits()), Some(cond));
        }
    }

    #[test]
    fn reserved_pattern_rejected() {
        assert_eq!(Cond::from_bits(0b1111), None);
        assert_eq!(Cond::from_bits(0xFF), None);
    }

    #[test]
    fn inversion_is_an_involution() {
        for cond in Cond::ALL {
            assert_eq!(cond.invert().invert(), cond);
        }
    }

    #[test]
    fn inversion_pairs_match_arm_semantics() {
        assert_eq!(Cond::Eq.invert(), Cond::Ne);
        assert_eq!(Cond::Ge.invert(), Cond::Lt);
        assert_eq!(Cond::Gt.invert(), Cond::Le);
        assert_eq!(Cond::Al.invert(), Cond::Al);
    }

    #[test]
    fn only_al_is_always() {
        for cond in Cond::ALL {
            assert_eq!(cond.is_always(), cond == Cond::Al);
        }
    }

    #[test]
    fn default_is_unpredicated() {
        assert_eq!(Cond::default(), Cond::Al);
    }
}
