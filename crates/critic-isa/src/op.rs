//! Opcodes, functional-unit classes, and execution latencies.
//!
//! The opcode set is a pragmatic subset of ARMv7: enough to express the
//! dataflow, memory, control, and floating-point behaviour the CritICs
//! experiments depend on, while staying small enough to encode in the
//! simplified 32-/16-bit formats of [`crate::encode()`].
//!
//! Latency assignments follow the common gem5 `O3CPU` defaults the paper's
//! Table I configuration implies: single-cycle integer ALU, 3-cycle multiply,
//! 12-cycle divide, and longer floating-point pipes. Loads are *nominally*
//! 2 cycles (d-cache hit, Table I) but their real latency is decided by the
//! memory hierarchy at simulation time.

use std::fmt;

use serde::{Deserialize, Serialize};

/// Functional-unit class an opcode executes on.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum FuKind {
    /// Single-cycle integer ALU.
    IntAlu,
    /// Pipelined integer multiplier.
    IntMult,
    /// Unpipelined integer divider.
    IntDiv,
    /// Load/store unit (address generation + cache port).
    Mem,
    /// Branch unit.
    Branch,
    /// Floating-point add/compare pipe.
    FloatAdd,
    /// Floating-point multiply pipe.
    FloatMul,
    /// Floating-point divide/sqrt unit.
    FloatDiv,
    /// Decoder-only pseudo ops (CDP format switch, NOP).
    None,
}

/// Coarse latency class used by the paper's Fig. 3(c) ("mobile apps have
/// fewer high latency instructions").
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum LatencyClass {
    /// 1–2 cycles: ALU ops, branches, cache-hit loads.
    Short,
    /// 3–5 cycles: multiplies, FP add/mul.
    Medium,
    /// More than 5 cycles: divides, FP divide, cache-miss loads.
    Long,
}

impl LatencyClass {
    /// Classifies a concrete cycle count.
    ///
    /// ```
    /// use critic_isa::LatencyClass;
    /// assert_eq!(LatencyClass::of_cycles(1), LatencyClass::Short);
    /// assert_eq!(LatencyClass::of_cycles(4), LatencyClass::Medium);
    /// assert_eq!(LatencyClass::of_cycles(40), LatencyClass::Long);
    /// ```
    pub fn of_cycles(cycles: u32) -> LatencyClass {
        match cycles {
            0..=2 => LatencyClass::Short,
            3..=5 => LatencyClass::Medium,
            _ => LatencyClass::Long,
        }
    }
}

impl fmt::Display for LatencyClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LatencyClass::Short => f.write_str("short"),
            LatencyClass::Medium => f.write_str("medium"),
            LatencyClass::Long => f.write_str("long"),
        }
    }
}

/// The instruction opcodes of the model ISA.
///
/// ```
/// use critic_isa::{FuKind, Opcode};
///
/// assert_eq!(Opcode::Add.fu_kind(), FuKind::IntAlu);
/// assert_eq!(Opcode::Sdiv.exec_latency(), 12);
/// assert!(Opcode::Ldr.is_load());
/// assert!(Opcode::Cdp.is_format_switch());
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
#[allow(missing_docs)]
pub enum Opcode {
    // Integer ALU.
    Add,
    Sub,
    Rsb,
    And,
    Orr,
    Eor,
    Bic,
    Mov,
    Mvn,
    Cmp,
    Cmn,
    Tst,
    Lsl,
    Lsr,
    Asr,
    Ror,
    // Integer multiply / divide.
    Mul,
    Mla,
    Smull,
    Sdiv,
    Udiv,
    // Memory.
    Ldr,
    Ldrb,
    Ldrh,
    Str,
    Strb,
    Strh,
    // Control.
    B,
    Bl,
    Bx,
    // Floating point (VFP-like).
    Vadd,
    Vsub,
    Vmul,
    Vdiv,
    Vcmp,
    Vsqrt,
    // Pseudo.
    /// Co-processor data-processing mnemonic reused as the CritIC format
    /// switch (paper Sec. IV-B): its 3-bit argument means "the next `l+1`
    /// instructions are 16-bit Thumb".
    Cdp,
    Nop,
}

impl Opcode {
    /// Every opcode, in declaration order.
    pub const ALL: [Opcode; 38] = [
        Opcode::Add,
        Opcode::Sub,
        Opcode::Rsb,
        Opcode::And,
        Opcode::Orr,
        Opcode::Eor,
        Opcode::Bic,
        Opcode::Mov,
        Opcode::Mvn,
        Opcode::Cmp,
        Opcode::Cmn,
        Opcode::Tst,
        Opcode::Lsl,
        Opcode::Lsr,
        Opcode::Asr,
        Opcode::Ror,
        Opcode::Mul,
        Opcode::Mla,
        Opcode::Smull,
        Opcode::Sdiv,
        Opcode::Udiv,
        Opcode::Ldr,
        Opcode::Ldrb,
        Opcode::Ldrh,
        Opcode::Str,
        Opcode::Strb,
        Opcode::Strh,
        Opcode::B,
        Opcode::Bl,
        Opcode::Bx,
        Opcode::Vadd,
        Opcode::Vsub,
        Opcode::Vmul,
        Opcode::Vdiv,
        Opcode::Vcmp,
        Opcode::Vsqrt,
        Opcode::Cdp,
        Opcode::Nop,
    ];

    /// A stable small integer used by the bit-level encoders.
    pub fn code(self) -> u8 {
        match Opcode::ALL.iter().position(|&op| op == self) {
            Some(index) => index as u8,
            None => unreachable!("every opcode is in ALL"),
        }
    }

    /// Inverse of [`Opcode::code`].
    pub fn from_code(code: u8) -> Option<Opcode> {
        Opcode::ALL.get(usize::from(code)).copied()
    }

    /// The functional unit this opcode executes on.
    pub fn fu_kind(self) -> FuKind {
        use Opcode::*;
        match self {
            Add | Sub | Rsb | And | Orr | Eor | Bic | Mov | Mvn | Cmp | Cmn | Tst | Lsl | Lsr
            | Asr | Ror => FuKind::IntAlu,
            Mul | Mla | Smull => FuKind::IntMult,
            Sdiv | Udiv => FuKind::IntDiv,
            Ldr | Ldrb | Ldrh | Str | Strb | Strh => FuKind::Mem,
            B | Bl | Bx => FuKind::Branch,
            Vadd | Vsub | Vcmp => FuKind::FloatAdd,
            Vmul => FuKind::FloatMul,
            Vdiv | Vsqrt => FuKind::FloatDiv,
            Cdp | Nop => FuKind::None,
        }
    }

    /// Base execution latency in cycles, excluding memory-hierarchy time.
    ///
    /// Loads/stores report the Table I d-cache hit latency (2 cycles); the
    /// pipeline replaces it with the simulated hierarchy latency on a miss.
    pub fn exec_latency(self) -> u32 {
        match self.fu_kind() {
            FuKind::IntAlu => 1,
            FuKind::IntMult => 3,
            FuKind::IntDiv => 12,
            FuKind::Mem => 2,
            FuKind::Branch => 1,
            FuKind::FloatAdd => 4,
            FuKind::FloatMul => 5,
            FuKind::FloatDiv => 16,
            FuKind::None => 1,
        }
    }

    /// Coarse latency class of the *base* latency (see Fig. 3c).
    pub fn latency_class(self) -> LatencyClass {
        LatencyClass::of_cycles(self.exec_latency())
    }

    /// Whether this opcode reads memory.
    pub fn is_load(self) -> bool {
        matches!(self, Opcode::Ldr | Opcode::Ldrb | Opcode::Ldrh)
    }

    /// Whether this opcode writes memory.
    pub fn is_store(self) -> bool {
        matches!(self, Opcode::Str | Opcode::Strb | Opcode::Strh)
    }

    /// Whether this opcode accesses memory at all.
    pub fn is_mem(self) -> bool {
        self.is_load() || self.is_store()
    }

    /// Whether this opcode is a control-flow instruction.
    pub fn is_branch(self) -> bool {
        matches!(self, Opcode::B | Opcode::Bl | Opcode::Bx)
    }

    /// Whether this is a function call.
    pub fn is_call(self) -> bool {
        self == Opcode::Bl
    }

    /// Whether this opcode produces a general-purpose register result
    /// consumed through the dataflow graph (i.e. can have fan-out).
    pub fn writes_register(self) -> bool {
        use Opcode::*;
        !matches!(
            self,
            Cmp | Cmn | Tst | Vcmp | Str | Strb | Strh | B | Bx | Cdp | Nop
        )
    }

    /// Whether the opcode is the CDP decoder format switch.
    pub fn is_format_switch(self) -> bool {
        self == Opcode::Cdp
    }

    /// Whether this opcode is floating point.
    pub fn is_float(self) -> bool {
        matches!(
            self.fu_kind(),
            FuKind::FloatAdd | FuKind::FloatMul | FuKind::FloatDiv
        )
    }

    /// Whether a 16-bit Thumb encoding exists for this opcode at all.
    ///
    /// Thumb-1 has no divide, no multiply-accumulate, no long multiply, and
    /// no VFP encodings; CDP itself is a 16-bit half-word in the paper's
    /// Fig. 9 layout.
    pub fn has_thumb_form(self) -> bool {
        use Opcode::*;
        !matches!(
            self,
            Mla | Smull | Sdiv | Udiv | Vadd | Vsub | Vmul | Vdiv | Vcmp | Vsqrt | Bx
        )
    }

    /// The assembler mnemonic.
    pub fn mnemonic(self) -> &'static str {
        use Opcode::*;
        match self {
            Add => "add",
            Sub => "sub",
            Rsb => "rsb",
            And => "and",
            Orr => "orr",
            Eor => "eor",
            Bic => "bic",
            Mov => "mov",
            Mvn => "mvn",
            Cmp => "cmp",
            Cmn => "cmn",
            Tst => "tst",
            Lsl => "lsl",
            Lsr => "lsr",
            Asr => "asr",
            Ror => "ror",
            Mul => "mul",
            Mla => "mla",
            Smull => "smull",
            Sdiv => "sdiv",
            Udiv => "udiv",
            Ldr => "ldr",
            Ldrb => "ldrb",
            Ldrh => "ldrh",
            Str => "str",
            Strb => "strb",
            Strh => "strh",
            B => "b",
            Bl => "bl",
            Bx => "bx",
            Vadd => "vadd",
            Vsub => "vsub",
            Vmul => "vmul",
            Vdiv => "vdiv",
            Vcmp => "vcmp",
            Vsqrt => "vsqrt",
            Cdp => "cdp",
            Nop => "nop",
        }
    }
}

impl fmt::Display for Opcode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.mnemonic())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn codes_round_trip() {
        for op in Opcode::ALL {
            assert_eq!(Opcode::from_code(op.code()), Some(op));
        }
        assert_eq!(Opcode::from_code(Opcode::ALL.len() as u8), None);
    }

    #[test]
    fn loads_and_stores_are_disjoint() {
        for op in Opcode::ALL {
            assert!(
                !(op.is_load() && op.is_store()),
                "{op} is both load and store"
            );
        }
    }

    #[test]
    fn memory_ops_use_the_mem_unit() {
        for op in Opcode::ALL {
            if op.is_mem() {
                assert_eq!(op.fu_kind(), FuKind::Mem);
            }
        }
    }

    #[test]
    fn latency_classes_match_table_i_expectations() {
        assert_eq!(Opcode::Add.latency_class(), LatencyClass::Short);
        assert_eq!(Opcode::Ldr.latency_class(), LatencyClass::Short);
        assert_eq!(Opcode::Mul.latency_class(), LatencyClass::Medium);
        assert_eq!(Opcode::Sdiv.latency_class(), LatencyClass::Long);
        assert_eq!(Opcode::Vdiv.latency_class(), LatencyClass::Long);
    }

    #[test]
    fn thumb_form_excludes_div_and_float() {
        assert!(!Opcode::Sdiv.has_thumb_form());
        assert!(!Opcode::Vadd.has_thumb_form());
        assert!(Opcode::Add.has_thumb_form());
        assert!(Opcode::Ldr.has_thumb_form());
        assert!(Opcode::Cdp.has_thumb_form());
    }

    #[test]
    fn compare_and_store_ops_produce_no_register_value() {
        assert!(!Opcode::Cmp.writes_register());
        assert!(!Opcode::Str.writes_register());
        assert!(!Opcode::B.writes_register());
        assert!(Opcode::Add.writes_register());
        assert!(Opcode::Ldr.writes_register());
        // BL writes the link register.
        assert!(Opcode::Bl.writes_register());
    }

    #[test]
    fn every_opcode_has_a_unique_mnemonic() {
        let mut seen = std::collections::HashSet::new();
        for op in Opcode::ALL {
            assert!(
                seen.insert(op.mnemonic()),
                "duplicate mnemonic {}",
                op.mnemonic()
            );
        }
    }

    #[test]
    fn branch_latency_is_single_cycle() {
        assert_eq!(Opcode::B.exec_latency(), 1);
        assert_eq!(Opcode::Bl.exec_latency(), 1);
    }
}
