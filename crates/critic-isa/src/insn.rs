//! Static instructions: opcode + predication + operands + encoding width.

use std::fmt;

use serde::{Deserialize, Serialize};

use crate::cond::Cond;
use crate::op::Opcode;
use crate::reg::Reg;
use crate::thumb::{self, ThumbIncompatibility};

/// Encoding width of an instruction.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum Width {
    /// The classic 32-bit ARM format (Fig. 6a).
    Arm32,
    /// The concise 16-bit Thumb format (Fig. 6b).
    Thumb16,
}

impl Width {
    /// Bytes an instruction of this width occupies in the binary.
    pub fn bytes(self) -> u64 {
        match self {
            Width::Arm32 => 4,
            Width::Thumb16 => 2,
        }
    }
}

impl fmt::Display for Width {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Width::Arm32 => f.write_str("arm32"),
            Width::Thumb16 => f.write_str("thumb16"),
        }
    }
}

/// An inline list of up to three source registers.
///
/// Instructions never have more than three register sources in this model
/// (`mla rd, rn, rm, ra` is the three-source case).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
pub struct SrcRegs {
    regs: [Option<Reg>; 3],
}

impl SrcRegs {
    /// Builds the list from a slice.
    ///
    /// # Panics
    ///
    /// Panics if more than three registers are supplied.
    pub fn new(regs: &[Reg]) -> SrcRegs {
        assert!(
            regs.len() <= 3,
            "at most 3 source registers, got {}",
            regs.len()
        );
        let mut out = SrcRegs::default();
        for (slot, &reg) in out.regs.iter_mut().zip(regs) {
            *slot = Some(reg);
        }
        out
    }

    /// Number of sources present.
    pub fn len(&self) -> usize {
        self.regs.iter().filter(|r| r.is_some()).count()
    }

    /// Whether there are no sources.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Iterates over the sources in operand order.
    pub fn iter(&self) -> impl Iterator<Item = Reg> + '_ {
        self.regs.iter().flatten().copied()
    }

    /// The source at operand position `i`, if present.
    pub fn get(&self, i: usize) -> Option<Reg> {
        self.regs.get(i).copied().flatten()
    }
}

impl<'a> IntoIterator for &'a SrcRegs {
    type Item = Reg;
    type IntoIter = std::iter::Copied<std::iter::Flatten<std::slice::Iter<'a, Option<Reg>>>>;

    fn into_iter(self) -> Self::IntoIter {
        self.regs.iter().flatten().copied()
    }
}

/// A static instruction of the model ISA.
///
/// `Insn` is a value type: the compiler passes in `critic-compiler` clone and
/// rewrite instructions freely. The dynamic trace refers back into the static
/// program, so `Insn` stays compact (16 bytes of operands + enums).
///
/// # Example
///
/// ```
/// use critic_isa::{Cond, Insn, Opcode, Reg};
///
/// let insn = Insn::alu(Opcode::Add, Reg::R0, &[Reg::R1, Reg::R2]).with_cond(Cond::Eq);
/// assert_eq!(insn.to_string(), "addeq r0, r1, r2");
/// assert_eq!(insn.dst(), Some(Reg::R0));
/// assert!(insn.is_predicated());
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Insn {
    op: Opcode,
    cond: Cond,
    dst: Option<Reg>,
    srcs: SrcRegs,
    imm: Option<i32>,
    width: Width,
}

impl Insn {
    /// Builds a register-to-register ALU/multiply instruction.
    pub fn alu(op: Opcode, dst: Reg, srcs: &[Reg]) -> Insn {
        debug_assert!(op.writes_register(), "{op} does not produce a register");
        Insn {
            op,
            cond: Cond::Al,
            dst: Some(dst),
            srcs: SrcRegs::new(srcs),
            imm: None,
            width: Width::Arm32,
        }
    }

    /// Builds an ALU instruction with a register source and an immediate.
    pub fn alu_imm(op: Opcode, dst: Reg, src: Reg, imm: i32) -> Insn {
        Insn {
            op,
            cond: Cond::Al,
            dst: Some(dst),
            srcs: SrcRegs::new(&[src]),
            imm: Some(imm),
            width: Width::Arm32,
        }
    }

    /// Builds a `mov dst, #imm`.
    pub fn mov_imm(dst: Reg, imm: i32) -> Insn {
        Insn {
            op: Opcode::Mov,
            cond: Cond::Al,
            dst: Some(dst),
            srcs: SrcRegs::default(),
            imm: Some(imm),
            width: Width::Arm32,
        }
    }

    /// Builds a flag-setting compare (`cmp`/`cmn`/`tst`/`vcmp`).
    pub fn compare(op: Opcode, lhs: Reg, rhs: Reg) -> Insn {
        debug_assert!(!op.writes_register(), "{op} is not a compare");
        Insn {
            op,
            cond: Cond::Al,
            dst: None,
            srcs: SrcRegs::new(&[lhs, rhs]),
            imm: None,
            width: Width::Arm32,
        }
    }

    /// Builds a load `op dst, [base, #offset]`.
    pub fn load(op: Opcode, dst: Reg, base: Reg, offset: i32) -> Insn {
        debug_assert!(op.is_load(), "{op} is not a load");
        Insn {
            op,
            cond: Cond::Al,
            dst: Some(dst),
            srcs: SrcRegs::new(&[base]),
            imm: Some(offset),
            width: Width::Arm32,
        }
    }

    /// Builds a store `op value, [base, #offset]`.
    pub fn store(op: Opcode, value: Reg, base: Reg, offset: i32) -> Insn {
        debug_assert!(op.is_store(), "{op} is not a store");
        Insn {
            op,
            cond: Cond::Al,
            dst: None,
            srcs: SrcRegs::new(&[value, base]),
            imm: Some(offset),
            width: Width::Arm32,
        }
    }

    /// Builds a PC-relative branch (`b`/`bl`) with a signed word offset.
    pub fn branch(op: Opcode, offset: i32) -> Insn {
        debug_assert!(op.is_branch(), "{op} is not a branch");
        let dst = if op.is_call() { Some(Reg::LR) } else { None };
        Insn {
            op,
            cond: Cond::Al,
            dst,
            srcs: SrcRegs::default(),
            imm: Some(offset),
            width: Width::Arm32,
        }
    }

    /// Builds an indirect branch through a register (`bx`).
    pub fn branch_reg(target: Reg) -> Insn {
        Insn {
            op: Opcode::Bx,
            cond: Cond::Al,
            dst: None,
            srcs: SrcRegs::new(&[target]),
            imm: None,
            width: Width::Arm32,
        }
    }

    /// Builds the CDP format-switch pseudo-instruction (paper Sec. IV-B).
    ///
    /// `following` is the number of 16-bit instructions that follow the CDP
    /// half-word, i.e. the paper's `l + 1` with the 3-bit `l` argument.
    ///
    /// # Panics
    ///
    /// Panics if `following` is zero or exceeds
    /// [`thumb::MAX_CDP_CHAIN_LEN`] (9).
    pub fn cdp(following: u8) -> Insn {
        assert!(
            (1..=thumb::MAX_CDP_CHAIN_LEN).contains(&usize::from(following)),
            "a CDP covers 1..={} following instructions, got {following}",
            thumb::MAX_CDP_CHAIN_LEN
        );
        Insn {
            op: Opcode::Cdp,
            cond: Cond::Al,
            dst: None,
            srcs: SrcRegs::default(),
            imm: Some(i32::from(following)),
            width: Width::Thumb16,
        }
    }

    /// Builds a CDP format switch *without* the cover-count check.
    ///
    /// Exists for the fault-injection harness and decoder tests, which need
    /// to represent malformed switches a buggy toolchain could emit;
    /// [`crate::encode::encode`] and `Program::validate` reject such
    /// instructions with typed errors instead of panicking. All real
    /// compiler passes go through [`Insn::cdp`].
    pub fn cdp_raw(following: u8) -> Insn {
        Insn {
            op: Opcode::Cdp,
            cond: Cond::Al,
            dst: None,
            srcs: SrcRegs::default(),
            imm: Some(i32::from(following)),
            width: Width::Thumb16,
        }
    }

    /// Builds a `nop`.
    pub fn nop() -> Insn {
        Insn {
            op: Opcode::Nop,
            cond: Cond::Al,
            dst: None,
            srcs: SrcRegs::default(),
            imm: None,
            width: Width::Arm32,
        }
    }

    /// Returns the same instruction under a condition code.
    #[must_use]
    pub fn with_cond(mut self, cond: Cond) -> Insn {
        self.cond = cond;
        self
    }

    /// Returns the same instruction with the given encoding width.
    ///
    /// Prefer [`Insn::to_thumb`] which validates convertibility.
    #[must_use]
    pub fn with_width(mut self, width: Width) -> Insn {
        self.width = width;
        self
    }

    /// The opcode.
    pub fn op(&self) -> Opcode {
        self.op
    }

    /// The condition code.
    pub fn cond(&self) -> Cond {
        self.cond
    }

    /// The destination register, if any (calls report the link register).
    pub fn dst(&self) -> Option<Reg> {
        self.dst
    }

    /// The source registers in operand order.
    pub fn srcs(&self) -> &SrcRegs {
        &self.srcs
    }

    /// The immediate operand, if any. For CDP this is the covered length.
    pub fn imm(&self) -> Option<i32> {
        self.imm
    }

    /// The encoding width.
    pub fn width(&self) -> Width {
        self.width
    }

    /// Bytes this instruction occupies in the fetch stream.
    pub fn fetch_bytes(&self) -> u64 {
        self.width.bytes()
    }

    /// Whether the instruction carries a non-`AL` condition.
    pub fn is_predicated(&self) -> bool {
        !self.cond.is_always()
    }

    /// For a CDP switch, the number of following 16-bit instructions.
    pub fn cdp_covered_len(&self) -> Option<usize> {
        if self.op.is_format_switch() {
            self.imm.map(|l| l as usize)
        } else {
            None
        }
    }

    /// Checks whether the instruction can be re-encoded in the 16-bit Thumb
    /// format *without any change* — the paper's conversion predicate.
    ///
    /// # Errors
    ///
    /// Returns the first [`ThumbIncompatibility`] found: predication, an
    /// opcode without a Thumb form, a register outside the Thumb-addressable
    /// set, or an immediate too wide for the narrow fields.
    pub fn thumb_convertible(&self) -> Result<(), ThumbIncompatibility> {
        thumb::check_convertible(self)
    }

    /// Re-encodes the instruction in 16-bit Thumb format.
    ///
    /// # Errors
    ///
    /// See [`Insn::thumb_convertible`].
    pub fn to_thumb(&self) -> Result<Insn, ThumbIncompatibility> {
        self.thumb_convertible()?;
        Ok(self.with_width(Width::Thumb16))
    }

    /// Re-encodes the instruction in the 32-bit ARM format.
    ///
    /// Always succeeds: every Thumb instruction has a 32-bit equivalent.
    /// The CDP switch has no 32-bit meaning and is returned unchanged.
    #[must_use]
    pub fn to_arm32(&self) -> Insn {
        if self.op.is_format_switch() {
            *self
        } else {
            self.with_width(Width::Arm32)
        }
    }

    /// Iterates over every register the instruction reads.
    pub fn reads(&self) -> impl Iterator<Item = Reg> + '_ {
        self.srcs.iter()
    }

    /// Iterates over every register the instruction writes.
    pub fn writes(&self) -> impl Iterator<Item = Reg> + '_ {
        self.dst.into_iter()
    }
}

/// Incremental builder for unusual instruction shapes.
///
/// The named constructors on [`Insn`] cover the common cases; the builder is
/// for generators that assemble operands piecewise.
///
/// ```
/// use critic_isa::{Insn, InsnBuilder, Opcode, Reg};
///
/// let insn = InsnBuilder::new(Opcode::Mla)
///     .dst(Reg::R0)
///     .src(Reg::R1)
///     .src(Reg::R2)
///     .src(Reg::R3)
///     .build();
/// assert_eq!(insn.srcs().len(), 3);
/// ```
#[derive(Debug, Clone)]
pub struct InsnBuilder {
    op: Opcode,
    cond: Cond,
    dst: Option<Reg>,
    srcs: Vec<Reg>,
    imm: Option<i32>,
    width: Width,
}

impl InsnBuilder {
    /// Starts building an instruction with the given opcode.
    pub fn new(op: Opcode) -> InsnBuilder {
        InsnBuilder {
            op,
            cond: Cond::Al,
            dst: None,
            srcs: Vec::new(),
            imm: None,
            width: Width::Arm32,
        }
    }

    /// Sets the condition code.
    pub fn cond(mut self, cond: Cond) -> InsnBuilder {
        self.cond = cond;
        self
    }

    /// Sets the destination register.
    pub fn dst(mut self, reg: Reg) -> InsnBuilder {
        self.dst = Some(reg);
        self
    }

    /// Appends a source register.
    ///
    /// Accumulating more than three sources makes [`InsnBuilder::build`]
    /// panic; use [`InsnBuilder::try_build`] when the operand list comes
    /// from untrusted input.
    pub fn src(mut self, reg: Reg) -> InsnBuilder {
        self.srcs.push(reg);
        self
    }

    /// Sets the immediate operand.
    pub fn imm(mut self, imm: i32) -> InsnBuilder {
        self.imm = Some(imm);
        self
    }

    /// Sets the encoding width.
    pub fn width(mut self, width: Width) -> InsnBuilder {
        self.width = width;
        self
    }

    /// Finishes the instruction.
    ///
    /// # Panics
    ///
    /// Panics if more than three source registers were added. Compiler
    /// passes construct operand lists themselves, so for them this is a
    /// programmer-error contract; anything building from external text or
    /// bytes must use [`InsnBuilder::try_build`] instead.
    pub fn build(self) -> Insn {
        match self.try_build() {
            Ok(insn) => insn,
            Err(e) => panic!("{e}"),
        }
    }

    /// Finishes the instruction, rejecting operand lists the ISA cannot
    /// represent instead of panicking.
    ///
    /// # Errors
    ///
    /// Returns [`TooManySources`] when more than three source registers
    /// were accumulated.
    pub fn try_build(self) -> Result<Insn, TooManySources> {
        if self.srcs.len() > 3 {
            return Err(TooManySources {
                got: self.srcs.len(),
            });
        }
        Ok(Insn {
            op: self.op,
            cond: self.cond,
            dst: self.dst,
            srcs: SrcRegs::new(&self.srcs),
            imm: self.imm,
            width: self.width,
        })
    }
}

/// Error from [`InsnBuilder::try_build`]: the operand list exceeds the
/// ISA's three-source limit (`mla rd, rn, rm, ra` is the widest form).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TooManySources {
    /// How many sources were supplied.
    pub got: usize,
}

impl fmt::Display for TooManySources {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "at most 3 source registers, got {}", self.got)
    }
}

impl std::error::Error for TooManySources {}

impl fmt::Display for Insn {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}{}", self.op, self.cond)?;
        if self.op.is_format_switch() {
            return write!(f, " #{}", self.imm.unwrap_or(0));
        }
        let mut wrote_operand = false;
        let sep = |f: &mut fmt::Formatter<'_>, wrote: &mut bool| -> fmt::Result {
            if *wrote {
                write!(f, ",")?;
            }
            *wrote = true;
            write!(f, " ")
        };
        if self.op.is_mem() {
            // ldr rd, [rb, #off]  /  str rv, [rb, #off]
            if let Some(dst) = self.dst {
                sep(f, &mut wrote_operand)?;
                write!(f, "{dst}")?;
            }
            if self.op.is_store() {
                if let Some(value) = self.srcs.get(0) {
                    sep(f, &mut wrote_operand)?;
                    write!(f, "{value}")?;
                }
            }
            let base_slot = if self.op.is_store() { 1 } else { 0 };
            if let Some(base) = self.srcs.get(base_slot) {
                sep(f, &mut wrote_operand)?;
                write!(f, "[{base}, #{}]", self.imm.unwrap_or(0))?;
            }
            return Ok(());
        }
        // Calls define the link register implicitly; conventional assembly
        // does not list it.
        if let Some(dst) = self.dst.filter(|_| !self.op.is_branch()) {
            sep(f, &mut wrote_operand)?;
            write!(f, "{dst}")?;
        }
        for src in self.srcs.iter() {
            sep(f, &mut wrote_operand)?;
            write!(f, "{src}")?;
        }
        if let Some(imm) = self.imm {
            sep(f, &mut wrote_operand)?;
            write!(f, "#{imm}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alu_constructor_shape() {
        let insn = Insn::alu(Opcode::Add, Reg::R0, &[Reg::R1, Reg::R2]);
        assert_eq!(insn.dst(), Some(Reg::R0));
        assert_eq!(insn.srcs().len(), 2);
        assert_eq!(insn.width(), Width::Arm32);
        assert_eq!(insn.fetch_bytes(), 4);
        assert!(!insn.is_predicated());
    }

    #[test]
    fn call_defines_link_register() {
        let call = Insn::branch(Opcode::Bl, 128);
        assert_eq!(call.dst(), Some(Reg::LR));
        let jump = Insn::branch(Opcode::B, -4);
        assert_eq!(jump.dst(), None);
    }

    #[test]
    fn store_reads_value_and_base() {
        let st = Insn::store(Opcode::Str, Reg::R1, Reg::R2, 8);
        let reads: Vec<Reg> = st.reads().collect();
        assert_eq!(reads, vec![Reg::R1, Reg::R2]);
        assert_eq!(st.dst(), None);
    }

    #[test]
    fn cdp_round_trips_length() {
        let cdp = Insn::cdp(5);
        assert_eq!(cdp.cdp_covered_len(), Some(5));
        assert_eq!(cdp.fetch_bytes(), 2);
        assert!(cdp.op().is_format_switch());
    }

    #[test]
    #[should_panic(expected = "CDP covers")]
    fn cdp_rejects_overlong_cover() {
        let _ = Insn::cdp(10);
    }

    #[test]
    fn thumb_round_trip_preserves_semantics() {
        let insn = Insn::alu_imm(Opcode::Sub, Reg::R3, Reg::R3, 1);
        let thumbed = insn.to_thumb().expect("low regs, small imm");
        assert_eq!(thumbed.fetch_bytes(), 2);
        let back = thumbed.to_arm32();
        assert_eq!(back, insn);
    }

    #[test]
    fn predicated_instruction_cannot_thumb() {
        let insn = Insn::alu(Opcode::Add, Reg::R0, &[Reg::R1]).with_cond(Cond::Eq);
        assert!(insn.to_thumb().is_err());
    }

    #[test]
    fn display_formats_like_arm_assembly() {
        assert_eq!(
            Insn::alu(Opcode::Add, Reg::R0, &[Reg::R1, Reg::R2]).to_string(),
            "add r0, r1, r2"
        );
        assert_eq!(
            Insn::load(Opcode::Ldr, Reg::R0, Reg::SP, 4).to_string(),
            "ldr r0, [sp, #4]"
        );
        assert_eq!(
            Insn::store(Opcode::Str, Reg::R1, Reg::R2, 0).to_string(),
            "str r1, [r2, #0]"
        );
        assert_eq!(Insn::branch(Opcode::B, 16).to_string(), "b #16");
        assert_eq!(Insn::mov_imm(Reg::R5, 42).to_string(), "mov r5, #42");
        assert_eq!(Insn::cdp(3).to_string(), "cdp #3");
        assert_eq!(
            Insn::alu(Opcode::Add, Reg::R0, &[Reg::R1])
                .with_cond(Cond::Ne)
                .to_string(),
            "addne r0, r1"
        );
    }

    #[test]
    fn builder_matches_constructor() {
        let a = InsnBuilder::new(Opcode::Add)
            .dst(Reg::R0)
            .src(Reg::R1)
            .src(Reg::R2)
            .build();
        let b = Insn::alu(Opcode::Add, Reg::R0, &[Reg::R1, Reg::R2]);
        assert_eq!(a, b);
    }

    #[test]
    #[should_panic(expected = "at most 3")]
    fn builder_rejects_four_sources() {
        let _ = InsnBuilder::new(Opcode::Add)
            .dst(Reg::R0)
            .src(Reg::R1)
            .src(Reg::R2)
            .src(Reg::R3)
            .src(Reg::R4)
            .build();
    }

    #[test]
    fn src_regs_indexing() {
        let srcs = SrcRegs::new(&[Reg::R7, Reg::R8]);
        assert_eq!(srcs.get(0), Some(Reg::R7));
        assert_eq!(srcs.get(1), Some(Reg::R8));
        assert_eq!(srcs.get(2), None);
        assert!(!srcs.is_empty());
        assert!(SrcRegs::default().is_empty());
    }
}
