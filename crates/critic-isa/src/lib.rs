//! ARM-like instruction-set model for the CritICs reproduction.
//!
//! The CritICs optimization (MICRO 2018) rewrites *Critical Instruction
//! Chains* into ARM's 16-bit Thumb format to nearly double their fetch
//! bandwidth. Faithfully reproducing that requires an ISA model that knows
//!
//! * the **32-bit ARM format** (Fig. 6a of the paper): 12–20 opcode bits and
//!   three 4-bit register operands, with 4-bit predication (condition codes);
//! * the **16-bit Thumb format** (Fig. 6b): 6 opcode bits, 3–4 bit operands,
//!   no predication, and access to only the first 11 architected registers;
//! * the **convertibility rule** the paper's compiler pass applies: an
//!   instruction is representable in 16 bits only if it is unpredicated, all
//!   of its registers are `r0`–`r10`, and its immediate fits the narrow
//!   field — and a chain is converted *all or nothing*;
//! * the **CDP format-switch pseudo-instruction** (Fig. 6d): a co-processor
//!   data-processing mnemonic whose 3-bit argument tells the decoder that the
//!   next `l + 1` instructions are 16-bit, covering chains of up to 9
//!   instructions per CDP.
//!
//! # Example
//!
//! ```
//! use critic_isa::{Insn, Opcode, Reg, Width};
//!
//! let add = Insn::alu(Opcode::Add, Reg::R1, &[Reg::R2, Reg::R3]);
//! assert_eq!(add.width(), Width::Arm32);
//! assert!(add.thumb_convertible().is_ok());
//!
//! let thumbed = add.to_thumb().expect("r1..r3 are low registers");
//! assert_eq!(thumbed.fetch_bytes(), 2);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![cfg_attr(not(test), warn(clippy::unwrap_used, clippy::expect_used))]

pub mod asm;
pub mod cond;
pub mod encode;
pub mod insn;
pub mod interp;
pub mod op;
pub mod reg;
pub mod thumb;

pub use asm::{parse_insn, parse_listing, AsmError};
pub use cond::Cond;
pub use encode::{decode_arm32, decode_thumb16, encode, DecodeError, EncodeError, Encoded};
pub use insn::{Insn, InsnBuilder, TooManySources, Width};
pub use interp::{
    seeded_input, Flags, MachineState, MemWrite, SparseMem, StepEffect, StepError, StepIo,
};
pub use op::{FuKind, LatencyClass, Opcode};
pub use reg::Reg;
pub use thumb::{ThumbIncompatibility, MAX_CDP_CHAIN_LEN, THUMB_REG_LIMIT};
