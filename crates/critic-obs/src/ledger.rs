//! The cycle-accounting ledger: every simulated cycle lands in exactly one
//! bucket.
//!
//! # Attribution order
//!
//! The simulator classifies each cycle at a single decision point, in this
//! priority order (first match wins):
//!
//! 1. **F.StallForI** ([`CycleClass::FetchStallICache`],
//!    [`CycleClass::FetchStallBranch`]) — fetch is supply-stalled: an
//!    i-cache miss is in flight, a mispredicted branch is unresolved, or a
//!    redirect/taken-branch bubble is draining. When a supply stall and
//!    back-pressure co-occur (the miss window overlaps a full fetch
//!    buffer), the cycle is charged to the *supply* stall: it is the
//!    upstream cause, and the paper's Fig. 3b counts it under F.StallForI.
//! 2. **F.StallForR+D** ([`CycleClass::FetchStallBackpressure`]) — fetch
//!    was able to attempt supply but the fetch buffer was full and decode
//!    moved nothing, so the only limiter was downstream back-pressure.
//! 3. **Backend classes** — fetch was not stalled (or the trace is fully
//!    fetched); the cycle is charged to what the backend retired or was
//!    blocked on: [`CycleClass::Commit`] when instructions committed,
//!    [`CycleClass::Mem`]/[`CycleClass::Execute`] when the ROB head was
//!    executing a memory/non-memory op, [`CycleClass::Issue`] when the ROB
//!    head was dispatched but not yet issued, [`CycleClass::Decode`] when
//!    instructions were only in the front-end queues, and
//!    [`CycleClass::SquashIdle`] for anything else (drained windows).
//!
//! The invariant `sum(buckets) == total cycles` is enforced by a
//! `debug_assert` in the simulator and by the property/figures test suites.

use serde::{Deserialize, Serialize};

/// The exhaustive classification of one simulated cycle.
///
/// See the [module docs](self) for the attribution priority when several
/// conditions co-occur.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum CycleClass {
    /// Fetch supply-stalled on an i-cache miss (F.StallForI, i-cache).
    FetchStallICache,
    /// Fetch supply-stalled on branch redirect or misprediction recovery
    /// (F.StallForI, branch).
    FetchStallBranch,
    /// Fetch blocked by a full fetch buffer with decode making no progress
    /// (F.StallForR+D).
    FetchStallBackpressure,
    /// Front-end progress only: instructions in the fetch/decode queues,
    /// nothing committed or executing at the ROB head.
    Decode,
    /// The ROB head is dispatched but waiting to issue (operands/ports).
    Issue,
    /// The ROB head is executing a non-memory operation.
    Execute,
    /// The ROB head is executing a memory operation.
    Mem,
    /// At least one instruction committed this cycle.
    Commit,
    /// Nothing in flight made attributable progress (pipeline-drain and
    /// squash windows).
    SquashIdle,
}

impl CycleClass {
    /// Every class, in attribution-priority order.
    pub const ALL: [CycleClass; 9] = [
        CycleClass::FetchStallICache,
        CycleClass::FetchStallBranch,
        CycleClass::FetchStallBackpressure,
        CycleClass::Decode,
        CycleClass::Issue,
        CycleClass::Execute,
        CycleClass::Mem,
        CycleClass::Commit,
        CycleClass::SquashIdle,
    ];

    /// Short human-readable label (stats tables, figures).
    pub fn label(self) -> &'static str {
        match self {
            CycleClass::FetchStallICache => "fetch-stall-I(icache)",
            CycleClass::FetchStallBranch => "fetch-stall-I(branch)",
            CycleClass::FetchStallBackpressure => "fetch-stall-R+D",
            CycleClass::Decode => "decode",
            CycleClass::Issue => "issue",
            CycleClass::Execute => "execute",
            CycleClass::Mem => "mem",
            CycleClass::Commit => "commit",
            CycleClass::SquashIdle => "squash/idle",
        }
    }
}

/// Per-class cycle counts for one simulation run.
///
/// [`CycleLedger::charge`] is the only mutation path and takes exactly one
/// [`CycleClass`], so a cycle cannot be double-counted by construction;
/// [`CycleLedger::total`] must equal the run's total cycles.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct CycleLedger {
    /// Cycles charged to [`CycleClass::FetchStallICache`].
    pub fetch_stall_icache: u64,
    /// Cycles charged to [`CycleClass::FetchStallBranch`].
    pub fetch_stall_branch: u64,
    /// Cycles charged to [`CycleClass::FetchStallBackpressure`].
    pub fetch_stall_backpressure: u64,
    /// Cycles charged to [`CycleClass::Decode`].
    pub decode: u64,
    /// Cycles charged to [`CycleClass::Issue`].
    pub issue: u64,
    /// Cycles charged to [`CycleClass::Execute`].
    pub execute: u64,
    /// Cycles charged to [`CycleClass::Mem`].
    pub mem: u64,
    /// Cycles charged to [`CycleClass::Commit`].
    pub commit: u64,
    /// Cycles charged to [`CycleClass::SquashIdle`].
    pub squash_idle: u64,
}

impl CycleLedger {
    /// An empty ledger.
    pub fn new() -> CycleLedger {
        CycleLedger::default()
    }

    /// Charges one cycle to `class`. The single mutation path: callers
    /// classify each cycle once, so buckets partition the run.
    #[inline]
    pub fn charge(&mut self, class: CycleClass) {
        *self.bucket_mut(class) += 1;
    }

    /// Charges `n` cycles to `class` at once — the bulk entry point for
    /// the simulator's idle-window skip, where a contiguous run of cycles
    /// provably shares one classification. Partition semantics are
    /// unchanged: each of the `n` cycles is still counted exactly once.
    #[inline]
    pub fn charge_many(&mut self, class: CycleClass, n: u64) {
        *self.bucket_mut(class) += n;
    }

    fn bucket_mut(&mut self, class: CycleClass) -> &mut u64 {
        match class {
            CycleClass::FetchStallICache => &mut self.fetch_stall_icache,
            CycleClass::FetchStallBranch => &mut self.fetch_stall_branch,
            CycleClass::FetchStallBackpressure => &mut self.fetch_stall_backpressure,
            CycleClass::Decode => &mut self.decode,
            CycleClass::Issue => &mut self.issue,
            CycleClass::Execute => &mut self.execute,
            CycleClass::Mem => &mut self.mem,
            CycleClass::Commit => &mut self.commit,
            CycleClass::SquashIdle => &mut self.squash_idle,
        }
    }

    /// The count in one bucket.
    pub fn bucket(&self, class: CycleClass) -> u64 {
        match class {
            CycleClass::FetchStallICache => self.fetch_stall_icache,
            CycleClass::FetchStallBranch => self.fetch_stall_branch,
            CycleClass::FetchStallBackpressure => self.fetch_stall_backpressure,
            CycleClass::Decode => self.decode,
            CycleClass::Issue => self.issue,
            CycleClass::Execute => self.execute,
            CycleClass::Mem => self.mem,
            CycleClass::Commit => self.commit,
            CycleClass::SquashIdle => self.squash_idle,
        }
    }

    /// Sum of every bucket; the ledger invariant is
    /// `total() == SimResult::cycles` for the run that produced it.
    pub fn total(&self) -> u64 {
        CycleClass::ALL.iter().map(|&c| self.bucket(c)).sum()
    }

    /// Total F.StallForI cycles (i-cache + branch supply stalls).
    pub fn stall_for_i(&self) -> u64 {
        self.fetch_stall_icache + self.fetch_stall_branch
    }

    /// Total F.StallForR+D cycles (fetch-buffer back-pressure).
    pub fn stall_for_rd(&self) -> u64 {
        self.fetch_stall_backpressure
    }

    /// Checks the partition invariant against the run's cycle count.
    ///
    /// # Errors
    ///
    /// Returns a human-readable description of the mismatch when the
    /// bucket sum differs from `cycles`.
    pub fn check(&self, cycles: u64) -> Result<(), String> {
        let total = self.total();
        if total == cycles {
            Ok(())
        } else {
            Err(format!(
                "ledger invariant violated: buckets sum to {total} but the run took \
                 {cycles} cycles ({self:?})"
            ))
        }
    }
}

/// Per-level memory-hierarchy demand counters, surfaced alongside the
/// ledger so stats consumers see cycle attribution and its memory causes
/// from one audited snapshot. Built by `MemStats::level_counters()` in
/// `critic-mem`.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct MemLevelCounters {
    /// L1 instruction-cache demand accesses.
    pub l1i_accesses: u64,
    /// L1 instruction-cache demand misses.
    pub l1i_misses: u64,
    /// L1 data-cache demand accesses.
    pub l1d_accesses: u64,
    /// L1 data-cache demand misses.
    pub l1d_misses: u64,
    /// Shared-L2 demand accesses.
    pub l2_accesses: u64,
    /// Shared-L2 demand misses.
    pub l2_misses: u64,
    /// DRAM accesses.
    pub dram_accesses: u64,
}

impl MemLevelCounters {
    /// Miss ratio of one (accesses, misses) pair, 0 when idle.
    pub fn ratio(accesses: u64, misses: u64) -> f64 {
        if accesses == 0 {
            0.0
        } else {
            misses as f64 / accesses as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn charge_partitions_exactly() {
        let mut ledger = CycleLedger::new();
        for (i, &class) in CycleClass::ALL.iter().enumerate() {
            for _ in 0..=i {
                ledger.charge(class);
            }
        }
        // 1 + 2 + ... + 9 charges in total.
        assert_eq!(ledger.total(), 45);
        for (i, &class) in CycleClass::ALL.iter().enumerate() {
            assert_eq!(ledger.bucket(class), i as u64 + 1, "{}", class.label());
        }
        assert!(ledger.check(45).is_ok());
        let err = ledger.check(44).expect_err("mismatch must be reported");
        assert!(err.contains("45") && err.contains("44"), "{err}");
    }

    #[test]
    fn stall_rollups_match_the_paper_taxonomy() {
        let ledger = CycleLedger {
            fetch_stall_icache: 10,
            fetch_stall_branch: 5,
            fetch_stall_backpressure: 7,
            commit: 78,
            ..Default::default()
        };
        assert_eq!(ledger.stall_for_i(), 15);
        assert_eq!(ledger.stall_for_rd(), 7);
        assert_eq!(ledger.total(), 100);
    }

    #[test]
    fn labels_are_distinct() {
        let labels: std::collections::HashSet<&str> =
            CycleClass::ALL.iter().map(|c| c.label()).collect();
        assert_eq!(labels.len(), CycleClass::ALL.len());
    }

    #[test]
    fn mem_ratio_handles_idle_levels() {
        assert_eq!(MemLevelCounters::ratio(0, 0), 0.0);
        assert!((MemLevelCounters::ratio(10, 3) - 0.3).abs() < 1e-12);
    }
}
