//! Span-based campaign telemetry: timed pipeline stages and structured
//! event counts, behind a zero-cost-when-disabled handle.
//!
//! The design is a sink with a no-op default: [`Telemetry`] wraps an
//! `Option<Arc<Recorder>>`. Disabled (the default) every call is a branch
//! on `None` — [`Telemetry::time`] runs its closure without touching the
//! clock, so instrumented hot paths (the PR-3 warm campaign) are
//! unperturbed. Enabled, spans and events accumulate into relaxed atomics
//! and snapshot into the serializable [`TelemetrySnapshot`] that campaign
//! journals and `critic stats` consume.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

use serde::{Deserialize, Serialize};

/// The timed stages of one campaign cell.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum SpanKind {
    /// World generation: program + path + trace + fanout.
    WorldBuild,
    /// Profiler runs (chain selection).
    Profile,
    /// Compiler passes building a scheme variant.
    Passes,
    /// Translation validation (oracle capture, replay, demotion loop).
    Validate,
    /// Pipeline simulation.
    Sim,
    /// One service request, admission to final response (`critic serve`).
    Request,
}

impl SpanKind {
    /// Every span kind, in pipeline order.
    pub const ALL: [SpanKind; 6] = [
        SpanKind::WorldBuild,
        SpanKind::Profile,
        SpanKind::Passes,
        SpanKind::Validate,
        SpanKind::Sim,
        SpanKind::Request,
    ];

    /// Short human-readable label (stats tables).
    pub fn label(self) -> &'static str {
        match self {
            SpanKind::WorldBuild => "world-build",
            SpanKind::Profile => "profile",
            SpanKind::Passes => "passes",
            SpanKind::Validate => "validate",
            SpanKind::Sim => "sim",
            SpanKind::Request => "request",
        }
    }

    fn index(self) -> usize {
        match self {
            SpanKind::WorldBuild => 0,
            SpanKind::Profile => 1,
            SpanKind::Passes => 2,
            SpanKind::Validate => 3,
            SpanKind::Sim => 4,
            SpanKind::Request => 5,
        }
    }
}

/// Counted campaign events.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum EventKind {
    /// A planned fault was injected into a cell.
    Fault,
    /// A cell attempt failed and was retried.
    Retry,
    /// The validation oracle demoted a miscompiled chain.
    Demotion,
    /// A systemic fault (journal/store/alloc/stall/kill) fired.
    SysFault,
    /// The supervisor degraded a cell one ladder step before retrying.
    Degrade,
    /// A circuit breaker tripped (once per breaker key).
    Trip,
    /// A cell was shed — by an open breaker or a draining shutdown —
    /// instead of run.
    Shed,
    /// A disk-store entry was evicted by the LRU byte-budget policy.
    Evict,
    /// A corrupt or torn disk-store entry was quarantined (renamed aside
    /// and rebuilt) instead of crashing the campaign.
    Quarantine,
    /// A journal checkpoint record was written at a segment roll.
    Checkpoint,
    /// A torn journal tail line was detected by its checksum and
    /// truncated during resume.
    TornRecovery,
    /// A service request passed admission control and was queued.
    Admit,
    /// A service request was rejected by admission control (token bucket,
    /// client window, or queue capacity) with a `retry_after` hint.
    Reject,
    /// An open circuit breaker let one half-open probe cell through.
    Probe,
    /// A half-open probe succeeded and closed its circuit breaker.
    Reset,
}

impl EventKind {
    /// Every event kind.
    pub const ALL: [EventKind; 15] = [
        EventKind::Fault,
        EventKind::Retry,
        EventKind::Demotion,
        EventKind::SysFault,
        EventKind::Degrade,
        EventKind::Trip,
        EventKind::Shed,
        EventKind::Evict,
        EventKind::Quarantine,
        EventKind::Checkpoint,
        EventKind::TornRecovery,
        EventKind::Admit,
        EventKind::Reject,
        EventKind::Probe,
        EventKind::Reset,
    ];

    /// Short human-readable label (stats tables).
    pub fn label(self) -> &'static str {
        match self {
            EventKind::Fault => "faults",
            EventKind::Retry => "retries",
            EventKind::Demotion => "demotions",
            EventKind::SysFault => "sys-faults",
            EventKind::Degrade => "degrades",
            EventKind::Trip => "trips",
            EventKind::Shed => "sheds",
            EventKind::Evict => "evictions",
            EventKind::Quarantine => "quarantines",
            EventKind::Checkpoint => "checkpoints",
            EventKind::TornRecovery => "torn-recoveries",
            EventKind::Admit => "admits",
            EventKind::Reject => "rejects",
            EventKind::Probe => "probes",
            EventKind::Reset => "resets",
        }
    }

    fn index(self) -> usize {
        match self {
            EventKind::Fault => 0,
            EventKind::Retry => 1,
            EventKind::Demotion => 2,
            EventKind::SysFault => 3,
            EventKind::Degrade => 4,
            EventKind::Trip => 5,
            EventKind::Shed => 6,
            EventKind::Evict => 7,
            EventKind::Quarantine => 8,
            EventKind::Checkpoint => 9,
            EventKind::TornRecovery => 10,
            EventKind::Admit => 11,
            EventKind::Reject => 12,
            EventKind::Probe => 13,
            EventKind::Reset => 14,
        }
    }
}

/// Supervision-layer event counts — the PR-5 additions to
/// [`TelemetrySnapshot`], grouped in one optional struct so journals
/// written before the supervision layer existed (no `supervision` key)
/// still deserialize (`None`) instead of rejecting the whole line.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct SupervisionEvents {
    /// Systemic faults fired (journal/store/alloc/stall/kill).
    pub sys_faults: u64,
    /// Degradation-ladder steps taken before retries.
    pub degrades: u64,
    /// Circuit-breaker trips.
    pub trips: u64,
    /// Cells shed by an open breaker or a draining shutdown.
    pub sheds: u64,
}

impl SupervisionEvents {
    fn absorb(&mut self, other: &SupervisionEvents) {
        self.sys_faults += other.sys_faults;
        self.degrades += other.degrades;
        self.trips += other.trips;
        self.sheds += other.sheds;
    }

    fn is_empty(&self) -> bool {
        *self == SupervisionEvents::default()
    }
}

/// Durability-layer event counts — the PR-6 additions to
/// [`TelemetrySnapshot`], grouped in one optional struct (the same
/// back-compat shape as [`SupervisionEvents`]) so journals written before
/// the persistent tier existed still deserialize (`None`).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct DurabilityEvents {
    /// Disk-store entries evicted by the LRU byte-budget policy.
    pub evictions: u64,
    /// Corrupt or torn disk-store entries quarantined and rebuilt.
    pub quarantines: u64,
    /// Journal checkpoint records written at segment rolls.
    pub checkpoints: u64,
    /// Torn journal tail lines truncated during resume.
    pub torn_recoveries: u64,
}

impl DurabilityEvents {
    fn absorb(&mut self, other: &DurabilityEvents) {
        self.evictions += other.evictions;
        self.quarantines += other.quarantines;
        self.checkpoints += other.checkpoints;
        self.torn_recoveries += other.torn_recoveries;
    }

    fn is_empty(&self) -> bool {
        *self == DurabilityEvents::default()
    }
}

/// Service-layer counters — the PR-7 additions to [`TelemetrySnapshot`]
/// behind `critic serve`, grouped in one optional struct (the same
/// back-compat shape as [`SupervisionEvents`]) so journals written before
/// the service existed still deserialize (`None`).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct ServiceEvents {
    /// Per-request spans: admission to final response.
    pub requests: SpanStats,
    /// Requests that passed admission control and were queued.
    pub admits: u64,
    /// Requests rejected by admission control (token bucket, client
    /// window, or queue capacity) with a `retry_after` hint.
    pub rejects: u64,
    /// Half-open breaker probe cells let through.
    pub probes: u64,
    /// Breakers closed again by a successful probe.
    pub resets: u64,
    /// Deepest work-pool queue observed (a high-water gauge, merged by
    /// max, not sum).
    pub peak_queue_depth: u64,
}

impl ServiceEvents {
    fn absorb(&mut self, other: &ServiceEvents) {
        self.requests.absorb(&other.requests);
        self.admits += other.admits;
        self.rejects += other.rejects;
        self.probes += other.probes;
        self.resets += other.resets;
        self.peak_queue_depth = self.peak_queue_depth.max(other.peak_queue_depth);
    }

    fn is_empty(&self) -> bool {
        *self == ServiceEvents::default()
    }
}

/// Aggregate of one span kind: how many times it ran and for how long.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct SpanStats {
    /// Spans recorded.
    pub count: u64,
    /// Summed wall-clock, nanoseconds.
    pub total_nanos: u64,
    /// Longest single span, nanoseconds.
    pub max_nanos: u64,
}

impl SpanStats {
    /// Mean span duration in milliseconds (0 when nothing was recorded).
    pub fn mean_millis(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.total_nanos as f64 / self.count as f64 / 1e6
        }
    }

    /// Summed wall-clock in milliseconds.
    pub fn total_millis(&self) -> f64 {
        self.total_nanos as f64 / 1e6
    }

    fn absorb(&mut self, other: &SpanStats) {
        self.count += other.count;
        self.total_nanos += other.total_nanos;
        self.max_nanos = self.max_nanos.max(other.max_nanos);
    }
}

/// The mutable accumulation point behind an enabled [`Telemetry`] handle.
///
/// All counters are relaxed atomics: spans from concurrent campaign
/// workers interleave without locks, and the snapshot is a plain read
/// (exact once the workers have joined, which is when campaigns read it).
#[derive(Debug, Default)]
pub struct Recorder {
    span_count: [AtomicU64; 6],
    span_total: [AtomicU64; 6],
    span_max: [AtomicU64; 6],
    events: [AtomicU64; 15],
    peak_queue_depth: AtomicU64,
}

impl Recorder {
    /// A zeroed recorder.
    pub fn new() -> Recorder {
        Recorder::default()
    }

    /// Records one completed span of `kind`.
    pub fn record_span(&self, kind: SpanKind, nanos: u64) {
        let i = kind.index();
        self.span_count[i].fetch_add(1, Ordering::Relaxed);
        self.span_total[i].fetch_add(nanos, Ordering::Relaxed);
        self.span_max[i].fetch_max(nanos, Ordering::Relaxed);
    }

    /// Counts `n` occurrences of `kind`.
    pub fn count_events(&self, kind: EventKind, n: u64) {
        self.events[kind.index()].fetch_add(n, Ordering::Relaxed);
    }

    /// Updates the queue-depth high-water mark (a `fetch_max` gauge).
    pub fn record_queue_depth(&self, depth: u64) {
        self.peak_queue_depth.fetch_max(depth, Ordering::Relaxed);
    }

    /// Reads every counter into a serializable snapshot.
    pub fn snapshot(&self) -> TelemetrySnapshot {
        let span = |kind: SpanKind| {
            let i = kind.index();
            SpanStats {
                count: self.span_count[i].load(Ordering::Relaxed),
                total_nanos: self.span_total[i].load(Ordering::Relaxed),
                max_nanos: self.span_max[i].load(Ordering::Relaxed),
            }
        };
        TelemetrySnapshot {
            world_build: span(SpanKind::WorldBuild),
            profile: span(SpanKind::Profile),
            passes: span(SpanKind::Passes),
            validate: span(SpanKind::Validate),
            sim: span(SpanKind::Sim),
            faults: self.events[EventKind::Fault.index()].load(Ordering::Relaxed),
            retries: self.events[EventKind::Retry.index()].load(Ordering::Relaxed),
            demotions: self.events[EventKind::Demotion.index()].load(Ordering::Relaxed),
            supervision: Some(SupervisionEvents {
                sys_faults: self.events[EventKind::SysFault.index()].load(Ordering::Relaxed),
                degrades: self.events[EventKind::Degrade.index()].load(Ordering::Relaxed),
                trips: self.events[EventKind::Trip.index()].load(Ordering::Relaxed),
                sheds: self.events[EventKind::Shed.index()].load(Ordering::Relaxed),
            }),
            durability: Some(DurabilityEvents {
                evictions: self.events[EventKind::Evict.index()].load(Ordering::Relaxed),
                quarantines: self.events[EventKind::Quarantine.index()].load(Ordering::Relaxed),
                checkpoints: self.events[EventKind::Checkpoint.index()].load(Ordering::Relaxed),
                torn_recoveries: self.events[EventKind::TornRecovery.index()]
                    .load(Ordering::Relaxed),
            }),
            service: Some(ServiceEvents {
                requests: span(SpanKind::Request),
                admits: self.events[EventKind::Admit.index()].load(Ordering::Relaxed),
                rejects: self.events[EventKind::Reject.index()].load(Ordering::Relaxed),
                probes: self.events[EventKind::Probe.index()].load(Ordering::Relaxed),
                resets: self.events[EventKind::Reset.index()].load(Ordering::Relaxed),
                peak_queue_depth: self.peak_queue_depth.load(Ordering::Relaxed),
            }),
        }
    }
}

/// A serializable point-in-time read of a [`Recorder`]: per-stage span
/// aggregates plus event counts. Journaled per campaign cell and as the
/// campaign-level trailer line; `critic stats` re-aggregates them.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct TelemetrySnapshot {
    /// World-generation spans.
    pub world_build: SpanStats,
    /// Profiler spans.
    pub profile: SpanStats,
    /// Compiler-pass spans.
    pub passes: SpanStats,
    /// Translation-validation spans.
    pub validate: SpanStats,
    /// Simulation spans.
    pub sim: SpanStats,
    /// Planned faults injected.
    pub faults: u64,
    /// Attempt retries consumed.
    pub retries: u64,
    /// Chains demoted by the validation oracle.
    pub demotions: u64,
    /// Supervision-layer event counts. `None` when the snapshot was read
    /// from a journal written before the supervision layer existed; use
    /// [`TelemetrySnapshot::supervision`] for a zero-defaulted view.
    pub supervision: Option<SupervisionEvents>,
    /// Durability-layer event counts. `None` when the snapshot was read
    /// from a journal written before the persistent tier existed; use
    /// [`TelemetrySnapshot::durability`] for a zero-defaulted view.
    pub durability: Option<DurabilityEvents>,
    /// Service-layer counters. `None` when the snapshot was read from a
    /// journal written before `critic serve` existed; use
    /// [`TelemetrySnapshot::service`] for a zero-defaulted view.
    pub service: Option<ServiceEvents>,
}

impl TelemetrySnapshot {
    /// The span aggregate for `kind`.
    pub fn span(&self, kind: SpanKind) -> SpanStats {
        match kind {
            SpanKind::WorldBuild => self.world_build,
            SpanKind::Profile => self.profile,
            SpanKind::Passes => self.passes,
            SpanKind::Validate => self.validate,
            SpanKind::Sim => self.sim,
            SpanKind::Request => self.service().requests,
        }
    }

    /// The event count for `kind`.
    pub fn events(&self, kind: EventKind) -> u64 {
        let supervision = self.supervision();
        let durability = self.durability();
        let service = self.service();
        match kind {
            EventKind::Fault => self.faults,
            EventKind::Retry => self.retries,
            EventKind::Demotion => self.demotions,
            EventKind::SysFault => supervision.sys_faults,
            EventKind::Degrade => supervision.degrades,
            EventKind::Trip => supervision.trips,
            EventKind::Shed => supervision.sheds,
            EventKind::Evict => durability.evictions,
            EventKind::Quarantine => durability.quarantines,
            EventKind::Checkpoint => durability.checkpoints,
            EventKind::TornRecovery => durability.torn_recoveries,
            EventKind::Admit => service.admits,
            EventKind::Reject => service.rejects,
            EventKind::Probe => service.probes,
            EventKind::Reset => service.resets,
        }
    }

    /// The supervision-event counts, zero-defaulted when the snapshot
    /// predates the supervision layer.
    pub fn supervision(&self) -> SupervisionEvents {
        self.supervision.unwrap_or_default()
    }

    /// The durability-event counts, zero-defaulted when the snapshot
    /// predates the persistent tier.
    pub fn durability(&self) -> DurabilityEvents {
        self.durability.unwrap_or_default()
    }

    /// The service-layer counters, zero-defaulted when the snapshot
    /// predates `critic serve`.
    pub fn service(&self) -> ServiceEvents {
        self.service.unwrap_or_default()
    }

    /// Whether anything at all was recorded.
    pub fn is_empty(&self) -> bool {
        SpanKind::ALL.iter().all(|&k| self.span(k).count == 0)
            && EventKind::ALL.iter().all(|&k| self.events(k) == 0)
    }

    /// Merges another snapshot into this one (summing counts and totals,
    /// taking the max of maxima) — how per-cell snapshots roll up into a
    /// campaign aggregate.
    pub fn absorb(&mut self, other: &TelemetrySnapshot) {
        self.world_build.absorb(&other.world_build);
        self.profile.absorb(&other.profile);
        self.passes.absorb(&other.passes);
        self.validate.absorb(&other.validate);
        self.sim.absorb(&other.sim);
        self.faults += other.faults;
        self.retries += other.retries;
        self.demotions += other.demotions;
        self.supervision = match (self.supervision, other.supervision) {
            (None, None) => None,
            (a, b) => {
                let mut sum = a.unwrap_or_default();
                sum.absorb(&b.unwrap_or_default());
                Some(sum)
            }
        };
        self.durability = match (self.durability, other.durability) {
            (None, None) => None,
            (a, b) => {
                let mut sum = a.unwrap_or_default();
                sum.absorb(&b.unwrap_or_default());
                Some(sum)
            }
        };
        self.service = match (self.service, other.service) {
            (None, None) => None,
            (a, b) => {
                let mut sum = a.unwrap_or_default();
                sum.absorb(&b.unwrap_or_default());
                Some(sum)
            }
        };
    }

    /// Renders the fixed-width human table `critic stats` prints.
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str("  span          count   total ms    mean ms     max ms\n");
        for kind in SpanKind::ALL {
            let s = self.span(kind);
            out.push_str(&format!(
                "  {:<12} {:>6} {:>10.2} {:>10.3} {:>10.3}\n",
                kind.label(),
                s.count,
                s.total_millis(),
                s.mean_millis(),
                s.max_nanos as f64 / 1e6,
            ));
        }
        out.push_str(&format!(
            "  events: {} faults, {} retries, {} demotions",
            self.faults, self.retries, self.demotions
        ));
        let supervision = self.supervision();
        if !supervision.is_empty() {
            out.push_str(&format!(
                "\n  supervision: {} sys-faults, {} degrades, {} trips, {} sheds",
                supervision.sys_faults, supervision.degrades, supervision.trips, supervision.sheds
            ));
        }
        let durability = self.durability();
        if !durability.is_empty() {
            out.push_str(&format!(
                "\n  durability: {} evictions, {} quarantines, {} checkpoints, {} torn-recoveries",
                durability.evictions,
                durability.quarantines,
                durability.checkpoints,
                durability.torn_recoveries
            ));
        }
        let service = self.service();
        if !service.is_empty() {
            out.push_str(&format!(
                "\n  service: {} admits, {} rejects, {} probes, {} resets, peak queue {}",
                service.admits,
                service.rejects,
                service.probes,
                service.resets,
                service.peak_queue_depth
            ));
        }
        out
    }
}

/// The cloneable telemetry handle threaded through campaigns, workbenches,
/// and the store. Disabled by default; every clone shares one recorder.
#[derive(Debug, Clone, Default)]
pub struct Telemetry {
    recorder: Option<Arc<Recorder>>,
}

impl Telemetry {
    /// The no-op handle: nothing is recorded, nothing is timed.
    pub fn off() -> Telemetry {
        Telemetry { recorder: None }
    }

    /// A live handle over a fresh recorder.
    pub fn enabled() -> Telemetry {
        Telemetry {
            recorder: Some(Arc::new(Recorder::new())),
        }
    }

    /// Enabled iff the `CRITIC_TELEMETRY` environment variable is set to a
    /// non-empty value other than `0` — how CI runs the whole tier-1 suite
    /// with telemetry on without touching every call site.
    pub fn from_env() -> Telemetry {
        match std::env::var("CRITIC_TELEMETRY") {
            Ok(v) if !v.is_empty() && v != "0" => Telemetry::enabled(),
            _ => Telemetry::off(),
        }
    }

    /// Whether a recorder is attached.
    pub fn is_enabled(&self) -> bool {
        self.recorder.is_some()
    }

    /// Runs `f`, recording its wall-clock as one span of `kind` when
    /// enabled. Disabled, this is a direct call: no clock read, no
    /// recording — the zero-cost path the bench harness verifies.
    #[inline]
    pub fn time<T>(&self, kind: SpanKind, f: impl FnOnce() -> T) -> T {
        match &self.recorder {
            None => f(),
            Some(recorder) => {
                let started = Instant::now();
                let result = f();
                recorder.record_span(kind, started.elapsed().as_nanos() as u64);
                result
            }
        }
    }

    /// Counts one event of `kind` (no-op when disabled).
    pub fn event(&self, kind: EventKind) {
        self.events(kind, 1);
    }

    /// Counts `n` events of `kind` (no-op when disabled).
    pub fn events(&self, kind: EventKind, n: u64) {
        if let Some(recorder) = &self.recorder {
            if n > 0 {
                recorder.count_events(kind, n);
            }
        }
    }

    /// Updates the queue-depth high-water gauge (no-op when disabled).
    pub fn queue_depth(&self, depth: u64) {
        if let Some(recorder) = &self.recorder {
            recorder.record_queue_depth(depth);
        }
    }

    /// Merges a finished snapshot into this handle's recorder (no-op when
    /// disabled) — campaigns roll per-cell telemetry up this way.
    pub fn absorb(&self, snapshot: &TelemetrySnapshot) {
        if let Some(recorder) = &self.recorder {
            for kind in SpanKind::ALL {
                let s = snapshot.span(kind);
                if s.count > 0 {
                    let i = kind.index();
                    recorder.span_count[i].fetch_add(s.count, Ordering::Relaxed);
                    recorder.span_total[i].fetch_add(s.total_nanos, Ordering::Relaxed);
                    recorder.span_max[i].fetch_max(s.max_nanos, Ordering::Relaxed);
                }
            }
            for kind in EventKind::ALL {
                let n = snapshot.events(kind);
                if n > 0 {
                    recorder.count_events(kind, n);
                }
            }
            recorder.record_queue_depth(snapshot.service().peak_queue_depth);
        }
    }

    /// Reads the current counters; `None` when disabled.
    pub fn snapshot(&self) -> Option<TelemetrySnapshot> {
        self.recorder.as_ref().map(|r| r.snapshot())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_handle_records_nothing() {
        let telemetry = Telemetry::off();
        assert!(!telemetry.is_enabled());
        let out = telemetry.time(SpanKind::Sim, || 41 + 1);
        assert_eq!(out, 42);
        telemetry.event(EventKind::Fault);
        assert!(telemetry.snapshot().is_none());
    }

    #[test]
    fn enabled_handle_times_spans_and_counts_events() {
        let telemetry = Telemetry::enabled();
        assert!(telemetry.is_enabled());
        for _ in 0..3 {
            telemetry.time(SpanKind::Profile, || std::hint::black_box(7u64.pow(5)));
        }
        telemetry.event(EventKind::Retry);
        telemetry.events(EventKind::Demotion, 4);
        let snap = telemetry.snapshot().expect("enabled handles snapshot");
        assert_eq!(snap.profile.count, 3);
        assert!(snap.profile.max_nanos <= snap.profile.total_nanos);
        assert_eq!(snap.retries, 1);
        assert_eq!(snap.demotions, 4);
        assert_eq!(snap.sim.count, 0);
        assert!(!snap.is_empty());
    }

    #[test]
    fn clones_share_one_recorder() {
        let telemetry = Telemetry::enabled();
        let clone = telemetry.clone();
        clone.time(SpanKind::Sim, || ());
        clone.event(EventKind::Fault);
        let snap = telemetry.snapshot().expect("snapshot");
        assert_eq!(snap.sim.count, 1);
        assert_eq!(snap.faults, 1);
    }

    #[test]
    fn snapshots_absorb_into_aggregates() {
        let a = TelemetrySnapshot {
            sim: SpanStats {
                count: 2,
                total_nanos: 100,
                max_nanos: 70,
            },
            faults: 1,
            ..Default::default()
        };
        let b = TelemetrySnapshot {
            sim: SpanStats {
                count: 1,
                total_nanos: 50,
                max_nanos: 50,
            },
            demotions: 2,
            ..Default::default()
        };
        let mut sum = a;
        sum.absorb(&b);
        assert_eq!(sum.sim.count, 3);
        assert_eq!(sum.sim.total_nanos, 150);
        assert_eq!(sum.sim.max_nanos, 70);
        assert_eq!(sum.faults, 1);
        assert_eq!(sum.demotions, 2);

        let campaign = Telemetry::enabled();
        campaign.absorb(&sum);
        let snap = campaign.snapshot().expect("snapshot");
        assert_eq!(snap.sim.count, 3);
        assert_eq!(snap.sim.max_nanos, 70);
        assert_eq!(snap.demotions, 2);
    }

    #[test]
    fn render_lists_every_span_and_event() {
        let telemetry = Telemetry::enabled();
        telemetry.time(SpanKind::WorldBuild, || ());
        telemetry.event(EventKind::Fault);
        let text = telemetry.snapshot().expect("snapshot").render();
        for kind in SpanKind::ALL {
            assert!(text.contains(kind.label()), "{text}");
        }
        assert!(text.contains("1 faults"), "{text}");
    }

    #[test]
    fn pre_supervision_snapshots_still_deserialize() {
        // A journal line written before the supervision counters existed
        // has no `supervision` key; it must parse to `None` (reading 0 via
        // the accessor), not reject the line.
        let telemetry = Telemetry::enabled();
        telemetry.event(EventKind::Retry);
        let snap = telemetry.snapshot().expect("snapshot");
        let mut value = serde::Serialize::to_value(&snap);
        if let serde::Value::Object(map) = &mut value {
            map.retain(|(k, _)| k != "supervision");
        }
        let back: TelemetrySnapshot =
            serde::Deserialize::from_value(&value).expect("old snapshot parses");
        assert_eq!(back.supervision, None);
        assert_eq!(back.events(EventKind::Trip), 0);
        assert_eq!(back.retries, 1);

        // Absorbing a modern snapshot revives the counters.
        let mut sum = back;
        telemetry.event(EventKind::Shed);
        sum.absorb(&telemetry.snapshot().expect("snapshot"));
        assert_eq!(sum.events(EventKind::Shed), 1);
    }

    #[test]
    fn supervision_events_count_and_render() {
        let telemetry = Telemetry::enabled();
        telemetry.event(EventKind::SysFault);
        telemetry.events(EventKind::Degrade, 2);
        telemetry.event(EventKind::Trip);
        telemetry.events(EventKind::Shed, 3);
        let snap = telemetry.snapshot().expect("snapshot");
        let supervision = snap.supervision();
        assert_eq!(supervision.sys_faults, 1);
        assert_eq!(supervision.degrades, 2);
        assert_eq!(supervision.trips, 1);
        assert_eq!(supervision.sheds, 3);
        assert!(!snap.is_empty());
        let text = snap.render();
        assert!(text.contains("1 sys-faults"), "{text}");
        assert!(text.contains("3 sheds"), "{text}");
    }

    #[test]
    fn pre_durability_snapshots_still_deserialize() {
        // A journal line written before the persistent tier existed has no
        // `durability` key; it must parse to `None` (reading 0 via the
        // accessor), not reject the line.
        let telemetry = Telemetry::enabled();
        telemetry.event(EventKind::Evict);
        let snap = telemetry.snapshot().expect("snapshot");
        let mut value = serde::Serialize::to_value(&snap);
        if let serde::Value::Object(map) = &mut value {
            map.retain(|(k, _)| k != "durability");
        }
        let back: TelemetrySnapshot =
            serde::Deserialize::from_value(&value).expect("old snapshot parses");
        assert_eq!(back.durability, None);
        assert_eq!(back.events(EventKind::Evict), 0);

        // Absorbing a modern snapshot revives the counters.
        let mut sum = back;
        sum.absorb(&telemetry.snapshot().expect("snapshot"));
        assert_eq!(sum.events(EventKind::Evict), 1);
    }

    #[test]
    fn durability_events_count_and_render() {
        let telemetry = Telemetry::enabled();
        telemetry.events(EventKind::Evict, 2);
        telemetry.event(EventKind::Quarantine);
        telemetry.event(EventKind::Checkpoint);
        telemetry.events(EventKind::TornRecovery, 3);
        let snap = telemetry.snapshot().expect("snapshot");
        let durability = snap.durability();
        assert_eq!(durability.evictions, 2);
        assert_eq!(durability.quarantines, 1);
        assert_eq!(durability.checkpoints, 1);
        assert_eq!(durability.torn_recoveries, 3);
        assert!(!snap.is_empty());
        let text = snap.render();
        assert!(text.contains("2 evictions"), "{text}");
        assert!(text.contains("3 torn-recoveries"), "{text}");
    }

    #[test]
    fn pre_service_snapshots_still_deserialize() {
        // A journal line written before `critic serve` existed has no
        // `service` key; it must parse to `None` (reading 0 via the
        // accessor), not reject the line.
        let telemetry = Telemetry::enabled();
        telemetry.event(EventKind::Admit);
        let snap = telemetry.snapshot().expect("snapshot");
        let mut value = serde::Serialize::to_value(&snap);
        if let serde::Value::Object(map) = &mut value {
            map.retain(|(k, _)| k != "service");
        }
        let back: TelemetrySnapshot =
            serde::Deserialize::from_value(&value).expect("old snapshot parses");
        assert_eq!(back.service, None);
        assert_eq!(back.events(EventKind::Admit), 0);

        // Absorbing a modern snapshot revives the counters.
        let mut sum = back;
        sum.absorb(&telemetry.snapshot().expect("snapshot"));
        assert_eq!(sum.events(EventKind::Admit), 1);
    }

    #[test]
    fn service_events_count_and_render() {
        let telemetry = Telemetry::enabled();
        telemetry.time(SpanKind::Request, || ());
        telemetry.events(EventKind::Admit, 5);
        telemetry.events(EventKind::Reject, 2);
        telemetry.event(EventKind::Probe);
        telemetry.event(EventKind::Reset);
        telemetry.queue_depth(7);
        telemetry.queue_depth(3);
        let snap = telemetry.snapshot().expect("snapshot");
        let service = snap.service();
        assert_eq!(service.requests.count, 1);
        assert_eq!(service.admits, 5);
        assert_eq!(service.rejects, 2);
        assert_eq!(service.probes, 1);
        assert_eq!(service.resets, 1);
        assert_eq!(service.peak_queue_depth, 7);
        assert!(!snap.is_empty());
        let text = snap.render();
        assert!(text.contains("5 admits"), "{text}");
        assert!(text.contains("2 rejects"), "{text}");
        assert!(text.contains("peak queue 7"), "{text}");

        // The high-water gauge survives a roll-up by max, not sum.
        let aggregate = Telemetry::enabled();
        aggregate.queue_depth(4);
        aggregate.absorb(&snap);
        aggregate.absorb(&snap);
        let merged = aggregate.snapshot().expect("snapshot").service();
        assert_eq!(merged.admits, 10);
        assert_eq!(merged.peak_queue_depth, 7);
    }

    #[test]
    fn snapshot_round_trips_through_serde() {
        let telemetry = Telemetry::enabled();
        telemetry.time(SpanKind::Validate, || ());
        telemetry.events(EventKind::Demotion, 3);
        let snap = telemetry.snapshot().expect("snapshot");
        let value = serde::Serialize::to_value(&snap);
        let back: TelemetrySnapshot = serde::Deserialize::from_value(&value).expect("round trips");
        assert_eq!(back, snap);
    }
}
