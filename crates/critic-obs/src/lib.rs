//! Observability: the cycle-accounting ledger and campaign telemetry.
//!
//! Two measurement layers with one design rule — *numbers that tests can
//! prove consistent, not trust*:
//!
//! * [`CycleLedger`] attributes every simulated cycle to exactly one
//!   exhaustive bucket ([`CycleClass`]). The pipeline simulator charges one
//!   class per cycle at a single decision point, so the bucket sum equals
//!   total cycles *by construction* and the paper's Fig. 3 stall taxonomy
//!   (F.StallForI vs F.StallForR+D) is derived from an audited partition
//!   instead of loose counters.
//! * [`Telemetry`] is a cloneable handle over an optional [`Recorder`]:
//!   span timings (world build, profile, passes, validate, sim) and
//!   fault/retry/demotion event counts. Disabled is the default and is
//!   zero-cost — [`Telemetry::time`] runs the closure directly without
//!   reading the clock — so the campaign hot path is unchanged unless a
//!   caller opts in.
//!
//! This crate is a leaf (serde only): every subsystem can report into it
//! without dependency cycles.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod ledger;
pub mod span;

pub use ledger::{CycleClass, CycleLedger, MemLevelCounters};
pub use span::{
    DurabilityEvents, EventKind, Recorder, ServiceEvents, SpanKind, SpanStats, SupervisionEvents,
    Telemetry, TelemetrySnapshot,
};
