//! Memory-hierarchy substrate: caches, prefetchers, and LPDDR3 DRAM timing.
//!
//! Reproduces the Table I memory system of the paper's Google-Tablet
//! configuration:
//!
//! * 2-way 32 KB i-cache and 64 KB d-cache, 2-cycle hit latency;
//! * 8-way 2 MB shared L2, 10-cycle hit, with an optional **CLPT**
//!   (critical-load prefetch table, 1024 × 7-bit entries) prefetcher — the
//!   HPCA'09 criticality-prefetching baseline the paper compares against;
//! * a 2 GB LPDDR3 DRAM model in the spirit of DRAMSim2: 1 channel,
//!   2 ranks/channel, 8 banks/rank, open-page policy,
//!   tCL = tRP = tRCD = 13 ns;
//! * an optional **EFetch**-style instruction prefetcher (PACT'14) driven by
//!   call-stack history, used in the paper's Fig. 11 hardware comparison.
//!
//! The [`MemSystem`] facade is what the pipeline talks to: it issues
//! instruction fetches and data accesses at a given cycle and receives
//! completion latencies, while the hierarchy keeps hit/miss and row-buffer
//! statistics for the energy model.
//!
//! # Example
//!
//! ```
//! use critic_mem::{MemConfig, MemSystem};
//!
//! let mut mem = MemSystem::new(&MemConfig::google_tablet());
//! let cold = mem.ifetch(0x1_0000, 0);
//! let warm = mem.ifetch(0x1_0000, cold);
//! assert!(cold > warm, "second access hits the i-cache");
//! assert_eq!(warm, 2, "Table I: 2-cycle i-cache hit");
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cache;
pub mod config;
pub mod dram;
pub mod prefetch;
pub mod system;

pub use cache::{Cache, CacheConfig, CacheStats};
pub use config::MemConfig;
pub use dram::{Dram, DramConfig, DramStats};
pub use prefetch::{ClptPrefetcher, EFetchPrefetcher};
pub use system::{MemStats, MemSystem};
