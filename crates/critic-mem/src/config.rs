//! Whole-hierarchy configuration (the memory half of Table I).

use serde::{Deserialize, Serialize};

use crate::cache::CacheConfig;
use crate::dram::DramConfig;

/// Configuration of the full memory system.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MemConfig {
    /// L1 instruction cache.
    pub icache: CacheConfig,
    /// L1 data cache.
    pub dcache: CacheConfig,
    /// Shared L2.
    pub l2: CacheConfig,
    /// DRAM device.
    pub dram: DramConfig,
    /// Enable the CLPT critical-load prefetcher (baseline comparison knob).
    pub clpt_enabled: bool,
    /// CLPT criticality threshold (fanout counter value).
    pub clpt_threshold: u8,
    /// Enable the EFetch instruction prefetcher (Fig. 11 knob).
    pub efetch_enabled: bool,
}

impl MemConfig {
    /// The paper's Table I Google-Tablet memory system.
    pub fn google_tablet() -> MemConfig {
        MemConfig {
            icache: CacheConfig::new(32 * 1024, 2, 64, 2),
            dcache: CacheConfig::new(64 * 1024, 2, 64, 2),
            l2: CacheConfig::new(2 * 1024 * 1024, 8, 64, 10),
            dram: DramConfig::lpddr3_2gb(),
            clpt_enabled: false,
            clpt_threshold: 8,
            efetch_enabled: false,
        }
    }

    /// Fig. 11's `4×i-cache` design point: 128 KB instead of 32 KB.
    #[must_use]
    pub fn with_4x_icache(mut self) -> MemConfig {
        self.icache = CacheConfig::new(
            self.icache.size_bytes * 4,
            self.icache.ways * 2,
            self.icache.line_bytes,
            self.icache.hit_latency,
        );
        self
    }

    /// Fig. 11's `2×FD` i-cache side: halved i-cache latency.
    #[must_use]
    pub fn with_half_icache_latency(mut self) -> MemConfig {
        self.icache.hit_latency = (self.icache.hit_latency / 2).max(1);
        self
    }

    /// Enables the CLPT prefetcher (the HPCA'09 critical-load baseline).
    #[must_use]
    pub fn with_clpt(mut self) -> MemConfig {
        self.clpt_enabled = true;
        self
    }

    /// Enables the EFetch instruction prefetcher.
    #[must_use]
    pub fn with_efetch(mut self) -> MemConfig {
        self.efetch_enabled = true;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_i_geometry() {
        let cfg = MemConfig::google_tablet();
        assert_eq!(cfg.icache.size_bytes, 32 * 1024);
        assert_eq!(cfg.icache.ways, 2);
        assert_eq!(cfg.icache.hit_latency, 2);
        assert_eq!(cfg.dcache.size_bytes, 64 * 1024);
        assert_eq!(cfg.l2.size_bytes, 2 * 1024 * 1024);
        assert_eq!(cfg.l2.ways, 8);
        assert_eq!(cfg.l2.hit_latency, 10);
        assert_eq!(cfg.dram.ranks, 2);
        assert_eq!(cfg.dram.banks_per_rank, 8);
        assert!(!cfg.clpt_enabled);
    }

    #[test]
    fn design_point_builders() {
        let cfg = MemConfig::google_tablet().with_4x_icache();
        assert_eq!(cfg.icache.size_bytes, 128 * 1024);
        let cfg = MemConfig::google_tablet().with_half_icache_latency();
        assert_eq!(cfg.icache.hit_latency, 1);
        let cfg = MemConfig::google_tablet().with_clpt().with_efetch();
        assert!(cfg.clpt_enabled && cfg.efetch_enabled);
    }
}
