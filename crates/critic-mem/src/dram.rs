//! LPDDR3 DRAM timing in the spirit of DRAMSim2 (paper Table I).
//!
//! One channel, two ranks, eight banks per rank, open-page policy, and
//! tCL = tRP = tRCD = 13 ns. The model tracks one open row per bank and a
//! per-bank busy time, giving three latency classes:
//!
//! * **row hit**: tCL + burst;
//! * **row miss (closed)**: tRCD + tCL + burst;
//! * **row conflict (other row open)**: tRP + tRCD + tCL + burst;
//!
//! plus any queueing delay behind an earlier access to the same bank.

use serde::{Deserialize, Serialize};

/// DRAM timing/geometry configuration.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DramConfig {
    /// Ranks per channel.
    pub ranks: u32,
    /// Banks per rank.
    pub banks_per_rank: u32,
    /// Row (page) size in bytes.
    pub row_bytes: u64,
    /// CPU cycles per tCL (CAS latency).
    pub t_cl: u64,
    /// CPU cycles per tRCD (activate to column).
    pub t_rcd: u64,
    /// CPU cycles per tRP (precharge).
    pub t_rp: u64,
    /// CPU cycles to burst one cache line over the channel.
    pub t_burst: u64,
}

impl DramConfig {
    /// The Table I LPDDR3 part at a 2 GHz CPU clock: 13 ns ≈ 26 cycles.
    pub fn lpddr3_2gb() -> DramConfig {
        DramConfig {
            ranks: 2,
            banks_per_rank: 8,
            row_bytes: 4096,
            t_cl: 26,
            t_rcd: 26,
            t_rp: 26,
            t_burst: 8,
        }
    }

    fn total_banks(&self) -> u64 {
        u64::from(self.ranks) * u64::from(self.banks_per_rank)
    }
}

/// Row-buffer and traffic counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct DramStats {
    /// Total accesses.
    pub accesses: u64,
    /// Open-page hits.
    pub row_hits: u64,
    /// Activations of a closed bank.
    pub row_misses: u64,
    /// Precharge-then-activate conflicts.
    pub row_conflicts: u64,
    /// Cycles spent waiting behind busy banks.
    pub queue_cycles: u64,
}

#[derive(Debug, Clone, Copy, Default)]
struct Bank {
    open_row: Option<u64>,
    busy_until: u64,
}

/// The DRAM device model.
#[derive(Debug, Clone)]
pub struct Dram {
    config: DramConfig,
    banks: Vec<Bank>,
    stats: DramStats,
}

impl Dram {
    /// Builds a DRAM with all banks precharged.
    pub fn new(config: DramConfig) -> Dram {
        Dram {
            banks: vec![Bank::default(); config.total_banks() as usize],
            config,
            stats: DramStats::default(),
        }
    }

    /// The configuration.
    pub fn config(&self) -> &DramConfig {
        &self.config
    }

    /// Re-initializes to the all-precharged state [`Dram::new`] produces,
    /// recycling the bank array when the geometry is unchanged.
    pub fn reset_to(&mut self, config: DramConfig) {
        if config == self.config {
            self.banks.fill(Bank::default());
            self.stats = DramStats::default();
        } else {
            *self = Dram::new(config);
        }
    }

    /// Counters so far.
    pub fn stats(&self) -> DramStats {
        self.stats
    }

    /// Performs an access at CPU cycle `now`; returns its total latency.
    pub fn access(&mut self, addr: u64, now: u64) -> u64 {
        self.stats.accesses += 1;
        let row = addr / self.config.row_bytes;
        let bank_index = (row % self.config.total_banks()) as usize;
        let cfg = self.config;
        let bank = &mut self.banks[bank_index];

        let start = now.max(bank.busy_until);
        let queue = start - now;
        self.stats.queue_cycles += queue;

        let service = match bank.open_row {
            Some(open) if open == row => {
                self.stats.row_hits += 1;
                cfg.t_cl + cfg.t_burst
            }
            Some(_) => {
                self.stats.row_conflicts += 1;
                cfg.t_rp + cfg.t_rcd + cfg.t_cl + cfg.t_burst
            }
            None => {
                self.stats.row_misses += 1;
                cfg.t_rcd + cfg.t_cl + cfg.t_burst
            }
        };
        bank.open_row = Some(row);
        bank.busy_until = start + service;
        queue + service
    }

    /// Row-hit fraction observed so far.
    pub fn row_hit_ratio(&self) -> f64 {
        if self.stats.accesses == 0 {
            0.0
        } else {
            self.stats.row_hits as f64 / self.stats.accesses as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dram() -> Dram {
        Dram::new(DramConfig::lpddr3_2gb())
    }

    #[test]
    fn first_access_activates() {
        let mut d = dram();
        let lat = d.access(0, 0);
        // Closed bank: tRCD + tCL + burst.
        assert_eq!(lat, 26 + 26 + 8);
        assert_eq!(d.stats().row_misses, 1);
    }

    #[test]
    fn same_row_hits_open_page() {
        let mut d = dram();
        let first = d.access(0, 0);
        let second = d.access(64, first);
        assert_eq!(second, 26 + 8, "open-page hit is tCL + burst");
        assert_eq!(d.stats().row_hits, 1);
    }

    #[test]
    fn different_row_same_bank_conflicts() {
        let mut d = dram();
        let cfg = *d.config();
        let stride = cfg.row_bytes * cfg.total_banks(); // same bank, next row
        let first = d.access(0, 0);
        let second = d.access(stride, first);
        assert_eq!(
            second,
            26 + 26 + 26 + 8,
            "conflict pays tRP + tRCD + tCL + burst"
        );
        assert_eq!(d.stats().row_conflicts, 1);
    }

    #[test]
    fn busy_bank_queues() {
        let mut d = dram();
        d.access(0, 0);
        // Immediately issue again to the same bank while it is busy.
        let lat = d.access(64, 0);
        assert!(lat > 26 + 8, "second access waits for the bank");
        assert!(d.stats().queue_cycles > 0);
    }

    #[test]
    fn different_banks_do_not_interfere() {
        let mut d = dram();
        let row_bytes = d.config().row_bytes;
        d.access(0, 0);
        let lat = d.access(row_bytes, 0); // next bank
        assert_eq!(lat, 26 + 26 + 8, "no queueing across banks");
    }

    #[test]
    fn streaming_has_high_row_hit_ratio() {
        let mut d = dram();
        let mut now = 0;
        for i in 0..64u64 {
            now += d.access(i * 64, now);
        }
        assert!(
            d.row_hit_ratio() > 0.9,
            "sequential lines stay in the open row"
        );
    }
}
