//! Prefetchers: the CLPT critical-load prefetcher (HPCA'09 baseline) and an
//! EFetch-style call-history instruction prefetcher (PACT'14, Fig. 11).

use serde::{Deserialize, Serialize};

/// Critical-Load Prefetch Table.
///
/// The paper's baseline comparison ("prefetching high-fanout loads",
/// Fig. 1a) follows Subramaniam et al., *Criticality-based optimizations for
/// efficient load processing*: a PC-indexed table of saturating fanout
/// counters (Table I sizes it at 1024 × 7 bits). Loads whose counter crosses
/// a threshold are deemed critical; for those, the prefetcher issues a
/// next-line (delta-matched) prefetch into L2.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ClptPrefetcher {
    counters: Vec<u8>,
    last_addr: Vec<u64>,
    threshold: u8,
}

/// Entries in the CLPT (Table I: 1024).
pub const CLPT_ENTRIES: usize = 1024;
/// Saturation limit of the 7-bit counters.
pub const CLPT_MAX: u8 = 127;

impl ClptPrefetcher {
    /// Builds an empty table with the given criticality threshold.
    pub fn new(threshold: u8) -> ClptPrefetcher {
        ClptPrefetcher {
            counters: vec![0; CLPT_ENTRIES],
            last_addr: vec![0; CLPT_ENTRIES],
            threshold,
        }
    }

    /// Re-initializes to the empty state [`ClptPrefetcher::new`] produces,
    /// recycling the table allocations.
    pub fn reset(&mut self, threshold: u8) {
        self.counters.fill(0);
        self.last_addr.fill(0);
        self.threshold = threshold;
    }

    fn slot(pc: u64) -> usize {
        ((pc >> 2) as usize) % CLPT_ENTRIES
    }

    /// Trains the table with an observed load fanout (from the ROB, as the
    /// original hardware proposal does).
    pub fn train(&mut self, pc: u64, fanout: u32) {
        let slot = Self::slot(pc);
        let counter = &mut self.counters[slot];
        // Saturating exponential approach toward the observed fanout.
        let observed = fanout.min(u32::from(CLPT_MAX)) as u8;
        if observed > *counter {
            *counter = (*counter)
                .saturating_add(((observed - *counter) / 2).max(1))
                .min(CLPT_MAX);
        } else if *counter > 0 {
            *counter -= 1;
        }
    }

    /// On a load at `pc` to `addr`: returns the address to prefetch, if the
    /// load is predicted critical.
    pub fn observe_load(&mut self, pc: u64, addr: u64) -> Option<u64> {
        let slot = Self::slot(pc);
        let prev = self.last_addr[slot];
        self.last_addr[slot] = addr;
        if self.counters[slot] < self.threshold {
            return None;
        }
        // Delta-matched with line-granular lookahead: small strides walk
        // lines sequentially, so stage two lines ahead; large strides jump
        // by the observed delta.
        let delta = addr.wrapping_sub(prev);
        let target = if prev != 0 && (64..4096).contains(&delta) {
            addr.wrapping_add(delta * 2)
        } else {
            // Small strides walk lines sequentially: stage several lines
            // ahead so DRAM latency is actually hidden.
            (addr & !63) + 256
        };
        Some(target)
    }

    /// Whether the table currently predicts `pc` critical.
    pub fn is_critical(&self, pc: u64) -> bool {
        self.counters[Self::slot(pc)] >= self.threshold
    }
}

/// EFetch-style instruction prefetcher (Chadha et al., PACT'14).
///
/// Tracks a short history of call targets; a table keyed by the hashed
/// history predicts the *next* function and prefetches the first lines of
/// its body into the i-cache. The paper sizes the lookup state at 39 KB; at
/// 8 bytes per entry that is ~4K entries, which we round to a power of two.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct EFetchPrefetcher {
    table: Vec<u64>,
    history: u64,
    /// Lines of the predicted function body to prefetch.
    pub lines_ahead: u32,
}

/// Entries in the EFetch history table (≈39 KB at 8 B + tag overhead).
pub const EFETCH_ENTRIES: usize = 4096;

impl EFetchPrefetcher {
    /// Builds an empty prefetcher that fetches `lines_ahead` lines of the
    /// predicted callee.
    pub fn new(lines_ahead: u32) -> EFetchPrefetcher {
        EFetchPrefetcher {
            table: vec![0; EFETCH_ENTRIES],
            history: 0,
            lines_ahead,
        }
    }

    /// Re-initializes to the empty state [`EFetchPrefetcher::new`]
    /// produces, recycling the table allocation.
    pub fn reset(&mut self, lines_ahead: u32) {
        self.table.fill(0);
        self.history = 0;
        self.lines_ahead = lines_ahead;
    }

    fn slot(history: u64) -> usize {
        let mut h = history;
        h ^= h >> 33;
        h = h.wrapping_mul(0xFF51_AFD7_ED55_8CCD);
        h ^= h >> 33;
        (h as usize) % EFETCH_ENTRIES
    }

    /// Observes a call to `target`; returns the predicted *next* call target
    /// (to prefetch), and trains the table.
    pub fn observe_call(&mut self, target: u64) -> Option<u64> {
        // Train: after the previous history, `target` was called.
        let prev_slot = Self::slot(self.history);
        self.table[prev_slot] = target;
        // Predict: with `target` now part of the history, what comes next?
        self.history = (self.history << 16) ^ target;
        let prediction = self.table[Self::slot(self.history)];
        (prediction != 0 && prediction != target).then_some(prediction)
    }

    /// The line addresses to prefetch for a predicted function entry.
    pub fn prefetch_lines(&self, entry: u64) -> impl Iterator<Item = u64> + '_ {
        let base = entry & !63;
        (0..u64::from(self.lines_ahead)).map(move |i| base + i * 64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clpt_trains_toward_high_fanout() {
        let mut clpt = ClptPrefetcher::new(8);
        let pc = 0x1234;
        assert!(!clpt.is_critical(pc));
        for _ in 0..8 {
            clpt.train(pc, 12);
        }
        assert!(
            clpt.is_critical(pc),
            "repeated high fanout marks the PC critical"
        );
    }

    #[test]
    fn clpt_decays_on_low_fanout() {
        let mut clpt = ClptPrefetcher::new(8);
        let pc = 0x40;
        for _ in 0..8 {
            clpt.train(pc, 12);
        }
        for _ in 0..200 {
            clpt.train(pc, 0);
        }
        assert!(!clpt.is_critical(pc), "counters decay");
    }

    #[test]
    fn clpt_prefetches_only_critical_loads() {
        let mut clpt = ClptPrefetcher::new(8);
        let pc = 0x80;
        assert_eq!(clpt.observe_load(pc, 0x1000), None);
        for _ in 0..8 {
            clpt.train(pc, 15);
        }
        assert!(clpt.observe_load(pc, 0x2000).is_some());
    }

    #[test]
    fn clpt_matches_strides() {
        let mut clpt = ClptPrefetcher::new(1);
        let pc = 0xC0;
        clpt.train(pc, 20);
        clpt.observe_load(pc, 0x1000);
        let next = clpt.observe_load(pc, 0x1100).expect("critical");
        assert_eq!(next, 0x1300, "stride 0x100 continues two strides ahead");
    }

    #[test]
    fn clpt_counter_saturates_at_seven_bits() {
        let mut clpt = ClptPrefetcher::new(8);
        for _ in 0..1000 {
            clpt.train(0x10, 4096);
        }
        // Internal counter must stay within the 7-bit budget of Table I.
        assert!(clpt.counters.iter().all(|&c| c <= CLPT_MAX));
    }

    #[test]
    fn efetch_learns_call_sequences() {
        let mut ef = EFetchPrefetcher::new(4);
        // Repeating call pattern A -> B -> C.
        let (a, b, c) = (0x1000, 0x2000, 0x3000);
        for _ in 0..4 {
            ef.observe_call(a);
            ef.observe_call(b);
            ef.observe_call(c);
        }
        // After history ends with (…, C), calling A is next; after A, B.
        let pred_after_a = ef.observe_call(a);
        assert_eq!(
            pred_after_a,
            Some(b),
            "history table predicts the follower of A's context"
        );
    }

    #[test]
    fn efetch_prefetches_consecutive_lines() {
        let ef = EFetchPrefetcher::new(3);
        let lines: Vec<u64> = ef.prefetch_lines(0x1040).collect();
        assert_eq!(lines, vec![0x1040, 0x1080, 0x10C0]);
    }
}
