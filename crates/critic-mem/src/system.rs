//! The [`MemSystem`] facade: i-fetch and data paths through the hierarchy.

use serde::{Deserialize, Serialize};

use crate::cache::{Cache, CacheStats};
use crate::config::MemConfig;
use crate::dram::{Dram, DramStats};
use crate::prefetch::{ClptPrefetcher, EFetchPrefetcher};

/// Aggregated statistics of the whole memory system.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct MemStats {
    /// L1 instruction cache counters.
    pub icache: CacheStats,
    /// L1 data cache counters.
    pub dcache: CacheStats,
    /// Shared L2 counters.
    pub l2: CacheStats,
    /// DRAM counters.
    pub dram: DramStats,
    /// Prefetches issued by the CLPT.
    pub clpt_prefetches: u64,
    /// Prefetches issued by EFetch.
    pub efetch_prefetches: u64,
}

impl MemStats {
    /// Projects the per-level demand counters into the observability
    /// layer's [`critic_obs::MemLevelCounters`] shape, so the cycle ledger
    /// and its memory-side causes travel together in one snapshot.
    pub fn level_counters(&self) -> critic_obs::MemLevelCounters {
        critic_obs::MemLevelCounters {
            l1i_accesses: self.icache.accesses,
            l1i_misses: self.icache.misses,
            l1d_accesses: self.dcache.accesses,
            l1d_misses: self.dcache.misses,
            l2_accesses: self.l2.accesses,
            l2_misses: self.l2.misses,
            dram_accesses: self.dram.accesses,
        }
    }
}

/// The memory hierarchy the pipeline talks to.
///
/// Latency composition: an L1 miss pays the L1 latency, then the L2 latency;
/// an L2 miss additionally pays DRAM. This matches the serial lookup a
/// mobile SoC without an L3 performs.
#[derive(Debug, Clone)]
pub struct MemSystem {
    icache: Cache,
    dcache: Cache,
    l2: Cache,
    dram: Dram,
    clpt: Option<ClptPrefetcher>,
    efetch: Option<EFetchPrefetcher>,
    clpt_prefetches: u64,
    efetch_prefetches: u64,
}

impl MemSystem {
    /// Builds the hierarchy from a configuration.
    pub fn new(config: &MemConfig) -> MemSystem {
        MemSystem {
            icache: Cache::new(config.icache),
            dcache: Cache::new(config.dcache),
            l2: Cache::new(config.l2),
            dram: Dram::new(config.dram),
            clpt: config
                .clpt_enabled
                .then(|| ClptPrefetcher::new(config.clpt_threshold)),
            efetch: config.efetch_enabled.then(|| EFetchPrefetcher::new(4)),
            clpt_prefetches: 0,
            efetch_prefetches: 0,
        }
    }

    /// Re-initializes the whole hierarchy to the cold state
    /// [`MemSystem::new`] produces, recycling every allocation whose
    /// geometry is unchanged — the hot-path alternative to rebuilding ~1 MB
    /// of cache line state per simulator run. A reset system is
    /// behaviorally indistinguishable from a fresh one.
    pub fn reset_to(&mut self, config: &MemConfig) {
        self.icache.reset_to(config.icache);
        self.dcache.reset_to(config.dcache);
        self.l2.reset_to(config.l2);
        self.dram.reset_to(config.dram);
        self.clpt = match (self.clpt.take(), config.clpt_enabled) {
            (Some(mut clpt), true) => {
                clpt.reset(config.clpt_threshold);
                Some(clpt)
            }
            (None, true) => Some(ClptPrefetcher::new(config.clpt_threshold)),
            (_, false) => None,
        };
        self.efetch = match (self.efetch.take(), config.efetch_enabled) {
            (Some(mut efetch), true) => {
                efetch.reset(4);
                Some(efetch)
            }
            (None, true) => Some(EFetchPrefetcher::new(4)),
            (_, false) => None,
        };
        self.clpt_prefetches = 0;
        self.efetch_prefetches = 0;
    }

    /// Fetches the instruction line containing `addr`; returns the latency.
    pub fn ifetch(&mut self, addr: u64, now: u64) -> u64 {
        let l1 = self.icache.config().hit_latency;
        if self.icache.access(addr) {
            return l1;
        }
        let l2_latency = self.l2.config().hit_latency;
        if self.l2.access(addr) {
            return l1 + l2_latency;
        }
        l1 + l2_latency + self.dram.access(addr, now + l1 + l2_latency)
    }

    /// Performs a data load/store; returns the latency.
    pub fn data_access(&mut self, addr: u64, now: u64) -> u64 {
        let l1 = self.dcache.config().hit_latency;
        if self.dcache.access(addr) {
            return l1;
        }
        let l2_latency = self.l2.config().hit_latency;
        if self.l2.access(addr) {
            return l1 + l2_latency;
        }
        l1 + l2_latency + self.dram.access(addr, now + l1 + l2_latency)
    }

    /// Trains the CLPT with a load's observed ROB fanout.
    pub fn train_load_criticality(&mut self, pc: u64, fanout: u32) {
        if let Some(clpt) = &mut self.clpt {
            clpt.train(pc, fanout);
        }
    }

    /// Notifies the CLPT of a demand load; issues its prefetch into L2/L1D.
    pub fn observe_load(&mut self, pc: u64, addr: u64, now: u64) {
        let Some(clpt) = &mut self.clpt else { return };
        if let Some(target) = clpt.observe_load(pc, addr) {
            self.clpt_prefetches += 1;
            if !self.l2.contains(target) {
                // Charge DRAM occupancy for the fill, off the demand path.
                let _ = self.dram.access(target, now);
                self.l2.prefetch_fill(target);
            }
            self.dcache.prefetch_fill(target);
        }
    }

    /// Notifies EFetch of a call; prefetches the predicted next function.
    pub fn observe_call(&mut self, target: u64, now: u64) {
        let Some(efetch) = &mut self.efetch else {
            return;
        };
        if let Some(predicted) = efetch.observe_call(target) {
            self.efetch_prefetches += 1;
            // Iterate the line addresses directly instead of collecting into
            // a Vec: this runs once per dynamic call instruction, and the
            // borrow on `efetch` ends here because the line arithmetic only
            // needs the depth.
            let depth = efetch.lines_ahead;
            let base = predicted & !63;
            for line in (0..u64::from(depth)).map(|i| base + i * 64) {
                if !self.l2.contains(line) {
                    let _ = self.dram.access(line, now);
                    self.l2.prefetch_fill(line);
                }
                self.icache.prefetch_fill(line);
            }
        }
    }

    /// Whether the i-cache currently holds `addr`'s line.
    pub fn icache_contains(&self, addr: u64) -> bool {
        self.icache.contains(addr)
    }

    /// Aggregated statistics.
    pub fn stats(&self) -> MemStats {
        MemStats {
            icache: self.icache.stats(),
            dcache: self.dcache.stats(),
            l2: self.l2.stats(),
            dram: self.dram.stats(),
            clpt_prefetches: self.clpt_prefetches,
            efetch_prefetches: self.efetch_prefetches,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn system() -> MemSystem {
        MemSystem::new(&MemConfig::google_tablet())
    }

    #[test]
    fn latency_composes_through_levels() {
        let mut mem = system();
        // Cold: L1 (2) + L2 (10) + DRAM activate (26+26+8).
        let cold = mem.ifetch(0x4_0000, 0);
        assert_eq!(cold, 2 + 10 + 60);
        // Warm L1.
        assert_eq!(mem.ifetch(0x4_0000, cold), 2);
    }

    #[test]
    fn l2_catches_l1_evictions() {
        let mut mem = system();
        let mut now = 0;
        // Fill well past the 32 KB i-cache but well inside the 2 MB L2.
        for i in 0..4096u64 {
            now += mem.ifetch(0x10_0000 + i * 64, now);
        }
        // The first line has left L1 but must still be in L2.
        let lat = mem.ifetch(0x10_0000, now);
        assert_eq!(lat, 2 + 10, "L1 miss, L2 hit");
    }

    #[test]
    fn data_and_instruction_paths_are_separate_l1s() {
        let mut mem = system();
        let addr = 0x20_0000;
        let _ = mem.data_access(addr, 0);
        // The i-cache never saw this line; only L2 did.
        let lat = mem.ifetch(addr, 100);
        assert_eq!(lat, 2 + 10, "i-side L1 misses but shared L2 hits");
    }

    #[test]
    fn clpt_prefetch_hides_future_misses() {
        let mut mem = MemSystem::new(&MemConfig::google_tablet().with_clpt());
        let pc = 0x1000;
        mem.train_load_criticality(pc, 16);
        mem.train_load_criticality(pc, 16);
        mem.train_load_criticality(pc, 16);
        mem.train_load_criticality(pc, 16);
        mem.train_load_criticality(pc, 16);
        mem.train_load_criticality(pc, 16);
        mem.train_load_criticality(pc, 16);
        mem.train_load_criticality(pc, 16);
        // Streaming loads with stride 64.
        let mut now = 0;
        let _ = mem.data_access(0x100_0000, now);
        mem.observe_load(pc, 0x100_0000, now);
        now += 100;
        // The prefetcher stages several lines ahead of the miss line.
        let lat = mem.data_access(0x100_0100, now);
        assert_eq!(lat, 2, "prefetched line hits L1D");
        assert!(mem.stats().clpt_prefetches >= 1);
    }

    #[test]
    fn efetch_prefetch_warms_the_icache() {
        let mut mem = MemSystem::new(&MemConfig::google_tablet().with_efetch());
        let (a, b) = (0x5_0000u64, 0x6_0000u64);
        let mut now = 0;
        for _ in 0..4 {
            mem.observe_call(a, now);
            mem.observe_call(b, now);
            now += 1000;
        }
        // After calling a, EFetch predicts b and prefetches it.
        mem.observe_call(a, now);
        assert!(
            mem.icache_contains(b),
            "predicted callee body staged in i-cache"
        );
        assert!(mem.stats().efetch_prefetches >= 1);
    }

    #[test]
    fn stats_accumulate() {
        let mut mem = system();
        let _ = mem.ifetch(0, 0);
        let _ = mem.ifetch(0, 10);
        let _ = mem.data_access(1 << 20, 20);
        let s = mem.stats();
        assert_eq!(s.icache.accesses, 2);
        assert_eq!(s.icache.misses, 1);
        assert_eq!(s.dcache.accesses, 1);
        assert_eq!(s.l2.accesses, 2);
        assert_eq!(s.dram.accesses, 2);
    }

    #[test]
    fn level_counters_mirror_the_raw_stats() {
        let mut mem = system();
        let _ = mem.ifetch(0, 0);
        let _ = mem.ifetch(0, 10);
        let _ = mem.data_access(1 << 20, 20);
        let s = mem.stats();
        let levels = s.level_counters();
        assert_eq!(levels.l1i_accesses, s.icache.accesses);
        assert_eq!(levels.l1i_misses, s.icache.misses);
        assert_eq!(levels.l1d_accesses, s.dcache.accesses);
        assert_eq!(levels.l1d_misses, s.dcache.misses);
        assert_eq!(levels.l2_accesses, s.l2.accesses);
        assert_eq!(levels.l2_misses, s.l2.misses);
        assert_eq!(levels.dram_accesses, s.dram.accesses);
    }
}
