//! A set-associative, LRU, write-allocate cache model.

use serde::{Deserialize, Serialize};

/// Geometry and timing of one cache level.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct CacheConfig {
    /// Total capacity in bytes.
    pub size_bytes: u64,
    /// Associativity.
    pub ways: u32,
    /// Line size in bytes.
    pub line_bytes: u64,
    /// Hit latency in CPU cycles.
    pub hit_latency: u64,
}

impl CacheConfig {
    /// Builds a config, validating the geometry.
    ///
    /// # Panics
    ///
    /// Panics if any dimension is zero, if `line_bytes` is not a power of
    /// two, or if the geometry does not divide evenly into sets.
    pub fn new(size_bytes: u64, ways: u32, line_bytes: u64, hit_latency: u64) -> CacheConfig {
        assert!(
            size_bytes > 0 && ways > 0 && line_bytes > 0,
            "zero cache dimension"
        );
        assert!(
            line_bytes.is_power_of_two(),
            "line size must be a power of two"
        );
        let lines = size_bytes / line_bytes;
        assert!(
            lines.is_multiple_of(u64::from(ways)),
            "capacity must divide into sets"
        );
        let sets = lines / u64::from(ways);
        assert!(sets.is_power_of_two(), "set count must be a power of two");
        CacheConfig {
            size_bytes,
            ways,
            line_bytes,
            hit_latency,
        }
    }

    /// Number of sets.
    pub fn sets(&self) -> u64 {
        self.size_bytes / self.line_bytes / u64::from(self.ways)
    }
}

/// Access/miss counters for one cache.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct CacheStats {
    /// Demand accesses (prefetch fills are not counted).
    pub accesses: u64,
    /// Demand misses.
    pub misses: u64,
    /// Lines installed by prefetch.
    pub prefetch_fills: u64,
    /// Demand hits on prefetched lines (prefetch usefulness).
    pub prefetch_hits: u64,
}

impl CacheStats {
    /// Miss ratio over demand accesses.
    pub fn miss_ratio(&self) -> f64 {
        if self.accesses == 0 {
            0.0
        } else {
            self.misses as f64 / self.accesses as f64
        }
    }
}

#[derive(Debug, Clone, Copy, Default)]
struct Line {
    tag: u64,
    lru: u64,
    /// Validity is epoch-tagged: a line is live iff its epoch matches the
    /// cache's current epoch, so invalidating the whole cache is one
    /// counter bump instead of a walk over every line.
    epoch: u64,
    prefetched: bool,
}

/// A set-associative cache with true-LRU replacement.
///
/// The model tracks only tags — data never matters for timing — and uses a
/// monotone access counter for LRU ordering.
#[derive(Debug, Clone)]
pub struct Cache {
    config: CacheConfig,
    sets: Vec<Line>,
    ways: usize,
    set_mask: u64,
    line_shift: u32,
    tick: u64,
    /// Current validity epoch; lines whose epoch differs are invalid.
    epoch: u64,
    stats: CacheStats,
}

impl Cache {
    /// Builds an empty (all-invalid) cache.
    pub fn new(config: CacheConfig) -> Cache {
        let sets = config.sets();
        Cache {
            ways: config.ways as usize,
            sets: vec![Line::default(); (sets * u64::from(config.ways)) as usize],
            set_mask: sets - 1,
            line_shift: config.line_bytes.trailing_zeros(),
            config,
            tick: 0,
            // Default lines carry epoch 0, so starting at 1 makes the
            // freshly-allocated cache all-invalid without touching it.
            epoch: 1,
            stats: CacheStats::default(),
        }
    }

    /// Re-initializes to the all-invalid state [`Cache::new`] produces,
    /// recycling the line array when the geometry is unchanged. Behavior
    /// after a reset is indistinguishable from a fresh cache.
    pub fn reset_to(&mut self, config: CacheConfig) {
        if config == self.config {
            self.epoch += 1;
            self.tick = 0;
            self.stats = CacheStats::default();
        } else {
            *self = Cache::new(config);
        }
    }

    /// The configuration.
    pub fn config(&self) -> &CacheConfig {
        &self.config
    }

    /// Counters so far.
    pub fn stats(&self) -> CacheStats {
        self.stats
    }

    fn set_range(&self, addr: u64) -> (usize, u64) {
        let line = addr >> self.line_shift;
        let set = (line & self.set_mask) as usize;
        let tag = line >> self.set_mask.count_ones();
        (set * self.ways, tag)
    }

    /// A demand access: returns `true` on hit and updates LRU/fill state.
    pub fn access(&mut self, addr: u64) -> bool {
        self.tick += 1;
        self.stats.accesses += 1;
        let (base, tag) = self.set_range(addr);
        let epoch = self.epoch;
        for i in base..base + self.ways {
            let line = &mut self.sets[i];
            if line.epoch == epoch && line.tag == tag {
                line.lru = self.tick;
                if line.prefetched {
                    self.stats.prefetch_hits += 1;
                    line.prefetched = false;
                }
                return true;
            }
        }
        self.stats.misses += 1;
        self.fill(base, tag, false);
        false
    }

    /// A non-demand fill (prefetch): installs the line if absent.
    pub fn prefetch_fill(&mut self, addr: u64) {
        self.tick += 1;
        let (base, tag) = self.set_range(addr);
        for i in base..base + self.ways {
            if self.sets[i].epoch == self.epoch && self.sets[i].tag == tag {
                return; // already present
            }
        }
        self.stats.prefetch_fills += 1;
        self.fill(base, tag, true);
    }

    /// Checks presence without updating any state.
    pub fn contains(&self, addr: u64) -> bool {
        let (base, tag) = self.set_range(addr);
        self.sets[base..base + self.ways]
            .iter()
            .any(|l| l.epoch == self.epoch && l.tag == tag)
    }

    fn fill(&mut self, base: usize, tag: u64, prefetched: bool) {
        let victim = (base..base + self.ways)
            .min_by_key(|&i| {
                if self.sets[i].epoch == self.epoch {
                    self.sets[i].lru
                } else {
                    0
                }
            })
            .expect("ways >= 1");
        self.sets[victim] = Line {
            tag,
            lru: self.tick,
            epoch: self.epoch,
            prefetched,
        };
    }

    /// Invalidates everything (used between measurement samples). O(1):
    /// advancing the epoch strands every line in the past.
    pub fn flush(&mut self) {
        self.epoch += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> Cache {
        // 4 sets x 2 ways x 64B lines = 512B.
        Cache::new(CacheConfig::new(512, 2, 64, 2))
    }

    #[test]
    fn geometry_is_validated() {
        let c = CacheConfig::new(32 * 1024, 2, 64, 2);
        assert_eq!(c.sets(), 256);
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn rejects_odd_line_size() {
        let _ = CacheConfig::new(512, 2, 48, 2);
    }

    #[test]
    fn miss_then_hit() {
        let mut cache = tiny();
        assert!(!cache.access(0x1000));
        assert!(cache.access(0x1000));
        assert!(cache.access(0x1004), "same line");
        assert_eq!(cache.stats().accesses, 3);
        assert_eq!(cache.stats().misses, 1);
    }

    #[test]
    fn lru_evicts_the_oldest() {
        let mut cache = tiny();
        // Three distinct tags in the same set (set stride = 4 sets * 64B).
        let stride = 4 * 64;
        cache.access(0);
        cache.access(stride);
        cache.access(2 * stride); // evicts tag 0
        assert!(!cache.access(0), "oldest line was evicted");
        assert!(cache.access(2 * stride), "newest line survives");
    }

    #[test]
    fn lru_refresh_on_hit_protects_a_line() {
        let mut cache = tiny();
        let stride = 4 * 64;
        cache.access(0);
        cache.access(stride);
        cache.access(0); // refresh
        cache.access(2 * stride); // should evict `stride`, not 0
        assert!(cache.access(0));
        assert!(!cache.access(stride));
    }

    #[test]
    fn prefetch_fill_counts_usefulness() {
        let mut cache = tiny();
        cache.prefetch_fill(0x2000);
        assert!(cache.contains(0x2000));
        assert!(cache.access(0x2000), "prefetched line hits");
        assert_eq!(cache.stats().prefetch_fills, 1);
        assert_eq!(cache.stats().prefetch_hits, 1);
        // A second hit is an ordinary hit, not a prefetch hit.
        cache.access(0x2000);
        assert_eq!(cache.stats().prefetch_hits, 1);
    }

    #[test]
    fn duplicate_prefetch_is_idempotent() {
        let mut cache = tiny();
        cache.prefetch_fill(0x40);
        cache.prefetch_fill(0x40);
        assert_eq!(cache.stats().prefetch_fills, 1);
    }

    #[test]
    fn flush_empties_the_cache() {
        let mut cache = tiny();
        cache.access(0x80);
        cache.flush();
        assert!(!cache.contains(0x80));
    }

    #[test]
    fn miss_ratio_reports_correctly() {
        let mut cache = tiny();
        for i in 0..8u64 {
            cache.access(i * 64);
        }
        // 8 lines, capacity 8 lines: all cold misses.
        assert!((cache.stats().miss_ratio() - 1.0).abs() < f64::EPSILON);
        cache.access(7 * 64);
        assert!(cache.stats().miss_ratio() < 1.0);
    }
}
