//! SoC energy model (paper Sec. IV-F, Fig. 10c).
//!
//! A McPAT-flavoured event-energy model: each component charges a dynamic
//! energy per event plus leakage per cycle, and the *rest of the SoC*
//! (display, radios, accelerators) charges per unit of app activity —
//! fixed per workload, not per CPU cycle, because speeding the CPU up does
//! not shorten the user's session. That split is what turns a 15% CPU-only
//! energy saving into the paper's ~4.6% system-wide saving.
//!
//! The CDP decode extension's cost is charged from the paper's own
//! synthesis numbers (80 µm², 58 µW dynamic, 414 nW leakage at 45 nm) —
//! negligible, but accounted.
//!
//! # Example
//!
//! ```
//! use critic_energy::EnergyModel;
//! use critic_pipeline::SimResult;
//!
//! let model = EnergyModel::default();
//! let result = SimResult { cycles: 1_000_000, committed: 1_200_000, ..Default::default() };
//! let energy = model.evaluate(&result);
//! assert!(energy.system_nj() > energy.cpu_nj());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use critic_pipeline::SimResult;
use serde::{Deserialize, Serialize};

/// Per-event and per-cycle energy parameters, in nanojoules.
///
/// Absolute values are representative of a ~2 GHz 28 nm mobile core; only
/// *relative* deltas between design points matter for the reproduced
/// figures. The defaults are calibrated so the CPU complex (core + L1s +
/// L2) draws roughly 30% of SoC energy at baseline, matching the ratio the
/// paper's 15%-CPU → 4.6%-system numbers imply.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct EnergyModel {
    /// Core dynamic energy per committed instruction.
    pub core_per_insn: f64,
    /// Core leakage + clock per cycle.
    pub core_per_cycle: f64,
    /// I-cache access energy.
    pub icache_access: f64,
    /// D-cache access energy.
    pub dcache_access: f64,
    /// L2 access energy.
    pub l2_access: f64,
    /// DRAM energy per access (column burst).
    pub dram_access: f64,
    /// Extra DRAM energy per activate (row miss/conflict).
    pub dram_activate: f64,
    /// DRAM background energy per CPU cycle.
    pub dram_per_cycle: f64,
    /// CDP decode-extension energy per switch (from the paper's 45 nm
    /// synthesis: 58 µW at 160 ps ≈ 9 aJ — rounded up generously).
    pub cdp_switch: f64,
    /// Rest-of-SoC energy per committed instruction of app activity
    /// (display, GPU, radios — independent of CPU speed).
    pub soc_rest_per_insn: f64,
}

impl Default for EnergyModel {
    fn default() -> Self {
        EnergyModel {
            core_per_insn: 0.10,
            core_per_cycle: 0.28,
            icache_access: 0.05,
            dcache_access: 0.06,
            l2_access: 0.40,
            dram_access: 4.0,
            dram_activate: 2.0,
            dram_per_cycle: 0.05,
            cdp_switch: 0.0001,
            soc_rest_per_insn: 0.85,
        }
    }
}

/// Energy of one run, broken down by component (all in nJ).
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct EnergyBreakdown {
    /// Core pipeline (dynamic + leakage).
    pub core: f64,
    /// Instruction cache.
    pub icache: f64,
    /// Data cache.
    pub dcache: f64,
    /// Shared L2.
    pub l2: f64,
    /// DRAM.
    pub dram: f64,
    /// Everything else on the SoC.
    pub soc_rest: f64,
}

impl EnergyBreakdown {
    /// CPU-complex energy (core + L1s + L2) — the paper's "CPU execution
    /// alone" 15% number is over this.
    pub fn cpu_nj(&self) -> f64 {
        self.core + self.icache + self.dcache + self.l2
    }

    /// Whole-SoC energy — the paper's 4.6% number is over this.
    pub fn system_nj(&self) -> f64 {
        self.cpu_nj() + self.dram + self.soc_rest
    }

    /// Fractional system-wide saving of `self` relative to `baseline`,
    /// attributable to one component selector.
    pub fn system_saving_from(
        &self,
        baseline: &EnergyBreakdown,
        component: fn(&EnergyBreakdown) -> f64,
    ) -> f64 {
        (component(baseline) - component(self)) / baseline.system_nj()
    }

    /// Total system-wide fractional saving relative to `baseline`.
    pub fn system_saving(&self, baseline: &EnergyBreakdown) -> f64 {
        (baseline.system_nj() - self.system_nj()) / baseline.system_nj()
    }

    /// CPU-only fractional saving relative to `baseline`.
    pub fn cpu_saving(&self, baseline: &EnergyBreakdown) -> f64 {
        (baseline.cpu_nj() - self.cpu_nj()) / baseline.cpu_nj()
    }
}

impl EnergyModel {
    /// Charges a simulation run.
    pub fn evaluate(&self, result: &SimResult) -> EnergyBreakdown {
        let cycles = result.cycles as f64;
        let m = &result.mem;
        // App activity: committed instructions excluding compiler-inserted
        // overheads would double-count; using committed keeps rest-of-SoC
        // effectively constant across design points of the same workload
        // (insertions are <2% of the stream).
        let activity = result.committed as f64;
        EnergyBreakdown {
            core: activity * self.core_per_insn
                + cycles * self.core_per_cycle
                + result.cdp_switches as f64 * self.cdp_switch,
            icache: (m.icache.accesses + m.icache.prefetch_fills) as f64 * self.icache_access,
            dcache: (m.dcache.accesses + m.dcache.prefetch_fills) as f64 * self.dcache_access,
            l2: (m.l2.accesses + m.l2.prefetch_fills) as f64 * self.l2_access,
            dram: m.dram.accesses as f64 * self.dram_access
                + (m.dram.row_misses + m.dram.row_conflicts) as f64 * self.dram_activate
                + cycles * self.dram_per_cycle,
            soc_rest: activity * self.soc_rest_per_insn,
        }
    }
}

#[cfg(test)]
mod tests {
    use critic_mem::MemStats;
    use critic_pipeline::SimResult;

    use super::*;

    fn result(cycles: u64, committed: u64, icache_acc: u64, dram_acc: u64) -> SimResult {
        let mut mem = MemStats::default();
        mem.icache.accesses = icache_acc;
        mem.dram.accesses = dram_acc;
        mem.dram.row_misses = dram_acc / 2;
        SimResult {
            cycles,
            committed,
            mem,
            ..Default::default()
        }
    }

    #[test]
    fn cpu_share_is_mobile_plausible() {
        // Calibration target: CPU complex ≈ 25–40% of SoC energy, so a 15%
        // CPU saving maps to ~4–6% system-wide, as in the paper.
        let r = result(1_000_000, 1_300_000, 300_000, 5_000);
        let e = EnergyModel::default().evaluate(&r);
        let share = e.cpu_nj() / e.system_nj();
        assert!(
            (0.25..=0.40).contains(&share),
            "cpu share {share:.3} outside the mobile band"
        );
    }

    #[test]
    fn faster_run_saves_cpu_but_not_soc_rest() {
        let model = EnergyModel::default();
        let base = model.evaluate(&result(1_000_000, 1_300_000, 300_000, 5_000));
        let fast = model.evaluate(&result(880_000, 1_300_000, 250_000, 5_000));
        assert!(fast.cpu_saving(&base) > 0.0);
        assert_eq!(
            fast.soc_rest, base.soc_rest,
            "session activity is unchanged"
        );
        let system = fast.system_saving(&base);
        let cpu = fast.cpu_saving(&base);
        assert!(system < cpu, "system saving is diluted by the SoC rest");
        assert!(system > 0.0);
    }

    #[test]
    fn component_attribution_sums_to_total() {
        let model = EnergyModel::default();
        let base = model.evaluate(&result(1_000_000, 1_300_000, 300_000, 5_000));
        let opt = model.evaluate(&result(900_000, 1_300_000, 200_000, 4_000));
        let parts = opt.system_saving_from(&base, |e| e.core)
            + opt.system_saving_from(&base, |e| e.icache)
            + opt.system_saving_from(&base, |e| e.dcache)
            + opt.system_saving_from(&base, |e| e.l2)
            + opt.system_saving_from(&base, |e| e.dram)
            + opt.system_saving_from(&base, |e| e.soc_rest);
        assert!((parts - opt.system_saving(&base)).abs() < 1e-9);
    }

    #[test]
    fn dram_activates_cost_extra() {
        let model = EnergyModel::default();
        let mut streaming = result(1_000_000, 1_000_000, 100_000, 10_000);
        streaming.mem.dram.row_misses = 0;
        let mut thrashing = result(1_000_000, 1_000_000, 100_000, 10_000);
        thrashing.mem.dram.row_misses = 10_000;
        let a = model.evaluate(&streaming);
        let b = model.evaluate(&thrashing);
        assert!(b.dram > a.dram);
    }

    #[test]
    fn cdp_switches_are_nearly_free() {
        let model = EnergyModel::default();
        let mut with = result(1_000_000, 1_000_000, 100_000, 1_000);
        with.cdp_switches = 50_000;
        let without = result(1_000_000, 1_000_000, 100_000, 1_000);
        let delta = model.evaluate(&with).core - model.evaluate(&without).core;
        assert!(
            delta > 0.0 && delta < 100.0,
            "CDP energy must be negligible: {delta}"
        );
    }
}
