//! Critical-instruction marking (paper Sec. II-A).
//!
//! "An instruction is critical if its execution time becomes visible in the
//! overall app execution"; the operational heuristic is fan-out observed in
//! the ROB: instructions whose result feeds at least `threshold` dependents.

use critic_workloads::Trace;
use serde::{Deserialize, Serialize};

/// Default fanout threshold (the paper fixes 8).
pub const DEFAULT_FANOUT_THRESHOLD: u32 = 8;

/// Marks each dynamic instruction critical iff its fanout crosses the
/// threshold.
pub fn mark_critical(fanout: &[u32], threshold: u32) -> Vec<bool> {
    fanout.iter().map(|&f| f >= threshold).collect()
}

/// Aggregate criticality statistics for one workload (Fig. 1a right axis).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CriticalitySummary {
    /// Dynamic instructions observed.
    pub instructions: u64,
    /// Instructions whose fanout crossed the threshold.
    pub critical: u64,
    /// The threshold used.
    pub threshold: u32,
    /// Maximum observed fanout.
    pub max_fanout: u32,
    /// Mean fanout over all instructions.
    pub mean_fanout: f64,
}

impl CriticalitySummary {
    /// Computes the summary for a trace.
    pub fn measure(trace: &Trace, fanout: &[u32], threshold: u32) -> CriticalitySummary {
        assert_eq!(trace.len(), fanout.len());
        let critical = fanout.iter().filter(|&&f| f >= threshold).count() as u64;
        let max_fanout = fanout.iter().copied().max().unwrap_or(0);
        let sum: u64 = fanout.iter().map(|&f| u64::from(f)).sum();
        let mean = if fanout.is_empty() {
            0.0
        } else {
            sum as f64 / fanout.len() as f64
        };
        CriticalitySummary {
            instructions: trace.len() as u64,
            critical,
            threshold,
            max_fanout,
            mean_fanout: mean,
        }
    }

    /// Fraction of dynamic instructions that are critical.
    pub fn critical_frac(&self) -> f64 {
        if self.instructions == 0 {
            0.0
        } else {
            self.critical as f64 / self.instructions as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use critic_workloads::suite::Suite;
    use critic_workloads::{ExecutionPath, Trace};

    use super::*;

    #[test]
    fn marking_respects_threshold() {
        let fanout = vec![0, 7, 8, 20];
        let marks = mark_critical(&fanout, 8);
        assert_eq!(marks, vec![false, false, true, true]);
    }

    fn summary_for(suite: Suite, len: usize) -> CriticalitySummary {
        let mut app = suite.apps()[0].clone();
        app.params.num_functions = app.params.num_functions.min(40);
        let program = app.generate_program();
        let path = ExecutionPath::generate(&program, 1, len);
        let trace = Trace::expand(&program, &path);
        let fanout = trace.compute_fanout();
        CriticalitySummary::measure(&trace, &fanout, DEFAULT_FANOUT_THRESHOLD)
    }

    #[test]
    fn mobile_has_more_criticals_than_spec() {
        // Fig. 1a right axis: "mobile apps have a much higher percentage of
        // critical instructions than their SPEC counterparts".
        let mobile = summary_for(Suite::Mobile, 40_000);
        let spec = summary_for(Suite::SpecFloat, 40_000);
        assert!(
            mobile.critical_frac() > spec.critical_frac(),
            "mobile {:.4} vs spec.float {:.4}",
            mobile.critical_frac(),
            spec.critical_frac()
        );
        assert!(mobile.critical_frac() > 0.01);
    }

    #[test]
    fn summary_reports_consistent_counts() {
        let s = summary_for(Suite::Mobile, 10_000);
        assert!(s.critical <= s.instructions);
        assert!(s.max_fanout >= DEFAULT_FANOUT_THRESHOLD);
        assert!(s.mean_fanout > 0.0);
    }
}
