//! Structured errors for the profiling analyses.

use std::fmt;

use critic_workloads::{ProgramError, TraceError};
use serde::{Deserialize, Serialize};

/// Why a profiling run refused its input.
///
/// The profiler walks trace-side block and instruction references straight
/// into the program's arenas, so a trace that does not belong to the
/// program (or a corrupted one) used to be an out-of-bounds panic deep in
/// the analysis. [`Profiler::try_build_profile`] cross-checks both inputs
/// up front and returns this instead.
///
/// [`Profiler::try_build_profile`]: crate::Profiler::try_build_profile
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum ProfileError {
    /// The program failed structural validation.
    InvalidProgram(ProgramError),
    /// The trace failed validation against the program (empty, oversized,
    /// dangling references, mismatched uids, or forward dependences).
    InvalidTrace(TraceError),
}

impl fmt::Display for ProfileError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ProfileError::InvalidProgram(e) => write!(f, "program is invalid: {e}"),
            ProfileError::InvalidTrace(e) => {
                write!(f, "trace does not belong to this program: {e}")
            }
        }
    }
}

impl std::error::Error for ProfileError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ProfileError::InvalidProgram(e) => Some(e),
            ProfileError::InvalidTrace(e) => Some(e),
        }
    }
}

impl From<ProgramError> for ProfileError {
    fn from(e: ProgramError) -> Self {
        ProfileError::InvalidProgram(e)
    }
}

impl From<TraceError> for ProfileError {
    fn from(e: TraceError) -> Self {
        ProfileError::InvalidTrace(e)
    }
}
