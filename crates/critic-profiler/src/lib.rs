//! The offline CritIC profiler (paper Sec. III-A and Fig. 7).
//!
//! The paper's pipeline is: run the app under emulation, feed the
//! instruction stream through a modified gem5 that observes each
//! instruction's ROB fan-out, dump all independently-schedulable
//! *Instruction Chains* (ICs), then aggregate offline (they used Spark) to
//! keep the highest-coverage chains whose **average fan-out per
//! instruction** crosses the criticality threshold (8). This crate performs
//! the same analysis over `critic-workloads` traces, in process:
//!
//! * [`critical`] — per-instruction criticality marking (fanout ≥ 8) and
//!   Fig. 1a's critical-instruction fractions;
//! * [`dfg`] — a compact forward def-use graph (CSR) over the trace;
//! * [`gaps`] — Fig. 1b: how many low-fanout instructions sit between two
//!   successive critical instructions in a dependence chain;
//! * [`chains`] — IC extraction, both the unconstrained dynamic form used
//!   for Fig. 5a's length/spread characterization and the block-contained
//!   form the optimizer consumes (any sub-path of an IC is an IC, Sec.
//!   III-A);
//! * [`profile`] — CritIC selection: dedupe chains by static identity, rank
//!   by dynamic coverage, apply the length cap and the all-or-nothing
//!   Thumb-convertibility filter, and emit the [`Profile`] the compiler
//!   pass consumes (Fig. 5b's coverage CDF also falls out here).
//!
//! # Example
//!
//! ```
//! use critic_profiler::{ProfilerConfig, Profiler};
//! use critic_workloads::{ExecutionPath, Trace};
//! use critic_workloads::suite::Suite;
//!
//! let mut app = Suite::Mobile.apps()[0].clone();
//! app.params.num_functions = 24;
//! let program = app.generate_program();
//! let path = ExecutionPath::generate(&program, 7, 20_000);
//! let trace = Trace::expand(&program, &path);
//!
//! let profiler = Profiler::new(ProfilerConfig::default());
//! let profile = profiler.build_profile(&program, &trace);
//! assert!(!profile.chains.is_empty(), "mobile apps are full of CritICs");
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![cfg_attr(not(test), warn(clippy::unwrap_used, clippy::expect_used))]

pub mod chains;
pub mod critical;
pub mod dfg;
pub mod error;
pub mod gaps;
pub mod io;
pub mod profile;

pub use chains::{ChainShape, DynChain};
pub use critical::CriticalitySummary;
pub use dfg::Dfg;
pub use error::ProfileError;
pub use gaps::GapHistogram;
pub use io::{load_profile, save_profile};
pub use profile::{ChainSpec, Profile, Profiler, ProfilerConfig};
