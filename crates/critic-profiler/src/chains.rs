//! Instruction-Chain (IC) extraction (paper Sec. III-A).
//!
//! An IC is "any acyclic path of a DFG that is independently schedulable at
//! that instant": every member after the head reads only values produced
//! inside the chain or before the chain started. Two extractors share one
//! greedy core:
//!
//! * [`extract_dynamic_ics`] — unconstrained (chains may span blocks and
//!   loop iterations), used for the Fig. 5a length/spread characterization,
//!   where SPEC's loop-carried dependences produce kilo-instruction chains;
//! * [`extract_block_ics`] — chains confined to one dynamic basic-block
//!   instance. These are what the optimizer can actually hoist; since any
//!   sub-path of an IC is itself an IC (Sec. III-A), restricting to
//!   block-contained sub-paths is sound.

use serde::{Deserialize, Serialize};

use critic_workloads::Trace;

use crate::dfg::Dfg;

/// Fanout at or above which an instruction is preferred as a chain head.
const CRITICAL_HEAD_THRESHOLD: u32 = 8;

/// One extracted dynamic chain: member indices into the trace, in
/// dependence order.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct DynChain {
    /// Trace indices of the members (strictly increasing).
    pub members: Vec<u32>,
}

impl DynChain {
    /// Chain length in instructions.
    pub fn len(&self) -> usize {
        self.members.len()
    }

    /// Whether the chain has no members.
    pub fn is_empty(&self) -> bool {
        self.members.is_empty()
    }

    /// Spread: dynamic-stream distance from head to tail (Fig. 5a).
    pub fn spread(&self) -> u32 {
        match (self.members.first(), self.members.last()) {
            (Some(&first), Some(&last)) => last - first,
            _ => 0,
        }
    }

    /// Average fanout per member — the paper's IC criticality metric.
    pub fn avg_fanout(&self, fanout: &[u32]) -> f64 {
        if self.members.is_empty() {
            return 0.0;
        }
        let sum: u64 = self
            .members
            .iter()
            .map(|&m| u64::from(fanout[m as usize]))
            .sum();
        sum as f64 / self.members.len() as f64
    }
}

/// Shared greedy chain growth.
///
/// `boundary` is the earliest trace index whose values count as *internal*:
/// dependences on instructions before it are external inputs (already
/// available), dependences on instructions at/after it must be chain
/// members for the chain to stay self-contained.
struct Grower<'a> {
    dfg: &'a Dfg,
    trace: &'a Trace,
    fanout: &'a [u32],
    claimed: Vec<bool>,
    stamp: Vec<u32>,
    chain_id: u32,
}

impl<'a> Grower<'a> {
    fn new(dfg: &'a Dfg, trace: &'a Trace, fanout: &'a [u32]) -> Grower<'a> {
        let n = trace.len();
        Grower {
            dfg,
            trace,
            fanout,
            claimed: vec![false; n],
            stamp: vec![u32::MAX; n],
            chain_id: 0,
        }
    }

    /// Grows a chain from `head`, bounded by `limit` (exclusive end of the
    /// eligible region), `spread_cap`, and `len_cap`.
    fn grow(
        &mut self,
        head: u32,
        boundary: u32,
        limit: u32,
        spread_cap: u32,
        len_cap: usize,
    ) -> Vec<u32> {
        self.chain_id = self.chain_id.wrapping_add(1);
        let id = self.chain_id;
        let mut members = vec![head];
        self.stamp[head as usize] = id;
        let mut cur = head;
        while members.len() < len_cap {
            let mut best: Option<(u32, u64)> = None;
            for &cand in self.dfg.consumers(cur) {
                if cand >= limit || cand - head > spread_cap {
                    break;
                }
                if self.claimed[cand as usize] || self.stamp[cand as usize] == id {
                    continue;
                }
                // Self-containment: every dependence must be external
                // (before `boundary`) or a chain member.
                let ok = self.trace.entries[cand as usize]
                    .deps_iter()
                    .all(|d| d < boundary || self.stamp[d as usize] == id);
                if !ok {
                    continue;
                }
                // Prefer the continuation leading toward critical members:
                // a candidate scores by its own fanout plus a one-hop
                // lookahead over *eligible* continuations, so low-fanout gap
                // instructions that lead to the next critical beat dead-end
                // consumers.
                let score = self.score(cand, id, boundary, limit);
                match best {
                    Some((_, best_score)) if best_score >= score => {}
                    _ => best = Some((cand, score)),
                }
            }
            let Some((next, _)) = best else { break };
            self.stamp[next as usize] = id;
            members.push(next);
            cur = next;
        }
        members
    }

    /// Candidate score: own fanout plus the best fanout among one-hop
    /// continuations that would themselves be eligible chain members.
    fn score(&self, cand: u32, id: u32, boundary: u32, limit: u32) -> u64 {
        let own = u64::from(self.fanout[cand as usize]);
        let ahead = self
            .dfg
            .consumers(cand)
            .iter()
            .take_while(|&&c| c < limit)
            .filter(|&&c2| {
                !self.claimed[c2 as usize]
                    && self.trace.entries[c2 as usize]
                        .deps_iter()
                        .all(|d| d < boundary || self.stamp[d as usize] == id || d == cand)
            })
            .map(|&c| u64::from(self.fanout[c as usize]))
            .max()
            .unwrap_or(0);
        own + 2 * ahead
    }

    fn claim(&mut self, members: &[u32]) {
        for &m in members {
            self.claimed[m as usize] = true;
        }
    }

    /// Clears the stamps of a rejected (too short) chain so its head stays
    /// available as a member of later chains.
    fn unstamp(&mut self, members: &[u32]) {
        for &m in members {
            self.stamp[m as usize] = u32::MAX;
        }
    }
}

/// Extracts disjoint dynamic ICs over the whole trace (Fig. 5a analysis).
///
/// Chains start at unclaimed instructions in trace order, grow greedily
/// through the forward DFG, and are kept when at least two members long.
pub fn extract_dynamic_ics(
    trace: &Trace,
    dfg: &Dfg,
    fanout: &[u32],
    spread_cap: u32,
    len_cap: usize,
) -> Vec<DynChain> {
    let n = trace.len() as u32;
    let mut grower = Grower::new(dfg, trace, fanout);
    let mut chains = Vec::new();
    // Critical heads first, so high-value chains are not swallowed as the
    // tail of some low-value chain started earlier.
    let critical_pass = (0..n).filter(|&i| fanout[i as usize] >= CRITICAL_HEAD_THRESHOLD);
    for head in critical_pass.chain(0..n) {
        if grower.claimed[head as usize] {
            continue;
        }
        let members = grower.grow(head, head, n, spread_cap, len_cap);
        if members.len() >= 2 {
            grower.claim(&members);
            chains.push(DynChain { members });
        } else {
            grower.unstamp(&members);
        }
    }
    chains.sort_by_key(|c| c.members[0]);
    chains
}

/// Extracts disjoint ICs confined to single dynamic block instances — the
/// optimizer's raw material.
pub fn extract_block_ics(trace: &Trace, dfg: &Dfg, fanout: &[u32]) -> Vec<DynChain> {
    let mut grower = Grower::new(dfg, trace, fanout);
    let mut chains = Vec::new();
    let n = trace.len();
    let mut start = 0usize;
    while start < n {
        // A block instance is a maximal run with at.index increasing from 0.
        let mut end = start + 1;
        while end < n
            && trace.entries[end].at.index > 0
            && trace.entries[end].at.block == trace.entries[start].at.block
        {
            end += 1;
        }
        let critical_pass = (start..end).filter(|&i| fanout[i] >= CRITICAL_HEAD_THRESHOLD);
        for head in critical_pass.chain(start..end) {
            if grower.claimed[head] {
                continue;
            }
            let members = grower.grow(
                head as u32,
                start as u32,
                end as u32,
                (end - start) as u32,
                usize::MAX,
            );
            if members.len() >= 2 {
                grower.claim(&members);
                chains.push(DynChain { members });
            } else {
                grower.unstamp(&members);
            }
        }
        start = end;
    }
    chains.sort_by_key(|c| c.members[0]);
    chains
}

/// Length/spread distribution summary (Fig. 5a).
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct ChainShape {
    /// Chains observed.
    pub count: u64,
    /// Longest chain.
    pub max_len: u32,
    /// Mean chain length.
    pub mean_len: f64,
    /// 99th-percentile chain length.
    pub p99_len: u32,
    /// Largest spread.
    pub max_spread: u32,
    /// Mean spread.
    pub mean_spread: f64,
    /// 99th-percentile spread.
    pub p99_spread: u32,
}

impl ChainShape {
    /// Summarizes a chain population.
    pub fn measure(chains: &[DynChain]) -> ChainShape {
        if chains.is_empty() {
            return ChainShape::default();
        }
        let mut lens: Vec<u32> = chains.iter().map(|c| c.len() as u32).collect();
        let mut spreads: Vec<u32> = chains.iter().map(DynChain::spread).collect();
        lens.sort_unstable();
        spreads.sort_unstable();
        let p99 = |v: &[u32]| v[(v.len().saturating_sub(1)) * 99 / 100];
        ChainShape {
            count: chains.len() as u64,
            max_len: lens.last().copied().unwrap_or(0),
            mean_len: lens.iter().map(|&l| f64::from(l)).sum::<f64>() / lens.len() as f64,
            p99_len: p99(&lens),
            max_spread: spreads.last().copied().unwrap_or(0),
            mean_spread: spreads.iter().map(|&s| f64::from(s)).sum::<f64>() / spreads.len() as f64,
            p99_spread: p99(&spreads),
        }
    }
}

#[cfg(test)]
mod tests {
    use critic_workloads::suite::Suite;
    use critic_workloads::{ExecutionPath, Trace};

    use super::*;

    fn setup(suite: Suite, len: usize) -> (Trace, Vec<u32>, Dfg) {
        let mut app = suite.apps()[0].clone();
        app.params.num_functions = app.params.num_functions.min(32);
        let program = app.generate_program();
        let path = ExecutionPath::generate(&program, 11, len);
        let trace = Trace::expand(&program, &path);
        let fanout = trace.compute_fanout();
        let dfg = Dfg::build(&trace);
        (trace, fanout, dfg)
    }

    fn assert_well_formed(trace: &Trace, chains: &[DynChain]) {
        let mut seen = std::collections::HashSet::new();
        for chain in chains {
            assert!(chain.len() >= 2);
            // Members strictly increase and are disjoint across chains.
            assert!(chain.members.windows(2).all(|w| w[0] < w[1]));
            for &m in &chain.members {
                assert!(seen.insert(m), "member {m} claimed twice");
            }
            // Consecutive members are def-use linked.
            for w in chain.members.windows(2) {
                let consumer = &trace.entries[w[1] as usize];
                assert!(
                    consumer.deps_iter().any(|d| d == w[0]),
                    "chain link {}->{} is not a dependence",
                    w[0],
                    w[1]
                );
            }
        }
    }

    #[test]
    fn dynamic_chains_are_well_formed() {
        let (trace, fanout, dfg) = setup(Suite::Mobile, 15_000);
        let chains = extract_dynamic_ics(&trace, &dfg, &fanout, 8192, 4096);
        assert!(!chains.is_empty());
        assert_well_formed(&trace, &chains);
    }

    #[test]
    fn dynamic_chains_are_self_contained() {
        let (trace, fanout, dfg) = setup(Suite::Mobile, 10_000);
        let chains = extract_dynamic_ics(&trace, &dfg, &fanout, 8192, 4096);
        for chain in &chains {
            let head = chain.members[0];
            for &m in &chain.members[1..] {
                for d in trace.entries[m as usize].deps_iter() {
                    assert!(
                        d < head || chain.members.contains(&d),
                        "member {m} depends on {d}, outside the chain"
                    );
                }
            }
        }
    }

    #[test]
    fn block_chains_stay_within_one_block_instance() {
        let (trace, fanout, dfg) = setup(Suite::Mobile, 15_000);
        let chains = extract_block_ics(&trace, &dfg, &fanout);
        assert!(!chains.is_empty());
        assert_well_formed(&trace, &chains);
        for chain in &chains {
            let block = trace.entries[chain.members[0] as usize].at.block;
            for &m in &chain.members {
                assert_eq!(trace.entries[m as usize].at.block, block);
            }
            // Members of one dynamic instance: indices within block are
            // strictly increasing.
            assert!(chain
                .members
                .windows(2)
                .all(|w| trace.entries[w[0] as usize].at.index
                    < trace.entries[w[1] as usize].at.index));
        }
    }

    #[test]
    fn spec_chains_are_longer_and_wider_spread_than_mobile() {
        // Fig. 5a: SPEC ICs reach kilo-instruction lengths via loop-carried
        // dependences; mobile ICs stay short and close.
        let (trace_m, fanout_m, dfg_m) = setup(Suite::Mobile, 30_000);
        let mobile = ChainShape::measure(&extract_dynamic_ics(
            &trace_m, &dfg_m, &fanout_m, 8192, 4096,
        ));
        let (trace_s, fanout_s, dfg_s) = setup(Suite::SpecFloat, 30_000);
        let spec = ChainShape::measure(&extract_dynamic_ics(
            &trace_s, &dfg_s, &fanout_s, 8192, 4096,
        ));
        assert!(
            spec.max_len > mobile.max_len * 3,
            "spec max_len {} vs mobile {}",
            spec.max_len,
            mobile.max_len
        );
        assert!(
            spec.max_spread > mobile.max_spread,
            "spec spread {} vs mobile {}",
            spec.max_spread,
            mobile.max_spread
        );
        assert!(mobile.max_len >= 4, "mobile chains exist");
    }

    #[test]
    fn avg_fanout_is_the_member_mean() {
        let chain = DynChain {
            members: vec![0, 2, 5],
        };
        let fanout = vec![12, 0, 3, 0, 0, 9];
        assert!((chain.avg_fanout(&fanout) - 8.0).abs() < 1e-9);
        assert_eq!(chain.spread(), 5);
    }

    #[test]
    fn shape_of_empty_population() {
        assert_eq!(ChainShape::measure(&[]), ChainShape::default());
    }
}
