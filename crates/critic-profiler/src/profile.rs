//! CritIC selection: from profiled fanout to the compiler-facing profile.
//!
//! Mirrors the paper's offline aggregation (Sec. III-C, "Identifying
//! CritICs"): observe per-instruction ROB fanout over the profiled part of
//! the execution, extract the independently-schedulable chains of each
//! basic block from the (optimized) DFG, keep those whose average fanout
//! per instruction crosses the threshold (8), rank by dynamic coverage, and
//! hand the compiler a compact profile ("relatively concise (~10 KB) to
//! account for ~30% of dynamic coverage").
//!
//! Chain identity is *static* — a basic block plus an instruction-uid
//! sequence — exactly what the ART-style compiler pass needs; the trace
//! contributes each static instruction's average dynamic fanout and each
//! block's execution count.
//!
//! Two knobs reproduce the paper's design points:
//!
//! * `max_chain_len = Some(5)` and `require_thumb = true` → the realistic
//!   **CritIC** scheme; setting both off (`None` / `false`) is
//!   **CritIC.Ideal** (Sec. IV-D);
//! * `profile_fraction` reproduces Fig. 12b's profiling-coverage
//!   sensitivity; the paper's headline results profile 72% of execution.

use critic_workloads::{BasicBlock, BlockId, DynInsn, InsnUid, Program, Trace, TraceStream};

use crate::error::ProfileError;
#[allow(unused_imports)]
use critic_workloads::trace as _trace_docs;
use serde::{Deserialize, Serialize};

/// Profiler configuration.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ProfilerConfig {
    /// Fanout threshold marking an instruction critical (paper: 8).
    pub fanout_threshold: u32,
    /// Average-fanout-per-instruction threshold marking an IC a CritIC
    /// (paper: 8).
    ///
    /// The chain metric uses the ROB *cone* fanout
    /// ([`Trace::compute_cone_fanout`]): dependents that transitively
    /// "require its output before they can begin" (Sec. II-A). Direct-reader
    /// fanout cannot arithmetically support the paper's reported chain
    /// coverage (total register reads are ~1.3 per instruction), so the
    /// cone is the consistent reading of the ROB-observed heuristic.
    pub chain_avg_threshold: f64,
    /// Length cap on selected chains (`None` = unbounded, CritIC.Ideal).
    /// Longer chains contribute their prefix, since any sub-path of an IC
    /// is an IC.
    pub max_chain_len: Option<usize>,
    /// Keep only chains whose every instruction is Thumb-convertible
    /// (the all-or-nothing rule; `false` = CritIC.Ideal).
    pub require_thumb: bool,
    /// Fraction of the execution that is profiled (Fig. 12b). The paper's
    /// headline configuration profiles 72%.
    pub profile_fraction: f64,
    /// Keep at most this many chains, by descending coverage.
    pub max_chains: usize,
}

impl Default for ProfilerConfig {
    fn default() -> Self {
        ProfilerConfig {
            fanout_threshold: 8,
            chain_avg_threshold: 8.0,
            max_chain_len: Some(5),
            require_thumb: true,
            profile_fraction: 0.72,
            max_chains: 2048,
        }
    }
}

impl ProfilerConfig {
    /// The CritIC.Ideal configuration: no length cap, no Thumb filter.
    pub fn ideal() -> ProfilerConfig {
        ProfilerConfig {
            max_chain_len: None,
            require_thumb: false,
            ..ProfilerConfig::default()
        }
    }
}

/// One selected CritIC: a static chain the compiler will hoist and convert.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ChainSpec {
    /// The basic block containing the chain.
    pub block: BlockId,
    /// Member instructions, by stable uid, in dependence order.
    pub uids: Vec<InsnUid>,
    /// Dynamic instances observed in the profiled window.
    pub dynamic_count: u64,
    /// Mean member fanout (per-uid average dynamic fanout).
    pub avg_fanout: f64,
    /// Whether every member passed the Thumb conversion predicate.
    pub thumb_convertible: bool,
}

impl ChainSpec {
    /// Chain length in instructions.
    pub fn len(&self) -> usize {
        self.uids.len()
    }

    /// Whether the chain is empty (never true for emitted specs).
    pub fn is_empty(&self) -> bool {
        self.uids.is_empty()
    }

    /// Dynamic instructions this chain accounts for in the profile window.
    pub fn dynamic_instructions(&self) -> u64 {
        self.dynamic_count * self.uids.len() as u64
    }
}

/// Population counters from a profiling run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct ProfileStats {
    /// Dynamic instructions in the profiled window.
    pub profiled_insns: u64,
    /// Distinct static chains observed (before criticality filtering).
    pub unique_chains: u64,
    /// Chains passing the average-fanout threshold.
    pub critical_chains: u64,
    /// Of the critical chains, the fraction that is fully
    /// Thumb-convertible (Fig. 5b reports ~95.5%).
    pub convertible_frac: f64,
}

/// The profiler output the compiler consumes.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Profile {
    /// Selected chains, ranked by dynamic coverage (descending).
    pub chains: Vec<ChainSpec>,
    /// Fraction of the profiled dynamic stream the selected chains cover.
    pub dynamic_coverage: f64,
    /// Population counters.
    pub stats: ProfileStats,
}

impl Profile {
    /// An empty profile (the baseline compiler input).
    pub fn empty() -> Profile {
        Profile {
            chains: Vec::new(),
            dynamic_coverage: 0.0,
            stats: ProfileStats::default(),
        }
    }
}

/// The offline profiler.
#[derive(Debug, Clone, Default)]
pub struct Profiler {
    config: ProfilerConfig,
}

impl Profiler {
    /// Creates a profiler with the given configuration.
    pub fn new(config: ProfilerConfig) -> Profiler {
        Profiler { config }
    }

    /// The configuration.
    pub fn config(&self) -> &ProfilerConfig {
        &self.config
    }

    /// Runs the full analysis over one (program, trace) pair.
    ///
    /// # Panics
    ///
    /// Panics if the trace references blocks or instructions outside the
    /// program — i.e. the trace was not expanded from this program. Use
    /// [`Profiler::try_build_profile`] to get a [`ProfileError`] instead.
    pub fn build_profile(&self, program: &Program, trace: &Trace) -> Profile {
        match self.try_build_profile(program, trace) {
            Ok(profile) => profile,
            Err(e) => panic!("profiling failed: {e}"),
        }
    }

    /// Fallible variant of [`Profiler::build_profile`]: validates the
    /// program structurally and the trace against the program before any
    /// analysis, so mismatched or corrupted inputs yield a typed
    /// [`ProfileError`] instead of an out-of-bounds panic mid-analysis.
    pub fn try_build_profile(
        &self,
        program: &Program,
        trace: &Trace,
    ) -> Result<Profile, ProfileError> {
        program.validate()?;
        trace.validate(program)?;
        let cone = trace.compute_cone_fanout(128);
        Ok(self.build_validated(program, trace, &cone))
    }

    /// Like [`Profiler::try_build_profile`] but consumes a precomputed
    /// ROB-cone fanout vector (`trace.compute_cone_fanout(128)`). The cone
    /// is configuration-independent, so callers profiling one trace under
    /// several configurations compute it once and share it.
    ///
    /// # Panics
    ///
    /// Panics if `cone.len() != trace.len()` — the cone was computed from a
    /// different trace.
    pub fn try_build_profile_with_cone(
        &self,
        program: &Program,
        trace: &Trace,
        cone: &[u32],
    ) -> Result<Profile, ProfileError> {
        assert_eq!(
            cone.len(),
            trace.len(),
            "cone fanout does not match the trace"
        );
        program.validate()?;
        trace.validate(program)?;
        Ok(self.build_validated(program, trace, cone))
    }

    /// Like [`Profiler::try_build_profile_with_cone`] but skips the
    /// program/trace re-validation. The caller guarantees that `trace` was
    /// expanded from `program` and that both already passed validation —
    /// the contract of a campaign store's shared world, whose parts are
    /// validated once at construction and shared read-only. A
    /// mismatched pair panics mid-analysis instead of returning an error.
    ///
    /// # Panics
    ///
    /// Panics if `cone.len() != trace.len()`, or (possibly) if the trace
    /// was not expanded from the program.
    pub fn build_profile_prevalidated(
        &self,
        program: &Program,
        trace: &Trace,
        cone: &[u32],
    ) -> Profile {
        assert_eq!(
            cone.len(),
            trace.len(),
            "cone fanout does not match the trace"
        );
        self.build_validated(program, trace, cone)
    }

    /// Streaming variant of [`Profiler::try_build_profile`]: folds the
    /// chain/CritIC statistics over a [`TraceStream`]'s windows without
    /// ever holding the trace, and produces a bit-identical [`Profile`]
    /// (the fold accumulates the same integer sums in the same order, and
    /// the scoring tail is shared code).
    ///
    /// The stream must be fresh (nothing emitted yet) and cone-enabled
    /// with the profiler's ROB horizon
    /// (`StreamConfig::cone_window == Some(128)`); only the profiled
    /// prefix is consumed.
    ///
    /// # Panics
    ///
    /// Panics if the stream has already emitted entries or was opened
    /// without a cone window.
    pub fn try_build_profile_streamed(
        &self,
        program: &Program,
        stream: &mut TraceStream<'_>,
    ) -> Result<Profile, ProfileError> {
        program.validate()?;
        let cfg = &self.config;
        let window = ((stream.total_len() as f64) * cfg.profile_fraction.clamp(0.0, 1.0)) as usize;
        assert_eq!(stream.emitted(), 0, "profiling requires a fresh stream");
        let mut agg = ProfileAggregate::default();
        let mut seen = 0usize;
        'fold: while seen < window {
            let Some(w) = stream.next_window() else {
                break;
            };
            assert_eq!(
                w.cone.len(),
                w.entries.len(),
                "profiling requires a cone-enabled stream"
            );
            for (entry, &cone) in w.entries.iter().zip(w.cone) {
                if seen >= window {
                    break 'fold;
                }
                agg.observe(entry, cone);
                seen += 1;
            }
        }
        Ok(self.score(program, &agg, window))
    }

    /// The analysis proper; every trace-side reference is known to resolve.
    fn build_validated(&self, program: &Program, trace: &Trace, fanout: &[u32]) -> Profile {
        let cfg = &self.config;
        let window = ((trace.len() as f64) * cfg.profile_fraction.clamp(0.0, 1.0)) as usize;
        let mut agg = ProfileAggregate::default();
        for (i, entry) in trace.iter().enumerate().take(window) {
            agg.observe(entry, fanout[i]);
        }
        self.score(program, &agg, window)
    }

    /// The selection/ranking tail, shared by the materialized and streaming
    /// front-ends: scores each executed block's static chains against the
    /// folded per-uid averages and assembles the ranked profile.
    fn score(&self, program: &Program, agg: &ProfileAggregate, window: usize) -> Profile {
        let cfg = &self.config;
        let uid_fanout = &agg.uid_fanout;
        let block_visits = &agg.block_visits;
        let avg_of = |uid: InsnUid| -> f64 {
            uid_fanout
                .get(uid.0 as usize)
                .map_or(0.0, |&(sum, count)| sum as f64 / count.max(1) as f64)
        };

        let mut unique_chains = 0u64;
        let mut critical_chains = 0u64;
        let mut convertible_count = 0u64;
        let mut specs: Vec<ChainSpec> = Vec::new();
        // Index order over the dense table is ascending-BlockId order, the
        // same deterministic iteration the sorted map produced.
        for (bslot, &visits) in block_visits.iter().enumerate() {
            if visits == 0 {
                continue;
            }
            let block_id = BlockId(bslot as u32);
            let block = program.block(block_id);
            for chain in block_static_chains(block, &avg_of) {
                unique_chains += 1;
                let mut positions: &[usize] = &chain;
                if let Some(cap) = cfg.max_chain_len {
                    positions = &positions[..positions.len().min(cap)];
                }
                if positions.len() < 2 {
                    continue;
                }
                let avg_fanout = positions
                    .iter()
                    .map(|&p| avg_of(block.insns[p].uid))
                    .sum::<f64>()
                    / positions.len() as f64;
                if avg_fanout < cfg.chain_avg_threshold {
                    continue;
                }
                critical_chains += 1;
                let thumb_convertible = positions
                    .iter()
                    .all(|&p| block.insns[p].insn.thumb_convertible().is_ok());
                if thumb_convertible {
                    convertible_count += 1;
                }
                if cfg.require_thumb && !thumb_convertible {
                    continue; // all-or-nothing: the whole chain stays 32-bit
                }
                specs.push(ChainSpec {
                    block: block_id,
                    uids: positions.iter().map(|&p| block.insns[p].uid).collect(),
                    dynamic_count: visits,
                    avg_fanout,
                    thumb_convertible,
                });
            }
        }

        specs.sort_by(|a, b| {
            b.dynamic_instructions()
                .cmp(&a.dynamic_instructions())
                .then_with(|| a.block.cmp(&b.block))
                .then_with(|| a.uids.cmp(&b.uids))
        });
        specs.truncate(cfg.max_chains);

        let covered: u64 = specs.iter().map(ChainSpec::dynamic_instructions).sum();
        Profile {
            dynamic_coverage: covered as f64 / window.max(1) as f64,
            stats: ProfileStats {
                profiled_insns: window as u64,
                unique_chains,
                critical_chains,
                convertible_frac: if critical_chains == 0 {
                    0.0
                } else {
                    convertible_count as f64 / critical_chains as f64
                },
            },
            chains: specs,
        }
    }
}

/// The profiler's trace-side fold state: per-uid cone-fanout sums and
/// per-block execution counts over the profiled window. Uids and block ids
/// are dense program-wide indices, so lazily-grown flat vectors replace
/// hashing on this hot aggregation pass. Both vectors are O(static
/// program), which is what lets the streaming front-end profile without
/// holding the trace; the sums are unsigned integers, so accumulation
/// order cannot perturb the result.
#[derive(Debug, Default)]
struct ProfileAggregate {
    uid_fanout: Vec<(u64, u64)>,
    block_visits: Vec<u64>,
}

impl ProfileAggregate {
    /// Folds one profiled dynamic instruction and its cone fanout.
    #[inline]
    fn observe(&mut self, entry: &DynInsn, cone: u32) {
        let slot = entry.uid.0 as usize;
        if self.uid_fanout.len() <= slot {
            self.uid_fanout.resize(slot + 1, (0, 0));
        }
        let agg = &mut self.uid_fanout[slot];
        agg.0 += u64::from(cone);
        agg.1 += 1;
        if entry.at.index == 0 {
            let bslot = entry.at.block.0 as usize;
            if self.block_visits.len() <= bslot {
                self.block_visits.resize(bslot + 1, 0);
            }
            self.block_visits[bslot] += 1;
        }
    }
}

/// Extracts the disjoint, self-contained chains of one static basic block.
///
/// Local def-use edges come from a last-writer scan over the block;
/// dependences on values defined before the block are external inputs.
/// Greedy growth starts from the highest-fanout heads and prefers
/// continuations that lead toward further critical members.
pub fn block_static_chains(block: &BasicBlock, avg_of: &dyn Fn(InsnUid) -> f64) -> Vec<Vec<usize>> {
    let n = block.insns.len();
    // Local producer of each instruction's sources.
    let mut last_writer: [Option<usize>; 16] = [None; 16];
    let mut producers: Vec<Vec<usize>> = vec![Vec::new(); n];
    let mut consumers: Vec<Vec<usize>> = vec![Vec::new(); n];
    for (i, tagged) in block.insns.iter().enumerate() {
        for src in tagged.insn.srcs().iter() {
            if let Some(w) = last_writer[src.index() as usize] {
                if !producers[i].contains(&w) {
                    producers[i].push(w);
                    consumers[w].push(i);
                }
            }
        }
        if let Some(dst) = tagged.insn.dst() {
            last_writer[dst.index() as usize] = Some(i);
        }
    }

    let score = |i: usize| -> f64 { avg_of(block.insns[i].uid) };
    let mut heads: Vec<usize> = (0..n).collect();
    heads.sort_by(|&a, &b| {
        score(b)
            .partial_cmp(&score(a))
            .unwrap_or(std::cmp::Ordering::Equal)
    });

    let mut claimed = vec![false; n];
    let mut chains: Vec<Vec<usize>> = Vec::new();
    for head in heads {
        if claimed[head] {
            continue;
        }
        let mut members = vec![head];
        let mut in_chain = vec![false; n];
        in_chain[head] = true;
        let mut cur = head;
        loop {
            let mut best: Option<(usize, f64)> = None;
            for &cand in &consumers[cur] {
                if claimed[cand] || in_chain[cand] {
                    continue;
                }
                // Self-contained: all local producers must be members.
                if !producers[cand].iter().all(|&p| in_chain[p]) {
                    continue;
                }
                // Score with one-hop lookahead toward criticals, counting
                // only continuations that would themselves be eligible —
                // otherwise a dead-end consumer with a lucky neighbour
                // outranks the genuine chain link.
                let ahead = consumers[cand]
                    .iter()
                    .filter(|&&c2| {
                        !claimed[c2] && producers[c2].iter().all(|&p| in_chain[p] || p == cand)
                    })
                    .map(|&c| score(c))
                    .fold(0.0f64, f64::max);
                let s = score(cand) + 2.0 * ahead;
                match best {
                    Some((_, bs)) if bs >= s => {}
                    _ => best = Some((cand, s)),
                }
            }
            let Some((next, _)) = best else { break };
            in_chain[next] = true;
            members.push(next);
            cur = next;
        }
        if members.len() >= 2 {
            for &m in &members {
                claimed[m] = true;
            }
            chains.push(members);
        }
    }
    chains.sort();
    chains
}

#[cfg(test)]
mod tests {
    use critic_workloads::suite::Suite;
    use critic_workloads::{ExecutionPath, Trace};

    use super::*;

    fn mobile_setup(len: usize) -> (Program, Trace) {
        let mut app = Suite::Mobile.apps()[0].clone();
        app.params.num_functions = 40;
        let program = app.generate_program();
        let path = ExecutionPath::generate(&program, 21, len);
        let trace = Trace::expand(&program, &path);
        (program, trace)
    }

    #[test]
    fn profile_selects_chains_with_high_avg_fanout() {
        let (program, trace) = mobile_setup(40_000);
        let profile = Profiler::new(ProfilerConfig::default()).build_profile(&program, &trace);
        assert!(!profile.chains.is_empty());
        for chain in &profile.chains {
            assert!(chain.avg_fanout >= 8.0, "selected chain below threshold");
            assert!(
                chain.len() >= 2 && chain.len() <= 5,
                "length cap violated: {}",
                chain.len()
            );
            assert!(chain.thumb_convertible, "require_thumb filter violated");
            assert!(chain.dynamic_count >= 1);
        }
        // Ranking is by coverage.
        for pair in profile.chains.windows(2) {
            assert!(pair[0].dynamic_instructions() >= pair[1].dynamic_instructions());
        }
    }

    #[test]
    fn chain_members_form_a_dependence_path_in_the_block() {
        let (program, trace) = mobile_setup(30_000);
        let profile = Profiler::new(ProfilerConfig::default()).build_profile(&program, &trace);
        assert!(!profile.chains.is_empty());
        for chain in &profile.chains {
            let block = program.block(chain.block);
            let positions: Vec<usize> = chain
                .uids
                .iter()
                .map(|&uid| block.position_of(uid).expect("uid in block"))
                .collect();
            assert!(
                positions.windows(2).all(|w| w[0] < w[1]),
                "members in program order"
            );
            for w in positions.windows(2) {
                let producer = &block.insns[w[0]].insn;
                let consumer = &block.insns[w[1]].insn;
                let dst = producer.dst().expect("chain member defines a value");
                assert!(
                    consumer.srcs().iter().any(|s| s == dst),
                    "chain link is not a local def-use pair: {} -> {}",
                    producer,
                    consumer
                );
            }
        }
    }

    #[test]
    fn ideal_mode_keeps_longer_and_unconvertible_chains() {
        let (program, trace) = mobile_setup(40_000);
        let real = Profiler::new(ProfilerConfig::default()).build_profile(&program, &trace);
        let ideal = Profiler::new(ProfilerConfig::ideal()).build_profile(&program, &trace);
        assert!(
            ideal.dynamic_coverage >= real.dynamic_coverage,
            "ideal coverage {:.3} must be >= real {:.3}",
            ideal.dynamic_coverage,
            real.dynamic_coverage
        );
    }

    #[test]
    fn most_critical_chains_are_thumb_convertible() {
        // Fig. 5b: ~95.5% of unique CritIC sequences convert as-is.
        let (program, trace) = mobile_setup(40_000);
        let profile = Profiler::new(ProfilerConfig::default()).build_profile(&program, &trace);
        assert!(
            profile.stats.convertible_frac > 0.80,
            "convertible fraction {:.3} too low",
            profile.stats.convertible_frac
        );
    }

    #[test]
    fn smaller_profile_fraction_sees_less() {
        let (program, trace) = mobile_setup(40_000);
        let full = Profiler::new(ProfilerConfig {
            profile_fraction: 1.0,
            ..Default::default()
        })
        .build_profile(&program, &trace);
        let third = Profiler::new(ProfilerConfig {
            profile_fraction: 0.33,
            ..Default::default()
        })
        .build_profile(&program, &trace);
        assert!(third.stats.profiled_insns < full.stats.profiled_insns);
        let count = |p: &Profile| p.chains.iter().map(|c| c.dynamic_count).sum::<u64>();
        assert!(count(&third) < count(&full));
    }

    #[test]
    fn coverage_is_meaningful() {
        // The paper's selected CritICs account for ~30% of the dynamic
        // stream; our synthetic apps should land in the same region.
        let (program, trace) = mobile_setup(60_000);
        let profile = Profiler::new(ProfilerConfig {
            profile_fraction: 1.0,
            ..Default::default()
        })
        .build_profile(&program, &trace);
        assert!(
            profile.dynamic_coverage > 0.08 && profile.dynamic_coverage < 0.8,
            "coverage {:.3} outside plausible band",
            profile.dynamic_coverage
        );
    }

    #[test]
    fn static_chain_extraction_is_self_contained() {
        let (program, trace) = mobile_setup(10_000);
        // Exercise the raw extractor on every block the trace touched.
        let mut visited = std::collections::HashSet::new();
        for e in trace.iter() {
            visited.insert(e.at.block);
        }
        for &bid in visited.iter().take(50) {
            let block = program.block(bid);
            let chains = block_static_chains(block, &|_| 1.0);
            let mut seen = std::collections::HashSet::new();
            for chain in &chains {
                assert!(chain.len() >= 2);
                for &m in chain {
                    assert!(seen.insert(m), "member {m} in two chains of {bid}");
                }
            }
        }
    }

    #[test]
    fn streamed_profile_is_bit_identical() {
        use critic_workloads::{StreamConfig, TraceStream};
        let mut app = Suite::Mobile.apps()[0].clone();
        app.params.num_functions = 40;
        let program = app.generate_program();
        let path = ExecutionPath::generate(&program, 21, 20_000);
        let trace = Trace::expand(&program, &path);
        for config in [ProfilerConfig::default(), ProfilerConfig::ideal()] {
            let profiler = Profiler::new(config);
            let materialized = profiler.build_profile(&program, &trace);
            for window in [1usize, 777, 100_000] {
                let mut stream = TraceStream::new(
                    &program,
                    &path,
                    StreamConfig {
                        window,
                        lookahead: 128,
                        cone_window: Some(128),
                    },
                );
                let streamed = profiler
                    .try_build_profile_streamed(&program, &mut stream)
                    .expect("stream profiles");
                assert_eq!(streamed, materialized, "window {window}");
            }
        }
    }

    #[test]
    fn empty_profile_is_well_formed() {
        let p = Profile::empty();
        assert!(p.chains.is_empty());
        assert_eq!(p.dynamic_coverage, 0.0);
    }

    #[test]
    fn foreign_trace_is_a_typed_error() {
        // A trace expanded from app A profiled against app B's program:
        // the old code indexed A's block ids into B's arena and panicked.
        let (program_a, trace_a) = mobile_setup(5_000);
        let mut app_b = Suite::SpecInt.apps()[0].clone();
        app_b.params.num_functions = 4;
        let program_b = app_b.generate_program();
        let err = Profiler::new(ProfilerConfig::default())
            .try_build_profile(&program_b, &trace_a)
            .expect_err("foreign trace must be rejected");
        assert!(
            matches!(err, crate::ProfileError::InvalidTrace(_)),
            "wrong error: {err}"
        );
        // The matching pair still profiles.
        assert!(Profiler::new(ProfilerConfig::default())
            .try_build_profile(&program_a, &trace_a)
            .is_ok());
    }

    #[test]
    fn injected_trace_faults_are_typed_errors() {
        use critic_workloads::{inject_trace, Fault, FaultTarget};
        let (program, pristine) = mobile_setup(5_000);
        for (i, fault) in Fault::ALL.iter().copied().enumerate() {
            if fault.target() != FaultTarget::Trace {
                continue;
            }
            let mut trace = pristine.clone();
            inject_trace(&mut trace, fault, 3000 + i as u64).expect("fault has a site");
            let invalid = trace.validate(&program).is_err();
            let result =
                Profiler::new(ProfilerConfig::default()).try_build_profile(&program, &trace);
            if invalid {
                assert!(
                    matches!(result, Err(crate::ProfileError::InvalidTrace(_))),
                    "fault {fault} not rejected: got Ok profile"
                );
            } else {
                // Validator-clean corruption (e.g. a duplicated tail that
                // stays under the length cap) must profile without a panic.
                assert!(result.is_ok(), "fault {fault} should be tolerated");
            }
        }
    }
}
