//! Profile persistence: the paper's profiler hands the ART compiler "a
//! relatively concise (~10 KB)" artifact; this module serializes
//! [`Profile`]s the same way so profiling and compilation can run as
//! separate processes.

use std::fs;
use std::io;
use std::path::Path;

use crate::profile::Profile;

/// Saves a profile as pretty JSON.
///
/// # Errors
///
/// Propagates filesystem errors; serialization itself cannot fail for a
/// well-formed profile.
pub fn save_profile(profile: &Profile, path: &Path) -> io::Result<()> {
    let json = serde_json::to_string_pretty(profile)
        .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e))?;
    fs::write(path, json)
}

/// Loads a profile saved with [`save_profile`].
///
/// # Errors
///
/// Fails on filesystem errors or malformed JSON.
pub fn load_profile(path: &Path) -> io::Result<Profile> {
    let json = fs::read_to_string(path)?;
    serde_json::from_str(&json).map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e))
}

#[cfg(test)]
mod tests {
    use critic_workloads::suite::Suite;
    use critic_workloads::{ExecutionPath, Trace};

    use super::*;
    use crate::profile::{Profiler, ProfilerConfig};

    #[test]
    fn profiles_round_trip_through_disk() {
        let mut app = Suite::Mobile.apps()[0].clone();
        app.params.num_functions = 20;
        let program = app.generate_program();
        let path = ExecutionPath::generate(&program, 9, 10_000);
        let trace = Trace::expand(&program, &path);
        let profile = Profiler::new(ProfilerConfig::default()).build_profile(&program, &trace);

        let dir = std::env::temp_dir().join("critic_profile_io_test");
        let _ = fs::create_dir_all(&dir);
        let file = dir.join("acrobat.profile.json");
        save_profile(&profile, &file).expect("saves");
        let loaded = load_profile(&file).expect("loads");
        assert_eq!(profile.chains.len(), loaded.chains.len());
        for (a, b) in profile.chains.iter().zip(&loaded.chains) {
            assert_eq!(
                (a.block, &a.uids, a.dynamic_count),
                (b.block, &b.uids, b.dynamic_count)
            );
        }
        // The artifact is compact, like the paper's ~10 KB profile.
        let bytes = fs::metadata(&file).expect("stat").len();
        assert!(bytes < 512 * 1024, "profile artifact is {bytes} bytes");
        let _ = fs::remove_file(&file);
    }

    #[test]
    fn loading_garbage_fails_cleanly() {
        let dir = std::env::temp_dir().join("critic_profile_io_test");
        let _ = fs::create_dir_all(&dir);
        let file = dir.join("garbage.json");
        fs::write(&file, b"not json at all").expect("writes");
        assert!(load_profile(&file).is_err());
        let _ = fs::remove_file(&file);
        assert!(load_profile(&file).is_err(), "missing file errors too");
    }
}
