//! A compact forward def-use graph over a dynamic trace.
//!
//! The trace stores each instruction's *producers*; the profiler's analyses
//! walk the other direction (producer → consumers), so this module builds a
//! CSR adjacency once and shares it across the gap and chain analyses.

use critic_workloads::Trace;

/// Forward (producer → consumers) adjacency in CSR form.
#[derive(Debug, Clone)]
pub struct Dfg {
    offsets: Vec<u32>,
    consumers: Vec<u32>,
}

impl Dfg {
    /// Builds the forward graph from a trace's dependence records.
    pub fn build(trace: &Trace) -> Dfg {
        let n = trace.len();
        let mut counts = vec![0u32; n + 1];
        for entry in trace.iter() {
            for dep in entry.deps_iter() {
                counts[dep as usize + 1] += 1;
            }
        }
        for i in 1..=n {
            counts[i] += counts[i - 1];
        }
        let mut consumers = vec![0u32; counts[n] as usize];
        let mut cursor = counts.clone();
        for (i, entry) in trace.iter().enumerate() {
            for dep in entry.deps_iter() {
                let slot = cursor[dep as usize];
                consumers[slot as usize] = i as u32;
                cursor[dep as usize] += 1;
            }
        }
        Dfg {
            offsets: counts,
            consumers,
        }
    }

    /// The direct consumers of instruction `i`, in trace order.
    pub fn consumers(&self, i: u32) -> &[u32] {
        let start = self.offsets[i as usize] as usize;
        let end = self.offsets[i as usize + 1] as usize;
        &self.consumers[start..end]
    }

    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.offsets.len() - 1
    }

    /// Whether the graph has no nodes.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The out-degree (fanout) of instruction `i`.
    pub fn fanout(&self, i: u32) -> u32 {
        self.offsets[i as usize + 1] - self.offsets[i as usize]
    }
}

#[cfg(test)]
mod tests {
    use critic_workloads::{ExecutionPath, GenParams, ProgramGenerator, Trace};

    use super::*;

    fn trace() -> Trace {
        let mut p = GenParams::mobile(5);
        p.num_functions = 16;
        let program = ProgramGenerator::new(p).generate();
        let path = ExecutionPath::generate(&program, 5, 5_000);
        Trace::expand(&program, &path)
    }

    #[test]
    fn consumers_mirror_deps() {
        let trace = trace();
        let dfg = Dfg::build(&trace);
        assert_eq!(dfg.len(), trace.len());
        for (i, entry) in trace.iter().enumerate() {
            for dep in entry.deps_iter() {
                assert!(
                    dfg.consumers(dep).contains(&(i as u32)),
                    "edge {dep}->{i} missing from the forward graph"
                );
            }
        }
    }

    #[test]
    fn fanout_matches_trace_computation() {
        let trace = trace();
        let dfg = Dfg::build(&trace);
        let fanout = trace.compute_fanout();
        for (i, e) in trace.iter().enumerate() {
            if matches!(
                e.op,
                critic_isa::Opcode::Cmp
                    | critic_isa::Opcode::Cmn
                    | critic_isa::Opcode::Tst
                    | critic_isa::Opcode::Vcmp
            ) {
                // Value fanout excludes flag readers; the raw graph keeps
                // them (the gap analysis walks control dependences too).
                assert!(dfg.fanout(i as u32) >= fanout[i]);
            } else {
                assert_eq!(dfg.fanout(i as u32), fanout[i], "fanout mismatch at {i}");
            }
        }
    }

    #[test]
    fn consumers_are_sorted_forward() {
        let trace = trace();
        let dfg = Dfg::build(&trace);
        for i in 0..trace.len() as u32 {
            let consumers = dfg.consumers(i);
            assert!(consumers.windows(2).all(|w| w[0] <= w[1]));
            assert!(
                consumers.iter().all(|&c| c > i),
                "consumers come after producers"
            );
        }
    }
}
