//! Fig. 1b: low-fanout gaps between successive critical instructions in a
//! dependence chain.
//!
//! For every critical instruction, walk the forward def-use graph breadth
//! first (bounded depth and window, as the ROB bounds the hardware's view)
//! and find the *nearest* dependent critical instruction. The number of
//! low-fanout chain nodes on that shortest path is the "gap"; criticals with
//! no dependent critical in range land in the `none` bucket — the case the
//! paper reports at ~60% / ~35% for SPEC.float / SPEC.int and almost never
//! for Android apps.

use serde::{Deserialize, Serialize};

use crate::dfg::Dfg;

/// Maximum gap bucket tracked individually (larger gaps clamp here).
pub const MAX_GAP: usize = 5;

/// BFS depth bound (chains longer than this count as "none").
const DEPTH_LIMIT: u32 = 8;

/// Window (in dynamic instructions) a dependence may span, mirroring the
/// ROB-bounded observation of the hardware heuristic.
const WINDOW: u32 = 256;

/// The Fig. 1b histogram.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct GapHistogram {
    /// Criticals with no dependent critical in range.
    pub none: u64,
    /// Counts for gaps of exactly 0..=5 low-fanout instructions
    /// (`gaps[5]` aggregates ≥ 5).
    pub gaps: [u64; MAX_GAP + 1],
}

impl GapHistogram {
    /// Builds the histogram from a trace's forward DFG and fanout.
    pub fn measure(dfg: &Dfg, fanout: &[u32], threshold: u32) -> GapHistogram {
        let mut hist = GapHistogram::default();
        let n = fanout.len() as u32;
        let mut queue: Vec<(u32, u32)> = Vec::new(); // (node, path length)
        for start in 0..n {
            if fanout[start as usize] < threshold {
                continue;
            }
            // Bounded BFS for the nearest dependent critical.
            queue.clear();
            queue.push((start, 0));
            let mut head = 0usize;
            let mut found: Option<u32> = None;
            while head < queue.len() {
                let (node, depth) = queue[head];
                head += 1;
                if depth >= DEPTH_LIMIT {
                    continue;
                }
                for &next in dfg.consumers(node) {
                    if next - start > WINDOW {
                        break;
                    }
                    if fanout[next as usize] >= threshold {
                        found = Some(depth); // `depth` intermediate low-fanout nodes
                        break;
                    }
                    queue.push((next, depth + 1));
                }
                if found.is_some() {
                    break;
                }
            }
            match found {
                Some(gap) => hist.gaps[(gap as usize).min(MAX_GAP)] += 1,
                None => hist.none += 1,
            }
        }
        hist
    }

    /// Total criticals observed.
    pub fn total(&self) -> u64 {
        self.none + self.gaps.iter().sum::<u64>()
    }

    /// Fraction of criticals with no dependent critical.
    pub fn none_frac(&self) -> f64 {
        if self.total() == 0 {
            0.0
        } else {
            self.none as f64 / self.total() as f64
        }
    }

    /// Fraction of criticals whose nearest dependent critical sits behind
    /// `gap` low-fanout instructions.
    pub fn gap_frac(&self, gap: usize) -> f64 {
        if self.total() == 0 {
            0.0
        } else {
            self.gaps[gap.min(MAX_GAP)] as f64 / self.total() as f64
        }
    }

    /// Cumulative fraction with 1..=5 gaps — the paper's "52% of the time in
    /// Android apps" number.
    pub fn one_to_five_frac(&self) -> f64 {
        (1..=MAX_GAP).map(|g| self.gap_frac(g)).sum()
    }
}

#[cfg(test)]
mod tests {
    use critic_workloads::suite::Suite;
    use critic_workloads::{ExecutionPath, Trace};

    use super::*;
    use crate::critical::DEFAULT_FANOUT_THRESHOLD;

    fn histogram_for(suite: Suite, len: usize) -> GapHistogram {
        let mut app = suite.apps()[0].clone();
        app.params.num_functions = app.params.num_functions.min(40);
        let program = app.generate_program();
        let path = ExecutionPath::generate(&program, 3, len);
        let trace = Trace::expand(&program, &path);
        let fanout = trace.compute_fanout();
        let dfg = Dfg::build(&trace);
        GapHistogram::measure(&dfg, &fanout, DEFAULT_FANOUT_THRESHOLD)
    }

    #[test]
    fn android_criticals_chain_through_low_fanout_gaps() {
        let hist = histogram_for(Suite::Mobile, 40_000);
        assert!(hist.total() > 50, "need a population of criticals");
        // Fig. 1b: Android criticals mostly have a dependent critical with
        // >= 1 low-fanout instruction in between. (Our synthetic web leaves
        // a larger none-bucket than the paper's near-zero — chain tails at
        // function boundaries — but the mass in the 1..5 buckets and the
        // Android-vs-SPEC ordering, which carry the paper's argument, hold;
        // see EXPERIMENTS.md.)
        assert!(
            hist.none_frac() < 0.55,
            "android none-bucket too big: {:.3}",
            hist.none_frac()
        );
        assert!(
            hist.one_to_five_frac() > 0.25,
            "android 1..5 gap mass too small: {:.3}",
            hist.one_to_five_frac()
        );
    }

    #[test]
    fn spec_criticals_are_mostly_isolated() {
        let hist = histogram_for(Suite::SpecFloat, 40_000);
        let android = histogram_for(Suite::Mobile, 40_000);
        assert!(
            hist.none_frac() > android.none_frac(),
            "SPEC.float none {:.3} should exceed Android {:.3}",
            hist.none_frac(),
            android.none_frac()
        );
    }

    #[test]
    fn fractions_sum_to_one() {
        let hist = histogram_for(Suite::Mobile, 20_000);
        let sum: f64 = hist.none_frac() + (0..=MAX_GAP).map(|g| hist.gap_frac(g)).sum::<f64>();
        assert!((sum - 1.0).abs() < 1e-9);
    }

    #[test]
    fn empty_histogram_is_safe() {
        let hist = GapHistogram::default();
        assert_eq!(hist.total(), 0);
        assert_eq!(hist.none_frac(), 0.0);
        assert_eq!(hist.gap_frac(3), 0.0);
    }
}
