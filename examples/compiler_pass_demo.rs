//! Compiler-pass demo (paper Fig. 9): show a basic block before and after
//! the CritIC instrumentation pass — hoisted members, 16-bit encodings, and
//! the CDP format switch — plus the binary-level encodings of Fig. 6.
//!
//! ```text
//! cargo run --release --example compiler_pass_demo
//! ```

use critics::compiler::{apply_critic_pass, CriticPassOptions};
use critics::isa::{encode, Insn, Opcode, Reg};
use critics::profiler::{Profiler, ProfilerConfig};
use critics::workloads::suite::Suite;
use critics::workloads::{ExecutionPath, Trace};

fn main() {
    // Fig. 6: the two encodings and the CDP switch.
    println!("== Fig. 6: instruction formats ==");
    let add = Insn::alu(Opcode::Add, Reg::R1, &[Reg::R2, Reg::R3]);
    let word = encode::encode(&add).expect("arm32 encodes");
    println!("  32-bit ARM   {}  =>  {}", add, word);
    let half = encode::encode(&add.to_thumb().expect("convertible")).expect("thumb encodes");
    println!("  16-bit Thumb {}  =>  {}", add, half);
    let cdp = Insn::cdp(5);
    println!(
        "  switch       {}  =>  {}",
        cdp,
        encode::encode(&cdp).expect("cdp encodes")
    );

    // Fig. 9: code generation on a profiled app.
    let app = &Suite::Mobile.apps()[0];
    let program = app.generate_program();
    let path = ExecutionPath::generate(&program, app.path_seed(), 80_000);
    let trace = Trace::expand(&program, &path);
    let profile = Profiler::new(ProfilerConfig::default()).build_profile(&program, &trace);
    let spec = profile.chains.first().expect("profile has chains").clone();

    println!("\n== Fig. 9: block {} before the pass ==", spec.block);
    for t in &program.block(spec.block).insns {
        let marker = if spec.uids.contains(&t.uid) { "*" } else { " " };
        println!("  {marker} {}", t.insn);
    }

    let mut optimized = program.clone();
    let report = apply_critic_pass(&mut optimized, &profile, CriticPassOptions::default());
    println!(
        "\n== after the pass ({} chains applied overall) ==",
        report.chains_applied
    );
    for t in &optimized.block(spec.block).insns {
        let marker = if spec.uids.contains(&t.uid) {
            "*"
        } else if t.insn.op().is_format_switch() {
            ">"
        } else {
            " "
        };
        println!("  {marker} {} [{}]", t.insn, t.insn.width());
    }
    println!(
        "\nbinary: {} -> {} bytes ({} instructions to 16-bit)",
        program.code_bytes(),
        optimized.code_bytes(),
        report.insns_converted
    );
}
