//! App study: the Fig. 10 design space over every Table II mobile app.
//!
//! ```text
//! cargo run --release --example app_study [trace_len]
//! ```

use critics::core::experiments;

fn main() {
    let trace_len = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(120_000);
    println!("running the CritIC design space over 10 mobile apps ({trace_len} insns each)…\n");
    let rows = experiments::fig10(trace_len, 10);
    println!(
        "{:12} {:>8} {:>8} {:>8} {:>14} {:>10} {:>10}",
        "app", "hoist", "critic", "ideal", "branch-switch", "cpu-E", "system-E"
    );
    for r in &rows {
        println!(
            "{:12} {:>7.2}% {:>7.2}% {:>7.2}% {:>13.2}% {:>9.2}% {:>9.2}%",
            r.app,
            (r.hoist - 1.0) * 100.0,
            (r.critic - 1.0) * 100.0,
            (r.critic_ideal - 1.0) * 100.0,
            (r.branch_switch - 1.0) * 100.0,
            r.cpu_energy_saving * 100.0,
            r.system_energy_saving * 100.0
        );
    }
    let mean =
        |f: fn(&experiments::Fig10Row) -> f64| rows.iter().map(f).sum::<f64>() / rows.len() as f64;
    println!(
        "\nmean: critic {:+.2}% (paper: +12.65%), system energy {:+.2}% (paper: +4.6%)",
        (mean(|r| r.critic) - 1.0) * 100.0,
        mean(|r| r.system_energy_saving) * 100.0
    );
    println!("see EXPERIMENTS.md for the paper-vs-measured discussion");
}
