//! Chain anatomy: walk the paper's Sec. II/III concepts on a real trace —
//! critical instructions, the Fig. 1b gap histogram, IC extraction, the
//! average-fanout criticality metric, and Thumb convertibility.
//!
//! ```text
//! cargo run --release --example chain_anatomy
//! ```

use critics::profiler::{
    chains::extract_dynamic_ics, CriticalitySummary, Dfg, GapHistogram, Profiler, ProfilerConfig,
};
use critics::workloads::suite::Suite;
use critics::workloads::{ExecutionPath, Trace};

fn main() {
    let app = &Suite::Mobile.apps()[5]; // Maps: the paper's dataflow-heaviest app
    let program = app.generate_program();
    let path = ExecutionPath::generate(&program, app.path_seed(), 80_000);
    let trace = Trace::expand(&program, &path);
    let fanout = trace.compute_fanout();

    // Critical instructions (Sec. II-A): fanout >= 8.
    let summary = CriticalitySummary::measure(&trace, &fanout, 8);
    println!(
        "{}: {} dynamic instructions, {:.1}% critical (max fanout {})",
        app.name,
        summary.instructions,
        summary.critical_frac() * 100.0,
        summary.max_fanout
    );

    // Fig. 1b: gaps between dependent criticals.
    let dfg = Dfg::build(&trace);
    let hist = GapHistogram::measure(&dfg, &fanout, 8);
    println!("gap histogram: none {:.2}, gaps 0..5+:", hist.none_frac());
    for g in 0..=5 {
        println!(
            "  {} low-fanout instructions in between: {:.1}%",
            g,
            hist.gap_frac(g) * 100.0
        );
    }

    // Fig. 5a: dynamic ICs.
    let chains = extract_dynamic_ics(&trace, &dfg, &fanout, 8192, 4096);
    let longest = chains.iter().max_by_key(|c| c.len()).expect("chains exist");
    println!(
        "{} dynamic ICs; longest has {} members spread over {} instructions",
        chains.len(),
        longest.len(),
        longest.spread()
    );

    // CritIC selection (Sec. III-A): average fanout per instruction.
    let profile = Profiler::new(ProfilerConfig::default()).build_profile(&program, &trace);
    println!(
        "profile: {} CritICs selected, {:.1}% dynamic coverage, {:.1}% thumb-convertible",
        profile.chains.len(),
        profile.dynamic_coverage * 100.0,
        profile.stats.convertible_frac * 100.0
    );
    if let Some(top) = profile.chains.first() {
        println!(
            "hottest CritIC (block {}, avg fanout {:.1}):",
            top.block, top.avg_fanout
        );
        let block = program.block(top.block);
        for &uid in &top.uids {
            let pos = block.position_of(uid).expect("uid in block");
            println!("  {}", block.insns[pos].insn);
        }
    }
}
