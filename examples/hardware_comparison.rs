//! Hardware comparison (paper Fig. 11): conventional fetch mechanisms vs
//! the software-only CritIC, and their synergy.
//!
//! ```text
//! cargo run --release --example hardware_comparison [trace_len]
//! ```

use critics::core::experiments;

fn main() {
    let trace_len = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(120_000);
    println!("comparing hardware fetch mechanisms on 5 mobile apps…\n");
    let rows = experiments::fig11(trace_len, 5);
    println!(
        "{:14} {:>9} {:>12} {:>12} {:>12}",
        "mechanism", "speedup", "with CritIC", "dStallForI", "dStallForR+D"
    );
    for r in &rows {
        println!(
            "{:14} {:>8.2}% {:>11.2}% {:>11.2}pp {:>11.2}pp",
            r.mechanism,
            (r.speedup - 1.0) * 100.0,
            (r.with_critic - 1.0) * 100.0,
            r.d_stall_i * 100.0,
            r.d_stall_rd * 100.0
        );
    }
    println!("\nthe paper's point: CritIC needs no hardware yet composes with all of these");
}
