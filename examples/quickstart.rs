//! Quickstart: profile one mobile app, apply the CritIC pass, and compare
//! timing and energy against the baseline.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use critics::core::design::DesignPoint;
use critics::core::runner::Workbench;
use critics::workloads::suite::Suite;

fn main() {
    // 1. Pick a workload (Table II) and record one execution.
    let app = &Suite::Mobile.apps()[0]; // Acrobat
    println!(
        "workload: {} ({}, \"{}\")",
        app.name, app.domain, app.activity
    );
    let mut bench = Workbench::new(app, 120_000);
    println!(
        "binary: {} functions, {} static instructions, {} KB",
        bench.program.functions.len(),
        bench.program.static_insn_count(),
        bench.program.code_bytes() / 1024
    );

    // 2. Run the Table I baseline.
    let base = bench.run(&DesignPoint::baseline());
    println!(
        "baseline: {} cycles, IPC {:.2}, F.StallForI {:.1}%, F.StallForR+D {:.1}%",
        base.sim.cycles,
        base.sim.ipc(),
        base.sim.stall_for_i_frac() * 100.0,
        base.sim.stall_for_rd_frac() * 100.0
    );

    // 3. Profile + compile + rerun with the CritIC scheme.
    let critic = bench.run(&DesignPoint::critic());
    println!(
        "CritIC: applied {} chains ({} instructions to 16-bit, {} CDP switches)",
        critic.pass.chains_applied, critic.pass.insns_converted, critic.sim.cdp_switches
    );
    println!(
        "speedup {:+.2}%  |  CPU energy {:+.2}%  |  system energy {:+.2}%",
        (critic.sim.speedup_over(&base.sim) - 1.0) * 100.0,
        critic.energy.cpu_saving(&base.energy) * 100.0,
        critic.energy.system_saving(&base.energy) * 100.0
    );
}
